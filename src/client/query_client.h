#ifndef HMMM_CLIENT_QUERY_CLIENT_H_
#define HMMM_CLIENT_QUERY_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/socket.h"
#include "common/status.h"
#include "server/wire_protocol.h"

namespace hmmm {

struct QueryClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Bound on establishing (or re-establishing) the TCP connection.
  std::chrono::milliseconds connect_timeout{2000};
  /// Per-request IO deadline covering the write of the request frame and
  /// the read of the complete response frame.
  std::chrono::milliseconds io_timeout{30000};
  /// Additional attempts after the first one fails retriably. The retry
  /// budget is per call, not per connection.
  int max_retries = 3;
  /// Backoff before the first retry; doubles per subsequent retry, up
  /// to retry_backoff_cap (so a deep retry budget bounds total sleep at
  /// roughly max_retries * cap instead of growing geometrically).
  std::chrono::milliseconds retry_backoff{10};
  std::chrono::milliseconds retry_backoff_cap{1000};
  /// Responses announcing a larger payload are rejected as corrupt.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Synchronous client for the QueryServer wire protocol: one connection,
/// one in-flight request at a time, with lazy (re)connection and bounded
/// retry.
///
/// Retry policy: an attempt is retried (up to max_retries, with doubling
/// backoff) when either
///  - the server answered a typed error marked retriable (admission shed
///    kResourceExhausted, drain-time kShuttingDown) — always safe, the
///    server refused before executing; or
///  - the transport failed (connect/read/write/timeout/torn frame) and
///    the request is idempotent. TemporalQuery, QueryByExample, Metrics
///    and Health are idempotent; MarkPositive and Train are not — a
///    transport failure after the request was sent leaves the server's
///    execution state unknown, so those surface the error instead.
/// Non-retriable typed errors surface as the mirrored Status immediately.
class QueryClient {
 public:
  explicit QueryClient(QueryClientOptions options) : options_(options) {}
  ~QueryClient() = default;

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// Eagerly establishes the connection; otherwise the first request
  /// connects lazily.
  Status Connect();
  void Disconnect() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

  StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request);
  StatusOr<QbeResponse> QueryByExample(const QbeRequest& request);
  StatusOr<MarkPositiveResponse> MarkPositive(
      const MarkPositiveRequest& request);
  StatusOr<TrainResponse> Train();
  StatusOr<MetricsResponse> Metrics();
  StatusOr<HealthResponse> Health();

  /// Monotone generation for TemporalQueryRequest::cancel_generation: a
  /// request stamped with a fresh generation supersedes every earlier
  /// pipelined request still queued on the server.
  uint64_t NextCancelGeneration() { return ++generation_; }

  /// Retries performed across all calls (observability / tests).
  uint64_t retries_performed() const { return retries_performed_; }

 private:
  /// Sends one request frame and returns the payload of the expected
  /// response, applying the retry policy above.
  StatusOr<std::string> RoundTrip(MessageType request_type,
                                  const std::string& payload,
                                  MessageType expected_response,
                                  bool idempotent);
  /// One attempt. Sets *retriable when the failure is safe to retry
  /// under the policy (given `idempotent`).
  StatusOr<std::string> Attempt(const std::string& frame,
                                MessageType expected_response,
                                bool idempotent, bool* retriable);

  QueryClientOptions options_;
  Socket socket_;
  uint64_t generation_ = 0;
  uint64_t retries_performed_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_CLIENT_QUERY_CLIENT_H_
