#ifndef HMMM_CLIENT_QUERY_CLIENT_H_
#define HMMM_CLIENT_QUERY_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/socket.h"
#include "common/status.h"
#include "server/wire_protocol.h"

namespace hmmm {

struct QueryClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Bound on establishing (or re-establishing) the TCP connection.
  std::chrono::milliseconds connect_timeout{2000};
  /// Per-request IO deadline covering the write of the request frame and
  /// the read of the complete response frame.
  std::chrono::milliseconds io_timeout{30000};
  /// Additional attempts after the first one fails retriably. The retry
  /// budget is per call, not per connection.
  int max_retries = 3;
  /// Backoff before the first retry; subsequent retries use decorrelated
  /// jitter (uniform in [retry_backoff, 3 * previous]) capped at
  /// retry_backoff_cap, so a fleet of clients that failed together does
  /// not hammer a recovering shard in lockstep.
  std::chrono::milliseconds retry_backoff{10};
  std::chrono::milliseconds retry_backoff_cap{1000};
  /// Seed for the backoff jitter. 0 (default) derives a distinct seed
  /// per client from a process-global counter — concurrent clients
  /// decorrelate; a nonzero value pins the jitter sequence for tests.
  uint64_t retry_jitter_seed = 0;
  /// Responses announcing a larger payload are rejected as corrupt.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Highest wire protocol version to speak. The client starts at this
  /// version; a server answering kUnsupportedVersion makes it downgrade
  /// to the floor version and retry (see peer_version()). Setting 1
  /// emulates an old client against a new server.
  uint16_t protocol_version = kWireProtocolVersion;
};

/// One decorrelated-jitter backoff step: uniform in [base, 3 * prev],
/// clamped to cap. Exposed as a free function so tests can pin the Rng
/// and check the distribution without a live socket.
std::chrono::milliseconds NextDecorrelatedBackoff(
    std::chrono::milliseconds base, std::chrono::milliseconds cap,
    std::chrono::milliseconds prev, Rng& rng);

/// Resolves QueryClientOptions::retry_jitter_seed: a nonzero configured
/// seed is used verbatim; 0 draws from a process-global counter so every
/// client gets a distinct jitter stream.
uint64_t DeriveRetryJitterSeed(uint64_t configured);

/// Synchronous client for the QueryServer wire protocol: one connection,
/// one in-flight request at a time, with lazy (re)connection and bounded
/// retry.
///
/// Retry policy: an attempt is retried (up to max_retries, with
/// decorrelated-jitter backoff) when either
///  - the server answered a typed error marked retriable (admission shed
///    kResourceExhausted, drain-time kShuttingDown) — always safe, the
///    server refused before executing; or
///  - the transport failed (connect/read/write/timeout/torn frame) and
///    the request is idempotent. TemporalQuery, QueryByExample, Metrics
///    and Health are idempotent; MarkPositive and Train are not — a
///    transport failure after the request was sent leaves the server's
///    execution state unknown, so those surface the error instead.
/// Non-retriable typed errors surface as the mirrored Status immediately.
class QueryClient {
 public:
  explicit QueryClient(QueryClientOptions options)
      : options_(options),
        rng_(DeriveRetryJitterSeed(options.retry_jitter_seed)),
        peer_version_(options.protocol_version) {}
  ~QueryClient() = default;

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// Eagerly establishes the connection; otherwise the first request
  /// connects lazily.
  Status Connect();
  void Disconnect() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

  StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request);
  StatusOr<QbeResponse> QueryByExample(const QbeRequest& request);
  StatusOr<MarkPositiveResponse> MarkPositive(
      const MarkPositiveRequest& request);
  StatusOr<TrainResponse> Train();
  StatusOr<MetricsResponse> Metrics();
  StatusOr<HealthResponse> Health();
  /// v2+: fetches the server's slow-query log (JSONL, oldest first). A
  /// v1 peer answers kUnsupportedVersion for the unknown request tag,
  /// surfaced as a Status.
  StatusOr<DumpSlowQueriesResponse> DumpSlowQueries();
  /// v3+: pushes a serialized shard map to a coordinator for a hot swap.
  /// Non-idempotent under the epoch fence: a retry of an applied reload
  /// is answered kFailedPrecondition ("epoch not newer"), so transport
  /// failures surface instead of being retried blindly.
  StatusOr<ReloadShardMapResponse> ReloadShardMap(
      const ReloadShardMapRequest& request);

  /// Monotone generation for TemporalQueryRequest::cancel_generation: a
  /// request stamped with a fresh generation supersedes every earlier
  /// pipelined request still queued on the server.
  uint64_t NextCancelGeneration() { return ++generation_; }

  /// Adjusts the per-request IO deadline for subsequent calls. Lets a
  /// pooled connection serve requests with differing latency budgets
  /// (the coordinator ties this to each query's per-shard budget so a
  /// hung shard cannot stall a fan-out past the request's budget).
  void set_io_timeout(std::chrono::milliseconds timeout) {
    options_.io_timeout = timeout;
  }
  std::chrono::milliseconds io_timeout() const { return options_.io_timeout; }

  /// Retries performed across all calls (observability / tests).
  uint64_t retries_performed() const { return retries_performed_; }

  /// Cheap liveness check for an idle connection: polls the socket with
  /// zero timeout. A request/response connection with nothing in flight
  /// must be silent — readable means EOF or stray bytes, either of which
  /// would burn a retry inside the next call's budget. An unconnected
  /// client is trivially healthy (it connects lazily).
  bool IdleConnectionHealthy() const;

  /// The protocol version currently spoken to the peer. Starts at
  /// options.protocol_version and drops to the floor version after a
  /// kUnsupportedVersion answer (sticky for the client's lifetime — the
  /// peer will not learn v2 mid-conversation).
  uint16_t peer_version() const { return peer_version_; }

 private:
  /// Encodes a request payload at a given protocol version. Re-invoked
  /// per attempt so a mid-call version downgrade re-encodes the request
  /// in the older schema.
  using PayloadEncoder = std::string (*)(const void* request,
                                         uint16_t version);

  /// Sends one request and returns the payload of the expected response,
  /// applying the retry policy above. `request` is passed through to
  /// `encode` untouched (null for empty-payload requests). On success
  /// *response_version (if non-null) holds the response frame's version,
  /// for version-aware payload decoding.
  StatusOr<std::string> RoundTrip(MessageType request_type,
                                  const void* request, PayloadEncoder encode,
                                  MessageType expected_response,
                                  bool idempotent,
                                  uint16_t* response_version = nullptr);
  /// One attempt. Sets *retriable when the failure is safe to retry
  /// under the policy (given `idempotent`).
  StatusOr<std::string> Attempt(const std::string& frame,
                                MessageType expected_response,
                                bool idempotent, bool* retriable,
                                uint16_t* response_version);

  QueryClientOptions options_;
  Socket socket_;
  Rng rng_;
  uint64_t generation_ = 0;
  uint64_t retries_performed_ = 0;
  uint16_t peer_version_ = kWireProtocolVersion;
};

/// A thread-safe pool of QueryClients to one endpoint, so concurrent
/// fan-out calls (the shard coordinator's scatter phase) reuse warm TCP
/// connections instead of paying a connect per request. Acquire() pops
/// an idle client or creates a fresh one; the RAII lease returns it on
/// destruction (up to max_idle — beyond that the connection just
/// closes). A client whose last call failed is safe to recycle: it
/// disconnects on transport errors and reconnects lazily.
class QueryClientPool {
 public:
  explicit QueryClientPool(QueryClientOptions options, size_t max_idle = 8)
      : options_(std::move(options)), max_idle_(max_idle) {}

  QueryClientPool(const QueryClientPool&) = delete;
  QueryClientPool& operator=(const QueryClientPool&) = delete;

  class Lease {
   public:
    Lease(QueryClientPool* pool, std::unique_ptr<QueryClient> client)
        : pool_(pool), client_(std::move(client)) {}
    ~Lease() {
      if (pool_ != nullptr && client_ != nullptr) {
        pool_->Return(std::move(client_));
      }
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    QueryClient* operator->() { return client_.get(); }
    QueryClient& operator*() { return *client_; }

   private:
    QueryClientPool* pool_;
    std::unique_ptr<QueryClient> client_;
  };

  Lease Acquire() {
    for (;;) {
      std::unique_ptr<QueryClient> client;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (idle_.empty()) break;
        client = std::move(idle_.back());
        idle_.pop_back();
      }
      // A connection that went stale while pooled (shard restarted, peer
      // hung up) would burn a retry inside the fan-out's budget; a
      // zero-timeout poll catches it for the price of one syscall.
      if (client->IdleConnectionHealthy()) {
        return Lease(this, std::move(client));
      }
      stale_discarded_.fetch_add(1, std::memory_order_relaxed);
    }
    ++clients_created_;
    return Lease(this, std::make_unique<QueryClient>(options_));
  }

  size_t idle() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
  }
  /// Connections created over the pool's lifetime (observability: a
  /// steady-state fan-out should plateau at ~max concurrent requests).
  uint64_t clients_created() const {
    return clients_created_.load(std::memory_order_relaxed);
  }
  /// Pooled connections dropped at checkout because their socket
  /// reported EOF/error while idle.
  uint64_t stale_discarded() const {
    return stale_discarded_.load(std::memory_order_relaxed);
  }

  const QueryClientOptions& options() const { return options_; }

 private:
  void Return(std::unique_ptr<QueryClient> client) {
    // Reset the per-call override so the next lease starts from the
    // configured default.
    client->set_io_timeout(options_.io_timeout);
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_.size() < max_idle_) idle_.push_back(std::move(client));
  }

  QueryClientOptions options_;
  size_t max_idle_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<QueryClient>> idle_;
  std::atomic<uint64_t> clients_created_{0};
  std::atomic<uint64_t> stale_discarded_{0};
};

}  // namespace hmmm

#endif  // HMMM_CLIENT_QUERY_CLIENT_H_
