#ifndef HMMM_CLIENT_QUERY_CLIENT_H_
#define HMMM_CLIENT_QUERY_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "server/wire_protocol.h"

namespace hmmm {

struct QueryClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Bound on establishing (or re-establishing) the TCP connection.
  std::chrono::milliseconds connect_timeout{2000};
  /// Per-request IO deadline covering the write of the request frame and
  /// the read of the complete response frame.
  std::chrono::milliseconds io_timeout{30000};
  /// Additional attempts after the first one fails retriably. The retry
  /// budget is per call, not per connection.
  int max_retries = 3;
  /// Backoff before the first retry; doubles per subsequent retry, up
  /// to retry_backoff_cap (so a deep retry budget bounds total sleep at
  /// roughly max_retries * cap instead of growing geometrically).
  std::chrono::milliseconds retry_backoff{10};
  std::chrono::milliseconds retry_backoff_cap{1000};
  /// Responses announcing a larger payload are rejected as corrupt.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Highest wire protocol version to speak. The client starts at this
  /// version; a server answering kUnsupportedVersion makes it downgrade
  /// to the floor version and retry (see peer_version()). Setting 1
  /// emulates an old client against a new server.
  uint16_t protocol_version = kWireProtocolVersion;
};

/// Synchronous client for the QueryServer wire protocol: one connection,
/// one in-flight request at a time, with lazy (re)connection and bounded
/// retry.
///
/// Retry policy: an attempt is retried (up to max_retries, with doubling
/// backoff) when either
///  - the server answered a typed error marked retriable (admission shed
///    kResourceExhausted, drain-time kShuttingDown) — always safe, the
///    server refused before executing; or
///  - the transport failed (connect/read/write/timeout/torn frame) and
///    the request is idempotent. TemporalQuery, QueryByExample, Metrics
///    and Health are idempotent; MarkPositive and Train are not — a
///    transport failure after the request was sent leaves the server's
///    execution state unknown, so those surface the error instead.
/// Non-retriable typed errors surface as the mirrored Status immediately.
class QueryClient {
 public:
  explicit QueryClient(QueryClientOptions options)
      : options_(options), peer_version_(options.protocol_version) {}
  ~QueryClient() = default;

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// Eagerly establishes the connection; otherwise the first request
  /// connects lazily.
  Status Connect();
  void Disconnect() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

  StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request);
  StatusOr<QbeResponse> QueryByExample(const QbeRequest& request);
  StatusOr<MarkPositiveResponse> MarkPositive(
      const MarkPositiveRequest& request);
  StatusOr<TrainResponse> Train();
  StatusOr<MetricsResponse> Metrics();
  StatusOr<HealthResponse> Health();
  /// v2+: fetches the server's slow-query log (JSONL, oldest first). A
  /// v1 peer answers kUnsupportedVersion for the unknown request tag,
  /// surfaced as a Status.
  StatusOr<DumpSlowQueriesResponse> DumpSlowQueries();

  /// Monotone generation for TemporalQueryRequest::cancel_generation: a
  /// request stamped with a fresh generation supersedes every earlier
  /// pipelined request still queued on the server.
  uint64_t NextCancelGeneration() { return ++generation_; }

  /// Adjusts the per-request IO deadline for subsequent calls. Lets a
  /// pooled connection serve requests with differing latency budgets
  /// (the coordinator ties this to each query's per-shard budget so a
  /// hung shard cannot stall a fan-out past the request's budget).
  void set_io_timeout(std::chrono::milliseconds timeout) {
    options_.io_timeout = timeout;
  }
  std::chrono::milliseconds io_timeout() const { return options_.io_timeout; }

  /// Retries performed across all calls (observability / tests).
  uint64_t retries_performed() const { return retries_performed_; }

  /// The protocol version currently spoken to the peer. Starts at
  /// options.protocol_version and drops to the floor version after a
  /// kUnsupportedVersion answer (sticky for the client's lifetime — the
  /// peer will not learn v2 mid-conversation).
  uint16_t peer_version() const { return peer_version_; }

 private:
  /// Encodes a request payload at a given protocol version. Re-invoked
  /// per attempt so a mid-call version downgrade re-encodes the request
  /// in the older schema.
  using PayloadEncoder = std::string (*)(const void* request,
                                         uint16_t version);

  /// Sends one request and returns the payload of the expected response,
  /// applying the retry policy above. `request` is passed through to
  /// `encode` untouched (null for empty-payload requests). On success
  /// *response_version (if non-null) holds the response frame's version,
  /// for version-aware payload decoding.
  StatusOr<std::string> RoundTrip(MessageType request_type,
                                  const void* request, PayloadEncoder encode,
                                  MessageType expected_response,
                                  bool idempotent,
                                  uint16_t* response_version = nullptr);
  /// One attempt. Sets *retriable when the failure is safe to retry
  /// under the policy (given `idempotent`).
  StatusOr<std::string> Attempt(const std::string& frame,
                                MessageType expected_response,
                                bool idempotent, bool* retriable,
                                uint16_t* response_version);

  QueryClientOptions options_;
  Socket socket_;
  uint64_t generation_ = 0;
  uint64_t retries_performed_ = 0;
  uint16_t peer_version_ = kWireProtocolVersion;
};

/// A thread-safe pool of QueryClients to one endpoint, so concurrent
/// fan-out calls (the shard coordinator's scatter phase) reuse warm TCP
/// connections instead of paying a connect per request. Acquire() pops
/// an idle client or creates a fresh one; the RAII lease returns it on
/// destruction (up to max_idle — beyond that the connection just
/// closes). A client whose last call failed is safe to recycle: it
/// disconnects on transport errors and reconnects lazily.
class QueryClientPool {
 public:
  explicit QueryClientPool(QueryClientOptions options, size_t max_idle = 8)
      : options_(std::move(options)), max_idle_(max_idle) {}

  QueryClientPool(const QueryClientPool&) = delete;
  QueryClientPool& operator=(const QueryClientPool&) = delete;

  class Lease {
   public:
    Lease(QueryClientPool* pool, std::unique_ptr<QueryClient> client)
        : pool_(pool), client_(std::move(client)) {}
    ~Lease() {
      if (pool_ != nullptr && client_ != nullptr) {
        pool_->Return(std::move(client_));
      }
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    QueryClient* operator->() { return client_.get(); }
    QueryClient& operator*() { return *client_; }

   private:
    QueryClientPool* pool_;
    std::unique_ptr<QueryClient> client_;
  };

  Lease Acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<QueryClient> client = std::move(idle_.back());
        idle_.pop_back();
        return Lease(this, std::move(client));
      }
    }
    ++clients_created_;
    return Lease(this, std::make_unique<QueryClient>(options_));
  }

  size_t idle() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
  }
  /// Connections created over the pool's lifetime (observability: a
  /// steady-state fan-out should plateau at ~max concurrent requests).
  uint64_t clients_created() const {
    return clients_created_.load(std::memory_order_relaxed);
  }

  const QueryClientOptions& options() const { return options_; }

 private:
  void Return(std::unique_ptr<QueryClient> client) {
    // Reset the per-call override so the next lease starts from the
    // configured default.
    client->set_io_timeout(options_.io_timeout);
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_.size() < max_idle_) idle_.push_back(std::move(client));
  }

  QueryClientOptions options_;
  size_t max_idle_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<QueryClient>> idle_;
  std::atomic<uint64_t> clients_created_{0};
};

}  // namespace hmmm

#endif  // HMMM_CLIENT_QUERY_CLIENT_H_
