#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json report against a committed baseline.

Usage:
    bench_compare.py BASELINE CURRENT [--latency-tolerance 0.10]

Two families of checks:

  * Latency fields (any key ending in `_ms`, plus `median_traversal_ms` /
    `median_ms` entries inside sweep arrays) may regress by at most
    --latency-tolerance (default 10%). Values under --min-latency-ms are
    skipped: sub-tenth-millisecond medians are timer noise, not signal.
  * Work counters are deterministic for a fixed generator seed, so the
    current run must not *increase* any `sim_evaluations`,
    `states_visited` or `heap_pops` entry — an increase means the
    query-plan layer stopped reusing work or the cube-pruned frontier
    started paying for cells it used to prove away. Symmetrically,
    `grid_cells_skipped` must not *decrease*: fewer skips with the same
    grid means evaluations leaked back in.

Exit status: 0 when every check passes, 1 on any regression, 2 on usage
or file errors. The full delta table prints either way so CI logs show
the numbers, not just the verdict.
"""

import argparse
import json
import sys

# Counters that must never grow relative to the baseline (same seed, same
# query => byte-identical traversal => identical counts or better reuse).
MONOTONE_COUNTERS = ("sim_evaluations", "states_visited", "heap_pops")

# Counters that must never shrink: every lattice cell resolves to exactly
# one of heap_pops (paid an evaluation) or grid_cells_skipped (proved away
# by its precomputed priority), so with states_visited pinned, losing
# skips means paying for cells the frontier used to prune.
ANTITONE_COUNTERS = ("grid_cells_skipped",)


def iter_latency_fields(node, path=""):
    """Yields (path, value) for every *_ms number in a nested report.

    Engine metrics snapshots (`metrics` subtrees) are skipped: their
    gauges record one arbitrary run's wall times, not a benchmark median,
    so they carry no latency contract."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "metrics":
                continue
            child = f"{path}.{key}" if path else key
            if isinstance(value, (int, float)) and key.endswith("_ms"):
                yield child, float(value)
            else:
                yield from iter_latency_fields(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from iter_latency_fields(value, f"{path}[{label(node, i)}]")


def iter_counter_fields(node, names, path=""):
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if isinstance(value, (int, float)) and key in names:
                yield child, float(value)
            else:
                yield from iter_counter_fields(value, names, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from iter_counter_fields(
                value, names, f"{path}[{label(node, i)}]"
            )


def label(parent, index):
    """Stable element label: sweep entries are keyed by their parameters
    (threads/beam/pattern_length) so reordering or appending entries does
    not misalign the comparison."""
    entry = parent[index]
    if isinstance(entry, dict):
        parts = [
            f"{k}={entry[k]}"
            for k in ("threads", "beam", "pattern_length")
            if k in entry
        ]
        if parts:
            return ",".join(parts)
    return str(index)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=0.10,
        help="max allowed fractional latency regression (default 0.10)",
    )
    parser.add_argument(
        "--min-latency-ms",
        type=float,
        default=0.1,
        help="skip latency checks below this baseline value (timer noise)",
    )
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2

    # The trace sample embeds per-span wall times from one arbitrary run;
    # they are diagnostic, not a latency contract.
    baseline.pop("trace_sample", None)
    current.pop("trace_sample", None)

    base_latency = dict(iter_latency_fields(baseline))
    cur_latency = dict(iter_latency_fields(current))
    base_counters = dict(iter_counter_fields(baseline, MONOTONE_COUNTERS))
    cur_counters = dict(iter_counter_fields(current, MONOTONE_COUNTERS))
    base_antitone = dict(iter_counter_fields(baseline, ANTITONE_COUNTERS))
    cur_antitone = dict(iter_counter_fields(current, ANTITONE_COUNTERS))

    failures = []
    print(f"{'field':60s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
    for path in sorted(base_latency):
        if path not in cur_latency:
            failures.append(f"latency field disappeared: {path}")
            continue
        base, cur = base_latency[path], cur_latency[path]
        delta = (cur - base) / base if base > 0 else 0.0
        verdict = ""
        if base < args.min_latency_ms:
            verdict = "  (skipped: below noise floor)"
        elif delta > args.latency_tolerance:
            verdict = "  REGRESSION"
            failures.append(
                f"{path}: {base:.3f}ms -> {cur:.3f}ms (+{delta:.1%}, "
                f"tolerance {args.latency_tolerance:.0%})"
            )
        print(f"{path:60s} {base:12.3f} {cur:12.3f} {delta:+8.1%}{verdict}")

    for path in sorted(base_counters):
        if path not in cur_counters:
            failures.append(f"counter disappeared: {path}")
            continue
        base, cur = base_counters[path], cur_counters[path]
        mark = ""
        if cur > base:
            mark = "  REGRESSION"
            failures.append(
                f"{path}: {base:.0f} -> {cur:.0f} (work counter increased)"
            )
        print(f"{path:60s} {base:12.0f} {cur:12.0f} {cur - base:+8.0f}{mark}")

    for path in sorted(base_antitone):
        if path not in cur_antitone:
            failures.append(f"counter disappeared: {path}")
            continue
        base, cur = base_antitone[path], cur_antitone[path]
        mark = ""
        if cur < base:
            mark = "  REGRESSION"
            failures.append(
                f"{path}: {base:.0f} -> {cur:.0f} (pruning counter shrank)"
            )
        print(f"{path:60s} {base:12.0f} {cur:12.0f} {cur - base:+8.0f}{mark}")

    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nno regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
