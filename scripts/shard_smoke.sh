#!/usr/bin/env bash
# Black-box smoke of the sharded serving stack:
#
#   1. hmmm_shardctl partitions a synthetic archive into N shards,
#      writing the unsharded reference (global.catalog/.model), the
#      per-shard slices, and shards.map.
#   2. N hmmm_serverd shard processes + one hmmm_coordd front end boot,
#      alongside one hmmm_serverd over the unsharded archive.
#   3. A query mix is issued against both front ends and byte-diffed:
#      the coordinator's merged ranking must be identical to the
#      single-process server's, down to the %.6f-formatted scores.
#   4. One shard is SIGKILLed. The same query must then come back
#      degraded (degraded=true, videos_skipped = the dead shard's
#      share) — never as an error.
#
#   3b. A second fleet boots from the partition's snapshot slices
#      (--snapshot shard<i>.hmms, the mmap cold-start path) plus one
#      snapshot-booted unsharded server from global.hmms; both are
#      byte-diffed against the blob-booted reference. Frozen pages must
#      serve the same bytes the blob loader rebuilds.
#
#   5. A second, replicated deployment boots (2 replicas per range) and
#      the primary of one range is SIGKILLed: every query must keep
#      answering degraded=false and byte-identical to the reference —
#      failover must be invisible. Killing the range's LAST replica must
#      then degrade (not error), and a SIGHUP shard-map reload under the
#      degraded deployment must hot-swap without a restart.
#
# Usage: shard_smoke.sh [BUILD_DIR] [NUM_SHARDS] [VIDEOS]
set -euo pipefail

BUILD_DIR=${1:-build}
NUM_SHARDS=${2:-3}
VIDEOS=${3:-9}

SHARDCTL=$BUILD_DIR/examples/hmmm_shardctl
COORDD=$BUILD_DIR/examples/hmmm_coordd
SERVERD=$BUILD_DIR/src/hmmm_serverd
CLI=$BUILD_DIR/examples/query_client_cli
TRACE=$BUILD_DIR/examples/hmmm_trace
for bin in "$SHARDCTL" "$COORDD" "$SERVERD" "$CLI" "$TRACE"; do
  [[ -x $bin ]] || { echo "missing binary: $bin" >&2; exit 2; }
done

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Polls a daemon's log for the LISTENING line and echoes the port.
wait_port() {
  local log=$1 port=""
  for _ in $(seq 1 100); do
    port=$(grep -oP 'LISTENING port=\K[0-9]+' "$log" 2>/dev/null) && break
    sleep 0.1
  done
  [[ -n $port ]] || { echo "no LISTENING line in $log" >&2; cat "$log" >&2; exit 1; }
  echo "$port"
}

echo "== partitioning $VIDEOS videos into $NUM_SHARDS shards =="
"$SHARDCTL" partition --synthetic --videos "$VIDEOS" \
  --shards "$NUM_SHARDS" --out "$WORK/dep"

echo "== booting $NUM_SHARDS shard servers =="
SHARD_FLAGS=()
SHARD_PIDS=()
for s in $(seq 0 $((NUM_SHARDS - 1))); do
  "$SERVERD" --catalog "$WORK/dep/shard$s.catalog" \
    --model "$WORK/dep/shard$s.model" --port 0 \
    > "$WORK/shard$s.log" 2>&1 &
  SHARD_PIDS+=($!)
  PIDS+=($!)
done
for s in $(seq 0 $((NUM_SHARDS - 1))); do
  port=$(wait_port "$WORK/shard$s.log")
  SHARD_FLAGS+=(--shard "127.0.0.1:$port")
  echo "shard $s: 127.0.0.1:$port (pid ${SHARD_PIDS[$s]})"
done

echo "== booting coordinator and unsharded reference server =="
"$COORDD" --shard-map "$WORK/dep/shards.map" "${SHARD_FLAGS[@]}" --port 0 \
  > "$WORK/coordd.log" 2>&1 &
PIDS+=($!)
"$SERVERD" --catalog "$WORK/dep/global.catalog" \
  --model "$WORK/dep/global.model" --port 0 \
  > "$WORK/reference.log" 2>&1 &
PIDS+=($!)
COORD_PORT=$(wait_port "$WORK/coordd.log")
REF_PORT=$(wait_port "$WORK/reference.log")
echo "coordinator: 127.0.0.1:$COORD_PORT  reference: 127.0.0.1:$REF_PORT"

"$CLI" 127.0.0.1 "$COORD_PORT" health
"$CLI" 127.0.0.1 "$REF_PORT" health

echo "== byte-diffing coordinator vs single-process rankings =="
QUERIES=(
  "free_kick ; goal"
  "goal"
  "corner_kick ; goal"
  "foul ; free_kick ; goal"
  "free_kick & goal ; corner_kick"
)
for query in "${QUERIES[@]}"; do
  "$CLI" 127.0.0.1 "$COORD_PORT" query "$query" > "$WORK/coord.out"
  "$CLI" 127.0.0.1 "$REF_PORT" query "$query" > "$WORK/ref.out"
  if ! diff -u "$WORK/ref.out" "$WORK/coord.out"; then
    echo "FAIL: coordinator ranking differs for '$query'" >&2
    exit 1
  fi
  echo "BYTE-IDENTICAL: '$query' ($(grep -c $'\t' "$WORK/coord.out" || true) rows)"
done

echo "== booting a snapshot-backed fleet (mmap cold start) =="
SNAP_SHARD_FLAGS=()
SNAP_PIDS=()
for s in $(seq 0 $((NUM_SHARDS - 1))); do
  [[ -f $WORK/dep/shard$s.hmms ]] || {
    echo "FAIL: partition emitted no snapshot slice shard$s.hmms" >&2
    exit 1; }
  "$SERVERD" --snapshot "$WORK/dep/shard$s.hmms" --snapshot-verify --port 0 \
    > "$WORK/snap_shard$s.log" 2>&1 &
  SNAP_PIDS+=($!)
  PIDS+=($!)
done
for s in $(seq 0 $((NUM_SHARDS - 1))); do
  port=$(wait_port "$WORK/snap_shard$s.log")
  SNAP_SHARD_FLAGS+=(--shard "127.0.0.1:$port")
done
"$COORDD" --shard-map "$WORK/dep/shards.map" "${SNAP_SHARD_FLAGS[@]}" \
  --port 0 > "$WORK/snap_coordd.log" 2>&1 &
SNAP_PIDS+=($!)
PIDS+=($!)
"$SERVERD" --snapshot "$WORK/dep/global.hmms" --snapshot-verify --port 0 \
  > "$WORK/snap_global.log" 2>&1 &
SNAP_PIDS+=($!)
PIDS+=($!)
SNAP_COORD_PORT=$(wait_port "$WORK/snap_coordd.log")
SNAP_GLOBAL_PORT=$(wait_port "$WORK/snap_global.log")
echo "snapshot coordinator: 127.0.0.1:$SNAP_COORD_PORT" \
     "snapshot global: 127.0.0.1:$SNAP_GLOBAL_PORT"

for query in "${QUERIES[@]}"; do
  "$CLI" 127.0.0.1 "$REF_PORT" query "$query" > "$WORK/ref.out"
  "$CLI" 127.0.0.1 "$SNAP_COORD_PORT" query "$query" > "$WORK/snap_coord.out"
  if ! diff -u "$WORK/ref.out" "$WORK/snap_coord.out"; then
    echo "FAIL: snapshot-booted shard fleet differs for '$query'" >&2
    exit 1
  fi
  "$CLI" 127.0.0.1 "$SNAP_GLOBAL_PORT" query "$query" > "$WORK/snap_global.out"
  if ! diff -u "$WORK/ref.out" "$WORK/snap_global.out"; then
    echo "FAIL: snapshot-booted unsharded server differs for '$query'" >&2
    exit 1
  fi
  echo "SNAPSHOT-IDENTICAL: '$query'"
done
# The snapshot fleet proved its point; free its processes before the
# failure-injection legs below.
for pid in "${SNAP_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done

echo "== fetching a sampled distributed trace through the coordinator =="
"$TRACE" --port "$COORD_PORT" --jsonl query "free_kick ; goal" \
  > "$WORK/trace.jsonl"
# The assembled tree must contain one grafted server_query sub-trace per
# live shard, each fan-out span tagged with its shard id.
SERVER_SPANS=$(grep -c '"name":"server_query"' "$WORK/trace.jsonl" || true)
[[ $SERVER_SPANS -eq $NUM_SHARDS ]] || {
  echo "FAIL: trace has $SERVER_SPANS server_query spans, want $NUM_SHARDS" >&2
  cat "$WORK/trace.jsonl" >&2; exit 1; }
for s in $(seq 0 $((NUM_SHARDS - 1))); do
  grep -q "\"shard\":\"$s\"" "$WORK/trace.jsonl" || {
    echo "FAIL: trace lacks a fan-out span for shard $s" >&2
    cat "$WORK/trace.jsonl" >&2; exit 1; }
done
grep -q '"name":"coordinator_query"' "$WORK/trace.jsonl" || {
  echo "FAIL: trace lacks the coordinator root span" >&2; exit 1; }
echo "TRACED: $SERVER_SPANS shard sub-traces under one coordinator root"

echo "== killing shard 1 (SIGKILL), expecting degraded — not an error =="
kill -9 "${SHARD_PIDS[1]}"
wait "${SHARD_PIDS[1]}" 2>/dev/null || true
"$CLI" 127.0.0.1 "$COORD_PORT" query "free_kick ; goal" --budget 2000 \
  > "$WORK/degraded.out"
cat "$WORK/degraded.out"
grep -q 'degraded=true' "$WORK/degraded.out" || {
  echo "FAIL: dead shard did not degrade the response" >&2; exit 1; }
grep -Eq 'videos_skipped=[1-9]' "$WORK/degraded.out" || {
  echo "FAIL: degraded response skipped no videos" >&2; exit 1; }

# The surviving shards must still produce their slice of the ranking.
grep -q $'\tv' "$WORK/degraded.out" || {
  echo "FAIL: degraded response lost the surviving shards' results" >&2
  exit 1; }

echo "== tracing through the degraded fan-out =="
"$TRACE" --port "$COORD_PORT" --budget-ms 2000 --jsonl \
  query "free_kick ; goal" > "$WORK/trace_degraded.jsonl"
grep -q '# results=.* degraded=1' "$WORK/trace_degraded.jsonl" || {
  echo "FAIL: traced degraded query not marked degraded" >&2
  cat "$WORK/trace_degraded.jsonl" >&2; exit 1; }
# The dead shard contributes no sub-trace: one fewer server_query span,
# and shard 1's fan-out span carries an error tag instead.
DEGRADED_SPANS=$(grep -c '"name":"server_query"' "$WORK/trace_degraded.jsonl" || true)
[[ $DEGRADED_SPANS -eq $((NUM_SHARDS - 1)) ]] || {
  echo "FAIL: degraded trace has $DEGRADED_SPANS server_query spans," \
       "want $((NUM_SHARDS - 1))" >&2
  cat "$WORK/trace_degraded.jsonl" >&2; exit 1; }
grep '"shard":"1"' "$WORK/trace_degraded.jsonl" | grep -q '"error"' || {
  echo "FAIL: dead shard's fan-out span lacks an error tag" >&2
  cat "$WORK/trace_degraded.jsonl" >&2; exit 1; }
echo "TRACED-DEGRADED: dead shard absent, error tagged on its fan-out span"

echo "== dumping the coordinator's slow-query log =="
"$TRACE" --port "$COORD_PORT" slow > "$WORK/slow.jsonl" || {
  echo "FAIL: slow-query dump errored" >&2; exit 1; }
grep -q '"reason":"degraded"' "$WORK/slow.jsonl" || {
  echo "FAIL: degraded query missing from the slow-query log" >&2
  cat "$WORK/slow.jsonl" >&2; exit 1; }

echo "== booting the replicated deployment (2 replicas per range) =="
REPL_FLAGS=()
PRIMARY_PIDS=()
REPLICA_PIDS=()
for s in $(seq 0 $((NUM_SHARDS - 1))); do
  for r in 0 1; do
    "$SERVERD" --catalog "$WORK/dep/shard$s.catalog" \
      --model "$WORK/dep/shard$s.model" --port 0 \
      > "$WORK/repl_shard${s}_r${r}.log" 2>&1 &
    pid=$!
    PIDS+=($pid)
    if [[ $r -eq 0 ]]; then PRIMARY_PIDS+=($pid); else REPLICA_PIDS+=($pid); fi
  done
done
for s in $(seq 0 $((NUM_SHARDS - 1))); do
  p0=$(wait_port "$WORK/repl_shard${s}_r0.log")
  p1=$(wait_port "$WORK/repl_shard${s}_r1.log")
  REPL_FLAGS+=(--shard "127.0.0.1:$p0,127.0.0.1:$p1")
  echo "shard $s: primary 127.0.0.1:$p0 (pid ${PRIMARY_PIDS[$s]})," \
       "replica 127.0.0.1:$p1 (pid ${REPLICA_PIDS[$s]})"
done
"$COORDD" --shard-map "$WORK/dep/shards.map" "${REPL_FLAGS[@]}" --port 0 \
  --health-probe-interval-ms 100 --breaker-cooldown-ms 500 \
  > "$WORK/repl_coordd.log" 2>&1 &
REPL_COORD_PID=$!
PIDS+=($REPL_COORD_PID)
REPL_PORT=$(wait_port "$WORK/repl_coordd.log")
echo "replicated coordinator: 127.0.0.1:$REPL_PORT (pid $REPL_COORD_PID)"
"$CLI" 127.0.0.1 "$REPL_PORT" health

echo "== SIGKILLing shard 1's primary: failover must be invisible =="
kill -9 "${PRIMARY_PIDS[1]}"
wait "${PRIMARY_PIDS[1]}" 2>/dev/null || true
DEGRADED_COUNT=0
for query in "${QUERIES[@]}"; do
  "$CLI" 127.0.0.1 "$REPL_PORT" query "$query" > "$WORK/repl.out"
  "$CLI" 127.0.0.1 "$REF_PORT" query "$query" > "$WORK/ref.out"
  if ! diff -u "$WORK/ref.out" "$WORK/repl.out"; then
    echo "FAIL: replicated ranking differs for '$query' after primary kill" >&2
    exit 1
  fi
  if grep -q 'degraded=true' "$WORK/repl.out"; then
    DEGRADED_COUNT=$((DEGRADED_COUNT + 1))
  fi
  echo "FAILOVER-IDENTICAL: '$query'"
done
[[ $DEGRADED_COUNT -eq 0 ]] || {
  echo "FAIL: $DEGRADED_COUNT queries degraded despite a live replica" >&2
  exit 1; }

echo "== SIGKILLing shard 1's last replica: now it must degrade =="
kill -9 "${REPLICA_PIDS[1]}"
wait "${REPLICA_PIDS[1]}" 2>/dev/null || true
"$CLI" 127.0.0.1 "$REPL_PORT" query "free_kick ; goal" --budget 2000 \
  > "$WORK/repl_degraded.out"
grep -q 'degraded=true' "$WORK/repl_degraded.out" || {
  echo "FAIL: range with no live replica did not degrade" >&2
  cat "$WORK/repl_degraded.out" >&2; exit 1; }

echo "== SIGHUP hot reload on the live coordinator =="
touch "$WORK/dep/shards.map"  # epoch <= live is auto-bumped on SIGHUP
kill -HUP "$REPL_COORD_PID"
for _ in $(seq 1 50); do
  grep -q 'RELOADED epoch=' "$WORK/repl_coordd.log" && break
  sleep 0.1
done
grep -q 'RELOADED epoch=' "$WORK/repl_coordd.log" || {
  echo "FAIL: coordinator never logged the SIGHUP reload" >&2
  cat "$WORK/repl_coordd.log" >&2; exit 1; }
# The reloaded map serves immediately — same process, same port.
"$CLI" 127.0.0.1 "$REPL_PORT" query "goal" --budget 2000 > "$WORK/reload.out"
grep -q $'\tv' "$WORK/reload.out" || {
  echo "FAIL: no results after the hot reload" >&2; exit 1; }
echo "RELOADED: hot swap served queries without a restart"

echo "== shard smoke passed =="
