// Sharded-serving benchmark: end-to-end throughput and latency of the
// CoordinatorServer scatter-gather path over loopback TCP at 1/2/4
// shards, against a single-process QueryServer over the same archive.
// Every deployment serves the same PartitionForServing slices of one
// global model, so the merged rankings are byte-identical across shard
// counts — the sweep measures what the fan-out/merge hop costs, not a
// different workload. Writes BENCH_sharding.json for the CI baseline
// gate (bench_compare.py checks every *_ms field).

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "api/catalog_partition.h"
#include "bench_util.h"
#include "coordinator/coordinator_service.h"
#include "server/shard_map.h"

namespace hmmm::bench {
namespace {

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "free_kick ; goal",
      "corner_kick ; goal",
      "free_kick ; corner_kick",
      "goal ; goal",
      "foul ; free_kick ; goal",
      "yellow_card ; free_kick",
      "goal_kick ; corner_kick",
      "free_kick & goal ; corner_kick",
  };
  return queries;
}

VideoDatabase& Database() {
  static VideoDatabase* db = [] {
    VideoDatabaseOptions options;
    // No result cache: every served request must run a real traversal,
    // so the sweep measures retrieval + fan-out, not cache hits.
    options.query_cache_entries = 0;
    auto created =
        VideoDatabase::Create(MakeSoccerCatalog(/*num_videos=*/30), options);
    HMMM_CHECK(created.ok());
    return new VideoDatabase(std::move(created).value());
  }();
  return *db;
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      fraction * static_cast<double>(values.size() - 1));
  return values[index];
}

/// One booted sharded deployment: N shard QueryServers over slices of
/// the global archive, plus a coordinator front end fanning over them.
struct Deployment {
  std::vector<std::unique_ptr<VideoDatabase>> shard_dbs;
  std::vector<std::unique_ptr<QueryServer>> shard_servers;
  std::unique_ptr<CoordinatorServer> coordinator;

  ~Deployment() {
    if (coordinator != nullptr) coordinator->Shutdown();
    for (auto& server : shard_servers) server->Shutdown();
  }
};

std::unique_ptr<Deployment> BootDeployment(int num_shards,
                                           int replicas = 1) {
  auto deployment = std::make_unique<Deployment>();
  ShardMap map;
  // PartitionForServing is deterministic, so partitioning once per
  // replica produces byte-identical slices — exactly how a replicated
  // deployment is provisioned for real.
  for (int r = 0; r < replicas; ++r) {
    StatusOr<std::vector<CatalogShard>> shards =
        PartitionForServing(Database().catalog(), Database().model(),
                            num_shards);
    HMMM_CHECK(shards.ok());
    if (r == 0) map = ShardMapFromPartition(*shards, Database().catalog());
    for (size_t s = 0; s < shards->size(); ++s) {
      VideoDatabaseOptions options;
      options.query_cache_entries = 0;
      StatusOr<VideoDatabase> db = VideoDatabase::CreateWithModel(
          std::move((*shards)[s].catalog), std::move((*shards)[s].model),
          options);
      HMMM_CHECK(db.ok());
      deployment->shard_dbs.push_back(
          std::make_unique<VideoDatabase>(std::move(db).value()));
      QueryServerOptions server_options;
      server_options.num_workers = 2;
      auto server = std::make_unique<QueryServer>(
          deployment->shard_dbs.back().get(), server_options);
      HMMM_CHECK(server->Start().ok());
      const std::string endpoint =
          StrFormat("127.0.0.1:%u", static_cast<unsigned>(server->port()));
      if (r == 0) {
        map.shards[s].endpoint = endpoint;
      } else {
        map.shards[s].replica_endpoints.push_back(endpoint);
      }
      deployment->shard_servers.push_back(std::move(server));
    }
  }
  QueryServerOptions front_options;
  front_options.num_workers = 4;
  StatusOr<std::unique_ptr<CoordinatorServer>> coordinator =
      CoordinatorServer::Create(std::move(map), CoordinatorOptions{},
                                front_options);
  HMMM_CHECK(coordinator.ok());
  deployment->coordinator = std::move(coordinator).value();
  HMMM_CHECK(deployment->coordinator->Start().ok());
  return deployment;
}

struct SweepPoint {
  int shards = 0;
  int clients = 0;
  int requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double median_request_ms = 0.0;
  double p99_request_ms = 0.0;
};

/// Runs `clients` concurrent QueryClients, each issuing
/// `requests_per_client` temporal queries against the given port.
SweepPoint RunSweepPoint(uint16_t port, int shards, int clients,
                         int requests_per_client) {
  std::vector<std::vector<double>> per_client_ms(
      static_cast<size_t>(clients));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const double wall_ms = TimeMillis([&] {
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        QueryClientOptions client_options;
        client_options.port = port;
        QueryClient client(client_options);
        auto& latencies = per_client_ms[static_cast<size_t>(c)];
        latencies.reserve(static_cast<size_t>(requests_per_client));
        for (int i = 0; i < requests_per_client; ++i) {
          TemporalQueryRequest request;
          request.text =
              Queries()[static_cast<size_t>(c + i) % Queries().size()];
          const double ms = TimeMillis([&] {
            if (!client.TemporalQuery(request).ok()) ++failures;
          });
          latencies.push_back(ms);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  });
  HMMM_CHECK(failures.load() == 0);

  std::vector<double> all;
  for (const auto& latencies : per_client_ms) {
    all.insert(all.end(), latencies.begin(), latencies.end());
  }
  SweepPoint point;
  point.shards = shards;
  point.clients = clients;
  point.requests = clients * requests_per_client;
  point.wall_ms = wall_ms;
  point.qps = wall_ms > 0.0 ? 1000.0 * point.requests / wall_ms : 0.0;
  point.median_request_ms = Percentile(all, 0.5);
  point.p99_request_ms = Percentile(all, 0.99);
  return point;
}

/// Median served latency of the same query mix against one unsharded
/// QueryServer — the no-coordinator floor the sharded numbers are
/// compared against.
double SingleProcessMedianMs() {
  QueryServerOptions options;
  options.num_workers = 2;
  QueryServer server(&Database(), options);
  HMMM_CHECK(server.Start().ok());
  const SweepPoint point =
      RunSweepPoint(server.port(), /*shards=*/0, /*clients=*/1,
                    /*requests_per_client=*/25);
  server.Shutdown();
  return point.median_request_ms;
}

void RunShardingBench() {
  const double single_process_ms = SingleProcessMedianMs();

  Banner("sharding: shards x clients sweep (loopback TCP, coordinator)");
  Row({"shards", "clients", "requests", "wall ms", "qps", "median ms",
       "p99 ms"});
  std::vector<std::string> sweep_json;
  std::vector<SweepPoint> sweep;
  for (int num_shards : {1, 2, 4}) {
    const std::unique_ptr<Deployment> deployment = BootDeployment(num_shards);
    for (int clients : {1, 4}) {
      const SweepPoint point =
          RunSweepPoint(deployment->coordinator->port(), num_shards, clients,
                        /*requests_per_client=*/25);
      sweep.push_back(point);
      Row({StrFormat("%d", point.shards), StrFormat("%d", point.clients),
           StrFormat("%d", point.requests), Fmt("%.2f", point.wall_ms),
           Fmt("%.0f", point.qps), Fmt("%.3f", point.median_request_ms),
           Fmt("%.3f", point.p99_request_ms)});
      sweep_json.push_back(JsonObject({
          {"shards", JsonNumber(point.shards)},
          {"clients", JsonNumber(point.clients)},
          {"requests", JsonNumber(point.requests)},
          {"wall_ms", JsonNumber(point.wall_ms)},
          {"qps", JsonNumber(point.qps)},
          {"median_request_ms", JsonNumber(point.median_request_ms)},
          {"p99_request_ms", JsonNumber(point.p99_request_ms)},
      }));
    }
  }

  // Replicated serving rides the same sweep: 2 shards x 2 replicas with
  // every primary healthy, measuring what the failover/breaker/health
  // bookkeeping costs on the happy path (appended last so the earlier
  // sweep indices stay aligned with older baselines).
  {
    const std::unique_ptr<Deployment> deployment =
        BootDeployment(/*num_shards=*/2, /*replicas=*/2);
    const SweepPoint point =
        RunSweepPoint(deployment->coordinator->port(), /*shards=*/2,
                      /*clients=*/4, /*requests_per_client=*/25);
    sweep.push_back(point);
    Row({StrFormat("%d*2", point.shards), StrFormat("%d", point.clients),
         StrFormat("%d", point.requests), Fmt("%.2f", point.wall_ms),
         Fmt("%.0f", point.qps), Fmt("%.3f", point.median_request_ms),
         Fmt("%.3f", point.p99_request_ms)});
    sweep_json.push_back(JsonObject({
        {"shards", JsonNumber(point.shards)},
        {"replicas", JsonNumber(2)},
        {"clients", JsonNumber(point.clients)},
        {"requests", JsonNumber(point.requests)},
        {"wall_ms", JsonNumber(point.wall_ms)},
        {"qps", JsonNumber(point.qps)},
        {"median_request_ms", JsonNumber(point.median_request_ms)},
        {"p99_request_ms", JsonNumber(point.p99_request_ms)},
    }));
  }

  // Coordinator overhead: one unloaded client at one shard, relative to
  // the single-process served floor (one extra loopback hop + merge).
  const double coordinated_ms = sweep.front().median_request_ms;
  Banner("sharding: single-request coordinator overhead");
  Row({"single-process ms", "1-shard coordinated ms", "overhead ms"});
  Row({Fmt("%.3f", single_process_ms), Fmt("%.3f", coordinated_ms),
       Fmt("%.3f", coordinated_ms - single_process_ms)});

  WriteBenchJson(
      "BENCH_sharding.json",
      JsonObject({
          {"benchmark", JsonQuote("sharding")},
          {"videos",
           JsonNumber(static_cast<double>(Database().catalog().num_videos()))},
          {"shots",
           JsonNumber(static_cast<double>(Database().catalog().num_shots()))},
          {"single_process_median_ms", JsonNumber(single_process_ms)},
          {"coordinated_median_ms", JsonNumber(coordinated_ms)},
          {"coordinator_overhead_ms",
           JsonNumber(coordinated_ms - single_process_ms)},
          {"sweep", JsonArray(sweep_json)},
      }));
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::RunShardingBench();
  return 0;
}
