// Experiment F4 — Figure 4 of the paper: the MATN-based query model and a
// ranked temporal-pattern result list. Reproduces the paper's example
// queries — the Fig. 4/5 "goal followed by a free kick" demonstration
// (paper: 8 two-shot patterns / 16 shots) and the Section-3 four-step
// pattern — printing the MATN and the ranked result table.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

const VideoCatalog& Catalog() {
  // Densely annotated mid-size archive so the demo queries have many hits.
  static const VideoCatalog& catalog =
      *new VideoCatalog(MakeSoccerCatalog(16, 42, 0.30, 60, 110));
  return catalog;
}

void BM_Fig4Query(benchmark::State& state) {
  auto engine = RetrievalEngine::Create(Catalog());
  HMMM_CHECK(engine.ok());
  for (auto _ : state) {
    auto results = engine->Query("goal ; free_kick");
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_Fig4Query);

void RunQueryDemo(const std::string& query, int top_k) {
  const EventVocabulary& vocab = Catalog().vocabulary();
  auto graph = ParseQuery(query, vocab);
  HMMM_CHECK(graph.ok());
  std::printf("\nquery: \"%s\"\nMATN:\n%s", query.c_str(),
              graph->ToString(vocab).c_str());

  auto pattern = TranslateMatn(*graph);
  HMMM_CHECK(pattern.ok());

  ModelBuilderOptions builder_options;
  builder_options.learn_feature_weights = true;
  TraversalOptions traversal_options;
  traversal_options.beam_width = 4;
  traversal_options.max_results = top_k;
  auto engine =
      RetrievalEngine::Create(Catalog(), builder_options, traversal_options);
  HMMM_CHECK(engine.ok());

  RetrievalStats stats;
  auto results = engine->Retrieve(*pattern, &stats);
  HMMM_CHECK(results.ok());

  size_t total_shots = 0;
  for (const auto& r : *results) total_shots += r.shots.size();
  std::printf("retrieved %zu ranked patterns (%zu shots)\n", results->size(),
              total_shots);
  Row({"rank", "score", "pattern (video/shot(events))", "annotation match"});
  for (size_t i = 0; i < results->size(); ++i) {
    const bool relevant =
        PatternMatchesAnnotations(Catalog(), (*results)[i].shots, *pattern);
    Row({StrFormat("%2zu", i + 1), Fmt("%10.3e", (*results)[i].score),
         (*results)[i].ToString(Catalog()), relevant ? "yes" : "no"});
  }
  const auto metrics = EvaluateRanking(Catalog(), *pattern, *results,
                                       static_cast<size_t>(top_k));
  std::printf("P@%d=%.2f recall=%.2f MAP=%.2f nDCG=%.2f "
              "(truth occurrences: %zu)\n",
              top_k, metrics.precision_at_k, metrics.recall,
              metrics.average_precision, metrics.ndcg,
              metrics.total_relevant);
}

void PrintFig4() {
  Banner("Figure 4 (reproduced): MATN query model + ranked results");
  // The paper's demonstration query: "a goal shot followed by a free
  // kick", which its interface answered with 8 patterns / 16 shots.
  RunQueryDemo("goal ; free_kick", 8);
  // The Section-3 motivating pattern: free-kick goal, then a corner kick,
  // then a player change, finally another goal.
  RunQueryDemo("free_kick & goal ; corner_kick ; player_change ; goal", 8);
  // An alternative-branch MATN (parallel arcs).
  RunQueryDemo("(corner_kick | free_kick) ; goal", 8);
  std::printf("\nPaper: Fig. 4 shows the MATN for a temporal query and the\n"
              "key frames of retrieved patterns; Fig. 5's walkthrough\n"
              "retrieves 8 two-shot patterns for goal->free_kick. The\n"
              "tables above reproduce that artefact shape: a ranked list\n"
              "of k patterns with C shots each, top-ranked entries being\n"
              "annotation-exact matches.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintFig4();
  return 0;
}
