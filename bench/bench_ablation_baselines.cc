// Ablation A1 — HMMM traversal vs the two baselines: exhaustive
// enumeration (quality gold standard, O(N^C) cost) and ClassView-style
// index join ([10]). The paper's headline claim is that the stochastic
// traversal "assists in retrieving more accurate patterns quickly with
// lower computational costs"; this bench reports who wins, by how much,
// and where.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

void BM_Hmmm(benchmark::State& state) {
  const VideoCatalog catalog =
      MakeSoccerCatalog(static_cast<int>(state.range(0)), 31, 0.1);
  auto model = ModelBuilder(catalog).Build();
  HMMM_CHECK(model.ok());
  HmmmTraversal traversal(*model, catalog);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_Hmmm)->Arg(25)->Arg(54);

void BM_Exhaustive(benchmark::State& state) {
  const VideoCatalog catalog =
      MakeSoccerCatalog(static_cast<int>(state.range(0)), 31, 0.1);
  auto model = ModelBuilder(catalog).Build();
  HMMM_CHECK(model.ok());
  ExhaustiveMatcher matcher(*model, catalog);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = matcher.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_Exhaustive)->Arg(25)->Arg(54);

void BM_IndexJoin(benchmark::State& state) {
  const VideoCatalog catalog =
      MakeSoccerCatalog(static_cast<int>(state.range(0)), 31, 0.1);
  auto model = ModelBuilder(catalog).Build();
  HMMM_CHECK(model.ok());
  const EventIndex index(catalog);
  IndexJoinMatcher matcher(*model, catalog, index);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = matcher.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_IndexJoin)->Arg(25)->Arg(54);

void PrintComparison() {
  Banner("Ablation A1: HMMM vs exhaustive vs index join");
  Row({"videos", "C", "matcher", "latency ms", "tuples/expansions",
       "sim() calls", "top SS / optimum", "P@10"});

  for (int videos : {10, 25, 54, 100}) {
    const VideoCatalog catalog = MakeSoccerCatalog(videos, 31, 0.1);
    ModelBuilderOptions builder_options;
    builder_options.learn_feature_weights = true;
    auto model = ModelBuilder(catalog, builder_options).Build();
    HMMM_CHECK(model.ok());
    const EventIndex index(catalog);

    for (size_t c : {2u, 3u}) {
      const std::vector<EventId> base = {2, 0, 1};
      const auto pattern = TemporalPattern::FromEvents(
          std::vector<EventId>(base.begin(),
                               base.begin() + static_cast<ptrdiff_t>(c)));

      // Exhaustive first (defines the optimum).
      ExhaustiveOptions gold_options;
      gold_options.max_results = 10;
      ExhaustiveMatcher exhaustive(*model, catalog, gold_options);
      RetrievalStats gold_stats;
      std::vector<RetrievedPattern> gold;
      const double gold_ms = MedianMillis([&] {
        gold_stats = RetrievalStats();
        auto r = exhaustive.Retrieve(pattern, &gold_stats);
        HMMM_CHECK(r.ok());
        gold = std::move(r).value();
      }, 3);
      const double optimum = gold.empty() ? 0.0 : gold.front().score;
      auto report = [&](const char* name, double ms,
                        const RetrievalStats& stats,
                        const std::vector<RetrievedPattern>& results) {
        const double top = results.empty() ? 0.0 : results.front().score;
        const auto metrics = EvaluateRanking(catalog, pattern, results, 10);
        Row({StrFormat("%4d", videos), StrFormat("%zu", c),
             StrFormat("%-10s", name), Fmt("%9.3f", ms),
             StrFormat("%8zu", stats.states_visited),
             StrFormat("%8zu", stats.sim_evaluations),
             Fmt("%6.3f", optimum > 0.0 ? top / optimum : 1.0),
             Fmt("%5.2f", metrics.precision_at_k)});
      };
      report("exhaustive", gold_ms, gold_stats, gold);

      auto run_traversal = [&](const char* name, int beam,
                               bool annotated_first) {
        TraversalOptions options;
        options.beam_width = beam;
        options.max_results = 10;
        options.annotated_first = annotated_first;
        HmmmTraversal traversal(*model, catalog, options);
        RetrievalStats stats;
        std::vector<RetrievedPattern> results;
        const double ms = MedianMillis([&] {
          stats = RetrievalStats();
          auto r = traversal.Retrieve(pattern, &stats);
          HMMM_CHECK(r.ok());
          results = std::move(r).value();
        });
        report(name, ms, stats, results);
      };
      run_traversal("hmmm b=1", 1, true);
      run_traversal("hmmm b=4", 4, true);
      run_traversal("hmmm sim", 4, false);  // Step-3 rule ablated

      IndexJoinOptions join_options;
      join_options.max_results = 10;
      IndexJoinMatcher join(*model, catalog, index, join_options);
      RetrievalStats join_stats;
      std::vector<RetrievedPattern> join_results;
      const double join_ms = MedianMillis([&] {
        join_stats = RetrievalStats();
        auto r = join.Retrieve(pattern, &join_stats);
        HMMM_CHECK(r.ok());
        join_results = std::move(r).value();
      });
      report("indexjoin", join_ms, join_stats, join_results);
    }
  }
  std::printf("\nShape reproduced: exhaustive is the quality ceiling but\n"
              "its enumerations grow super-linearly with C and archive\n"
              "size; HMMM traversal costs orders of magnitude fewer\n"
              "expansions while approaching the same top score (the\n"
              "paper's quick-and-accurate claim); the index join is cheap\n"
              "and precise on literally annotated patterns but has no\n"
              "notion of similarity beyond exact annotations.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintComparison();
  return 0;
}
