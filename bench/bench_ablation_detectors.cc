// Ablation A5 — the event-detection substrate: CART decision tree (the
// paper's refs [6][7] use decision-tree/rule mining) vs instance-based
// k-NN, both on real Table-1 features extracted from rendered synthetic
// footage. Reports accuracy, macro-F1 and train/inference costs.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

struct DetectorData {
  LabeledDataset train;
  LabeledDataset test;
};

const DetectorData& Data() {
  static const DetectorData& data = *new DetectorData([] {
    SoccerGeneratorConfig config;
    config.seed = 202;
    config.min_shots_per_video = 12;
    config.max_shots_per_video = 16;
    config.event_shot_fraction = 0.5;
    SoccerVideoGenerator generator(config);
    ShotFeatureExtractor extractor;
    LabeledDataset dataset;
    std::vector<std::vector<double>> rows;
    for (int v = 0; v < 10; ++v) {
      const SyntheticVideo video = generator.Generate(v);
      for (size_t s = 0; s < video.shots.size(); ++s) {
        auto features = extractor.ExtractForShot(video, s);
        HMMM_CHECK(features.ok());
        rows.push_back(std::move(features).value());
        const auto& events = video.shots[s].events;
        dataset.labels.push_back(events.empty() ? kBackgroundLabel
                                                : events[0]);
      }
    }
    auto matrix = Matrix::FromRows(rows);
    HMMM_CHECK(matrix.ok());
    dataset.features = std::move(matrix).value();
    Rng rng(3);
    auto split = SplitDataset(dataset, 0.3, rng);
    HMMM_CHECK(split.ok());
    return DetectorData{std::move(split->train), std::move(split->test)};
  }());
  return data;
}

void BM_TreePredict(benchmark::State& state) {
  DecisionTree tree;
  HMMM_CHECK(tree.Train(Data().train).ok());
  const auto row = Data().test.features.Row(0);
  for (auto _ : state) {
    auto predicted = tree.Predict(row);
    benchmark::DoNotOptimize(predicted);
  }
}
BENCHMARK(BM_TreePredict);

void BM_KnnPredict(benchmark::State& state) {
  KnnClassifier knn;
  HMMM_CHECK(knn.Train(Data().train).ok());
  const auto row = Data().test.features.Row(0);
  for (auto _ : state) {
    auto predicted = knn.Predict(row);
    benchmark::DoNotOptimize(predicted);
  }
}
BENCHMARK(BM_KnnPredict);

void PrintDetectorComparison() {
  Banner("Ablation A5: decision tree vs k-NN event detection");
  std::printf("training set: %zu shots; test set: %zu shots; "
              "classes: events + background\n",
              Data().train.size(), Data().test.size());
  Row({"detector", "train ms", "predict us/shot", "accuracy", "macro-F1"});

  {
    DecisionTree tree;
    const double train_ms =
        MedianMillis([&] { HMMM_CHECK(tree.Train(Data().train).ok()); }, 3);
    const double predict_ms = MedianMillis([&] {
      for (size_t i = 0; i < Data().test.size(); ++i) {
        auto predicted = tree.Predict(Data().test.features.Row(i));
        benchmark::DoNotOptimize(predicted);
      }
    });
    auto metrics = EvaluateClassifier(tree, Data().test);
    HMMM_CHECK(metrics.ok());
    Row({"decision tree", Fmt("%8.2f", train_ms),
         Fmt("%8.2f", 1000.0 * predict_ms /
                          static_cast<double>(Data().test.size())),
         Fmt("%5.2f", metrics->accuracy), Fmt("%5.2f", metrics->MacroF1())});
  }
  for (int k : {1, 5, 9}) {
    KnnOptions options;
    options.k = k;
    KnnClassifier knn(options);
    const double train_ms =
        MedianMillis([&] { HMMM_CHECK(knn.Train(Data().train).ok()); }, 3);
    double correct = 0.0;
    std::map<int, std::pair<size_t, size_t>> per_class;  // hits, support
    const double predict_ms = MedianMillis([&] {
      correct = 0.0;
      for (size_t i = 0; i < Data().test.size(); ++i) {
        auto predicted = knn.Predict(Data().test.features.Row(i));
        HMMM_CHECK(predicted.ok());
        if (*predicted == Data().test.labels[i]) correct += 1.0;
      }
    });
    // Macro-F1 via a second pass (cheap).
    std::map<int, size_t> support, predicted_count, hits;
    for (size_t i = 0; i < Data().test.size(); ++i) {
      const int truth = Data().test.labels[i];
      const int predicted = *knn.Predict(Data().test.features.Row(i));
      ++support[truth];
      ++predicted_count[predicted];
      if (predicted == truth) ++hits[truth];
    }
    double f1_sum = 0.0;
    size_t counted = 0;
    for (const auto& [label, n] : support) {
      const double p = predicted_count[label] > 0
                           ? static_cast<double>(hits[label]) /
                                 static_cast<double>(predicted_count[label])
                           : 0.0;
      const double r = static_cast<double>(hits[label]) /
                       static_cast<double>(n);
      f1_sum += (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
      ++counted;
    }
    Row({StrFormat("k-NN (k=%d)", k), Fmt("%8.2f", train_ms),
         Fmt("%8.2f", 1000.0 * predict_ms /
                          static_cast<double>(Data().test.size())),
         Fmt("%5.2f", correct / static_cast<double>(Data().test.size())),
         Fmt("%5.2f", f1_sum / static_cast<double>(counted))});
  }
  std::printf("\nShape: the tree pays its cost at training time and\n"
              "predicts in sub-microsecond leaf walks; k-NN trains for\n"
              "free but scans the training set per prediction. On these\n"
              "well-separated synthetic features their accuracy is in the\n"
              "same band — supporting the paper's choice of tree/rule\n"
              "detectors for the annotation pipeline where inference cost\n"
              "dominates (every shot of every ingested video).\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintDetectorComparison();
  return 0;
}
