// Experiment F2 — Figure 2 of the paper: the 9-step retrieval flowchart.
// Measures the cost of the retrieval process (latency, lattice expansions,
// Eq.-14 evaluations) as the archive grows, for the paper's example query.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

struct Scale {
  VideoCatalog catalog;
  HierarchicalModel model;
};

Scale MakeScale(int videos) {
  Scale scale{MakeSoccerCatalog(videos, 13, 0.08), {}};
  auto model = ModelBuilder(scale.catalog).Build();
  HMMM_CHECK(model.ok());
  scale.model = std::move(model).value();
  return scale;
}

void BM_RetrieveTwoStep(benchmark::State& state) {
  const Scale scale = MakeScale(static_cast<int>(state.range(0)));
  HmmmTraversal traversal(scale.model, scale.catalog);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(StrFormat("%zu shots", scale.catalog.num_shots()));
}
BENCHMARK(BM_RetrieveTwoStep)->Arg(10)->Arg(25)->Arg(54)->Arg(100);

void BM_RetrieveTwoStepParallel(benchmark::State& state) {
  const Scale scale = MakeScale(static_cast<int>(state.range(0)));
  TraversalOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  HmmmTraversal traversal(scale.model, scale.catalog, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(StrFormat("%zu shots", scale.catalog.num_shots()));
}
BENCHMARK(BM_RetrieveTwoStepParallel)
    ->ArgsProduct({{54, 200}, {1, 2, 4, 8}})
    ->ArgNames({"videos", "threads"});

void BM_QueryCompile(benchmark::State& state) {
  const EventVocabulary vocab = SoccerEvents();
  for (auto _ : state) {
    auto pattern = CompileQuery(
        "free_kick & goal ; corner_kick ; player_change ; goal", vocab);
    benchmark::DoNotOptimize(pattern);
  }
}
BENCHMARK(BM_QueryCompile);

void PrintFlowchartTable() {
  Banner("Figure 2 (reproduced): retrieval process cost vs archive size");
  Row({"videos", "shots", "states", "latency ms", "videos seen",
       "lattice expansions", "sim() calls", "candidates"});
  for (int videos : {10, 25, 54, 100, 200}) {
    const Scale scale = MakeScale(videos);
    HmmmTraversal traversal(scale.model, scale.catalog);
    const auto pattern = TemporalPattern::FromEvents({2, 0});
    RetrievalStats stats;
    const double ms = MedianMillis([&] {
      stats = RetrievalStats();
      auto results = traversal.Retrieve(pattern, &stats);
      HMMM_CHECK(results.ok());
    });
    Row({StrFormat("%4d", videos),
         StrFormat("%6zu", scale.catalog.num_shots()),
         StrFormat("%5zu", scale.catalog.num_annotated_shots()),
         Fmt("%8.3f", ms), StrFormat("%4zu", stats.videos_considered),
         StrFormat("%7zu", stats.states_visited),
         StrFormat("%7zu", stats.sim_evaluations),
         StrFormat("%4zu", stats.candidates_scored)});
  }
  std::printf("\nPaper: Fig. 2's flowchart loops over all M videos (Step 7)\n"
              "and walks each video's shot lattice greedily (Steps 3-5).\n"
              "The measured cost grows linearly in the number of HMMM\n"
              "states, matching that structure — the stochastic traversal\n"
              "touches each lattice level once instead of enumerating all\n"
              "shot combinations.\n");
}

void PrintMemoTable() {
  Banner("Query-plan layer: Eq.-15 memoization vs beam width (54 videos)");
  Row({"beam", "latency ms", "sim() calls", "memo hits", "unmemoized",
       "saved"});
  const Scale scale = MakeScale(54);
  // A four-step query: beams past 1 keep several survivor paths per step,
  // and every surviving path re-scores the shared candidate set.
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1, 3});
  for (int beam : {1, 2, 4, 8, 16}) {
    TraversalOptions options;
    options.beam_width = beam;
    HmmmTraversal traversal(scale.model, scale.catalog, options);
    RetrievalStats stats;
    const double ms = MedianMillis([&] {
      stats = RetrievalStats();
      auto results = traversal.Retrieve(pattern, &stats);
      HMMM_CHECK(results.ok());
    });
    // Every memo hit replaces the evaluations the naive per-path walk
    // would have re-run, so evals + hits is the exact pre-memo count.
    const size_t unmemoized = stats.sim_evaluations + stats.sim_memo_hits;
    Row({StrFormat("%2d", beam), Fmt("%8.3f", ms),
         StrFormat("%7zu", stats.sim_evaluations),
         StrFormat("%7zu", stats.sim_memo_hits),
         StrFormat("%7zu", unmemoized),
         Fmt("%5.2fx", stats.sim_evaluations > 0
                           ? static_cast<double>(unmemoized) /
                                 static_cast<double>(stats.sim_evaluations)
                           : 1.0)});
  }
  std::printf(
      "\nThe greedy walk (beam 1) never revisits a (state, step) pair, so\n"
      "the memo is pure bookkeeping there; at beam B the naive walk\n"
      "re-scores the shared candidate set once per surviving path and the\n"
      "per-walk memo collapses that to once per pair.\n");
}

bool SameRanking(const std::vector<RetrievedPattern>& a,
                 const std::vector<RetrievedPattern>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].shots != b[i].shots || a[i].score != b[i].score ||
        a[i].video != b[i].video || a[i].edge_weights != b[i].edge_weights) {
      return false;
    }
  }
  return true;
}

void PrintThreadSweepTable() {
  Banner("Parallel retrieval: per-video fan-out vs thread count (200 videos)");
  Row({"threads", "latency ms", "speedup", "identical ranking"});
  const Scale scale = MakeScale(200);
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  HmmmTraversal serial(scale.model, scale.catalog);
  auto reference = serial.Retrieve(pattern);
  HMMM_CHECK(reference.ok());
  double serial_ms = 0.0;

  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.num_threads = threads;
    HmmmTraversal traversal(scale.model, scale.catalog, options);
    std::vector<RetrievedPattern> results;
    const double ms = MedianMillis([&] {
      auto retrieved = traversal.Retrieve(pattern);
      HMMM_CHECK(retrieved.ok());
      results = std::move(retrieved).value();
    });
    if (threads == 1) serial_ms = ms;
    Row({StrFormat("%2d", threads), Fmt("%8.3f", ms),
         Fmt("%5.2fx", ms > 0.0 ? serial_ms / ms : 0.0),
         SameRanking(*reference, results) ? "yes" : "NO"});
  }
  std::printf(
      "\nEach candidate video's shot-level lattice walk (Steps 3-5) is\n"
      "independent given the Step-2 video order, so videos shard across\n"
      "a fixed-size pool; per-worker top-K heaps merge under a (score,\n"
      "video-order) total order, keeping the ranking byte-identical to\n"
      "the serial walk at every thread count.\n");
}

/// Machine-readable companion to the tables above: per-thread-count
/// median traversal latency plus a full engine metrics snapshot (query
/// latency histogram, cache hit/miss counters, pool gauges) taken after a
/// warm query loop — 1 cache miss followed by 7 hits per thread count —
/// a beam sweep quantifying the Eq.-15 memo, and the query-plan layer's
/// build costs (model-tier index, per-query plan).
void WriteFig2Json() {
  const Scale scale = MakeScale(54);  // the paper's archive size
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  HmmmTraversal serial(scale.model, scale.catalog);
  auto reference = serial.Retrieve(pattern);
  HMMM_CHECK(reference.ok());

  // Model-tier index build: once per model version, amortized over every
  // query until feedback training bumps the version.
  const double index_build_ms = MedianMillis([&] {
    EventBitmapIndex index(scale.model, scale.catalog);
    benchmark::DoNotOptimize(index);
  });

  // Query-tier plan build: the traced walk exposes the phase directly.
  double plan_build_ms = -1.0;
  {
    QueryTrace trace;
    TraversalOptions options;
    options.trace = &trace;
    HmmmTraversal traced(scale.model, scale.catalog, options);
    HMMM_CHECK(traced.Retrieve(pattern).ok());
    plan_build_ms = SpanElapsedMs(trace, "query_plan_build");
  }

  // The beam sweep uses a four-step query (free_kick ; goal ; corner_kick
  // ; player_change): multi-step beams are where surviving paths share
  // candidate sets, which is exactly what the Eq.-15 memo collapses.
  const auto sweep_pattern = TemporalPattern::FromEvents({2, 0, 1, 3});
  std::vector<std::string> beams;
  for (int beam : {1, 2, 4, 8, 16}) {
    TraversalOptions options;
    options.beam_width = beam;
    HmmmTraversal traversal(scale.model, scale.catalog, options);
    RetrievalStats stats;
    const double ms = MedianMillis([&] {
      stats = RetrievalStats();
      auto results = traversal.Retrieve(sweep_pattern, &stats);
      HMMM_CHECK(results.ok());
    });
    beams.push_back(JsonObject({
        {"beam", JsonNumber(beam)},
        {"median_ms", JsonNumber(ms)},
        {"states_visited",
         JsonNumber(static_cast<double>(stats.states_visited))},
        {"sim_evaluations",
         JsonNumber(static_cast<double>(stats.sim_evaluations))},
        {"sim_memo_hits",
         JsonNumber(static_cast<double>(stats.sim_memo_hits))},
        {"candidate_list_reuse",
         JsonNumber(static_cast<double>(stats.candidate_list_reuse))},
        // What the pre-plan walk evaluated for the same ranking: each
        // memo hit stands for the evaluations it replaced.
        {"sim_evaluations_unmemoized",
         JsonNumber(
             static_cast<double>(stats.sim_evaluations + stats.sim_memo_hits))},
        {"heap_pops", JsonNumber(static_cast<double>(stats.heap_pops))},
        {"grid_cells_skipped",
         JsonNumber(static_cast<double>(stats.grid_cells_skipped))},
    }));
  }

  double serial_ms = 0.0;
  std::vector<std::string> sweep;
  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.num_threads = threads;
    HmmmTraversal traversal(scale.model, scale.catalog, options);
    std::vector<RetrievedPattern> results;
    RetrievalStats stats;
    const double ms = MedianMillis([&] {
      stats = RetrievalStats();
      auto retrieved = traversal.Retrieve(pattern, &stats);
      HMMM_CHECK(retrieved.ok());
      results = std::move(retrieved).value();
    });
    if (threads == 1) serial_ms = ms;

    RetrievalEngine engine(scale.catalog, scale.model, options);
    for (int i = 0; i < 8; ++i) {
      HMMM_CHECK(engine.Retrieve(pattern).ok());
    }
    sweep.push_back(JsonObject({
        {"threads", JsonNumber(threads)},
        {"median_traversal_ms", JsonNumber(ms)},
        {"speedup", JsonNumber(ms > 0.0 ? serial_ms / ms : 0.0)},
        {"identical_ranking", JsonBool(SameRanking(*reference, results))},
        {"sim_evaluations",
         JsonNumber(static_cast<double>(stats.sim_evaluations))},
        {"sim_memo_hits",
         JsonNumber(static_cast<double>(stats.sim_memo_hits))},
        {"candidate_list_reuse",
         JsonNumber(static_cast<double>(stats.candidate_list_reuse))},
        {"heap_pops", JsonNumber(static_cast<double>(stats.heap_pops))},
        {"grid_cells_skipped",
         JsonNumber(static_cast<double>(stats.grid_cells_skipped))},
        {"metrics", engine.DumpMetricsJson()},
    }));
  }

  WriteBenchJson(
      "BENCH_fig2.json",
      JsonObject({
          {"benchmark", JsonQuote("fig2_retrieval")},
          {"query", JsonQuote("free_kick ; goal")},
          {"kernel", JsonQuote(Eq14KernelName(DefaultEq14Kernel()))},
          {"videos", JsonNumber(static_cast<double>(scale.catalog.num_videos()))},
          {"shots", JsonNumber(static_cast<double>(scale.catalog.num_shots()))},
          {"annotated_shots",
           JsonNumber(static_cast<double>(scale.catalog.num_annotated_shots()))},
          {"model_index_build_ms", JsonNumber(index_build_ms)},
          {"plan_build_ms", JsonNumber(plan_build_ms)},
          {"warm_queries_per_thread_count", JsonNumber(8)},
          {"beam_sweep_query",
           JsonQuote("free_kick ; goal ; corner_kick ; player_change")},
          {"beam_sweep", JsonArray(beams)},
          {"thread_sweep", JsonArray(sweep)},
      }));
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintFlowchartTable();
  hmmm::bench::PrintMemoTable();
  hmmm::bench::PrintThreadSweepTable();
  hmmm::bench::WriteFig2Json();
  return 0;
}
