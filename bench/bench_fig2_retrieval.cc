// Experiment F2 — Figure 2 of the paper: the 9-step retrieval flowchart.
// Measures the cost of the retrieval process (latency, lattice expansions,
// Eq.-14 evaluations) as the archive grows, for the paper's example query.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

struct Scale {
  VideoCatalog catalog;
  HierarchicalModel model;
};

Scale MakeScale(int videos) {
  Scale scale{MakeSoccerCatalog(videos, 13, 0.08), {}};
  auto model = ModelBuilder(scale.catalog).Build();
  HMMM_CHECK(model.ok());
  scale.model = std::move(model).value();
  return scale;
}

void BM_RetrieveTwoStep(benchmark::State& state) {
  const Scale scale = MakeScale(static_cast<int>(state.range(0)));
  HmmmTraversal traversal(scale.model, scale.catalog);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(StrFormat("%zu shots", scale.catalog.num_shots()));
}
BENCHMARK(BM_RetrieveTwoStep)->Arg(10)->Arg(25)->Arg(54)->Arg(100);

void BM_RetrieveTwoStepParallel(benchmark::State& state) {
  const Scale scale = MakeScale(static_cast<int>(state.range(0)));
  TraversalOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  HmmmTraversal traversal(scale.model, scale.catalog, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(StrFormat("%zu shots", scale.catalog.num_shots()));
}
BENCHMARK(BM_RetrieveTwoStepParallel)
    ->ArgsProduct({{54, 200}, {1, 2, 4, 8}})
    ->ArgNames({"videos", "threads"});

void BM_QueryCompile(benchmark::State& state) {
  const EventVocabulary vocab = SoccerEvents();
  for (auto _ : state) {
    auto pattern = CompileQuery(
        "free_kick & goal ; corner_kick ; player_change ; goal", vocab);
    benchmark::DoNotOptimize(pattern);
  }
}
BENCHMARK(BM_QueryCompile);

void PrintFlowchartTable() {
  Banner("Figure 2 (reproduced): retrieval process cost vs archive size");
  Row({"videos", "shots", "states", "latency ms", "videos seen",
       "lattice expansions", "sim() calls", "candidates"});
  for (int videos : {10, 25, 54, 100, 200}) {
    const Scale scale = MakeScale(videos);
    HmmmTraversal traversal(scale.model, scale.catalog);
    const auto pattern = TemporalPattern::FromEvents({2, 0});
    RetrievalStats stats;
    const double ms = MedianMillis([&] {
      stats = RetrievalStats();
      auto results = traversal.Retrieve(pattern, &stats);
      HMMM_CHECK(results.ok());
    });
    Row({StrFormat("%4d", videos),
         StrFormat("%6zu", scale.catalog.num_shots()),
         StrFormat("%5zu", scale.catalog.num_annotated_shots()),
         Fmt("%8.3f", ms), StrFormat("%4zu", stats.videos_considered),
         StrFormat("%7zu", stats.states_visited),
         StrFormat("%7zu", stats.sim_evaluations),
         StrFormat("%4zu", stats.candidates_scored)});
  }
  std::printf("\nPaper: Fig. 2's flowchart loops over all M videos (Step 7)\n"
              "and walks each video's shot lattice greedily (Steps 3-5).\n"
              "The measured cost grows linearly in the number of HMMM\n"
              "states, matching that structure — the stochastic traversal\n"
              "touches each lattice level once instead of enumerating all\n"
              "shot combinations.\n");
}

bool SameRanking(const std::vector<RetrievedPattern>& a,
                 const std::vector<RetrievedPattern>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].shots != b[i].shots || a[i].score != b[i].score ||
        a[i].video != b[i].video || a[i].edge_weights != b[i].edge_weights) {
      return false;
    }
  }
  return true;
}

void PrintThreadSweepTable() {
  Banner("Parallel retrieval: per-video fan-out vs thread count (200 videos)");
  Row({"threads", "latency ms", "speedup", "identical ranking"});
  const Scale scale = MakeScale(200);
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  HmmmTraversal serial(scale.model, scale.catalog);
  auto reference = serial.Retrieve(pattern);
  HMMM_CHECK(reference.ok());
  double serial_ms = 0.0;

  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.num_threads = threads;
    HmmmTraversal traversal(scale.model, scale.catalog, options);
    std::vector<RetrievedPattern> results;
    const double ms = MedianMillis([&] {
      auto retrieved = traversal.Retrieve(pattern);
      HMMM_CHECK(retrieved.ok());
      results = std::move(retrieved).value();
    });
    if (threads == 1) serial_ms = ms;
    Row({StrFormat("%2d", threads), Fmt("%8.3f", ms),
         Fmt("%5.2fx", ms > 0.0 ? serial_ms / ms : 0.0),
         SameRanking(*reference, results) ? "yes" : "NO"});
  }
  std::printf(
      "\nEach candidate video's shot-level lattice walk (Steps 3-5) is\n"
      "independent given the Step-2 video order, so videos shard across\n"
      "a fixed-size pool; per-worker top-K heaps merge under a (score,\n"
      "video-order) total order, keeping the ranking byte-identical to\n"
      "the serial walk at every thread count.\n");
}

/// Machine-readable companion to the tables above: per-thread-count
/// median traversal latency plus a full engine metrics snapshot (query
/// latency histogram, cache hit/miss counters, pool gauges) taken after a
/// warm query loop — 1 cache miss followed by 7 hits per thread count.
void WriteFig2Json() {
  const Scale scale = MakeScale(54);  // the paper's archive size
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  HmmmTraversal serial(scale.model, scale.catalog);
  auto reference = serial.Retrieve(pattern);
  HMMM_CHECK(reference.ok());

  double serial_ms = 0.0;
  std::vector<std::string> sweep;
  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.num_threads = threads;
    HmmmTraversal traversal(scale.model, scale.catalog, options);
    std::vector<RetrievedPattern> results;
    const double ms = MedianMillis([&] {
      auto retrieved = traversal.Retrieve(pattern);
      HMMM_CHECK(retrieved.ok());
      results = std::move(retrieved).value();
    });
    if (threads == 1) serial_ms = ms;

    RetrievalEngine engine(scale.catalog, scale.model, options);
    for (int i = 0; i < 8; ++i) {
      HMMM_CHECK(engine.Retrieve(pattern).ok());
    }
    sweep.push_back(JsonObject({
        {"threads", JsonNumber(threads)},
        {"median_traversal_ms", JsonNumber(ms)},
        {"speedup", JsonNumber(ms > 0.0 ? serial_ms / ms : 0.0)},
        {"identical_ranking", JsonBool(SameRanking(*reference, results))},
        {"metrics", engine.DumpMetricsJson()},
    }));
  }

  WriteBenchJson(
      "BENCH_fig2.json",
      JsonObject({
          {"benchmark", JsonQuote("fig2_retrieval")},
          {"query", JsonQuote("free_kick ; goal")},
          {"videos", JsonNumber(static_cast<double>(scale.catalog.num_videos()))},
          {"shots", JsonNumber(static_cast<double>(scale.catalog.num_shots()))},
          {"annotated_shots",
           JsonNumber(static_cast<double>(scale.catalog.num_annotated_shots()))},
          {"warm_queries_per_thread_count", JsonNumber(8)},
          {"thread_sweep", JsonArray(sweep)},
      }));
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintFlowchartTable();
  hmmm::bench::PrintThreadSweepTable();
  hmmm::bench::WriteFig2Json();
  return 0;
}
