// Ablation A2 — the feedback/learning loop (Sections 4.2.1.1 "Update of
// A1" and 6: "feedbacks and learning strategies ... assure the continuous
// improvements of the overall performance"). Runs simulated-user feedback
// rounds and tracks ranking quality per round.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

void BM_FeedbackRound(benchmark::State& state) {
  const VideoCatalog catalog = MakeSoccerCatalog(20, 61, 0.15);
  auto engine = RetrievalEngine::Create(catalog);
  HMMM_CHECK(engine.ok());
  const auto pattern = *CompileQuery("free_kick ; goal", catalog.vocabulary());
  SimulatedUser user(catalog);
  FeedbackTrainerOptions options;
  options.retrain_threshold = 1;
  FeedbackTrainer trainer(catalog, options);
  for (auto _ : state) {
    auto results = engine->Retrieve(pattern);
    HMMM_CHECK(results.ok());
    for (size_t i : user.JudgePositive(pattern, *results)) {
      HMMM_CHECK(trainer.MarkPositive(engine->model(), (*results)[i]).ok());
    }
    auto trained = trainer.MaybeTrain(engine->mutable_model(), true);
    benchmark::DoNotOptimize(trained);
  }
}
BENCHMARK(BM_FeedbackRound);

void PrintLearningCurve() {
  Banner("Ablation A2: ranking quality vs feedback rounds");
  Row({"noise", "round", "P@10", "MAP", "nDCG", "positives marked",
       "A1 drift"});

  for (double noise : {0.0, 0.2}) {
    const VideoCatalog catalog = MakeSoccerCatalog(20, 61, 0.15);
    TraversalOptions traversal_options;
    traversal_options.beam_width = 4;
    traversal_options.max_results = 10;
    auto engine = RetrievalEngine::Create(catalog, {}, traversal_options);
    HMMM_CHECK(engine.ok());

    const auto pattern =
        *CompileQuery("free_kick ; goal", catalog.vocabulary());
    SimulatedUserOptions user_options;
    user_options.judgment_noise = noise;
    SimulatedUser user(catalog, user_options);
    FeedbackTrainerOptions trainer_options;
    trainer_options.retrain_threshold = 1;
    trainer_options.relearn_feature_weights = true;
    FeedbackTrainer trainer(catalog, trainer_options);

    std::vector<Matrix> a1_initial;
    for (const LocalShotModel& local : engine->model().locals()) {
      a1_initial.push_back(local.a1);
    }
    auto max_drift = [&] {
      double drift = 0.0;
      for (size_t v = 0; v < a1_initial.size(); ++v) {
        drift = std::max(drift, engine->model()
                                    .local(static_cast<VideoId>(v))
                                    .a1.MaxAbsDiff(a1_initial[v]));
      }
      return drift;
    };
    for (int round = 0; round <= 6; ++round) {
      auto results = engine->Retrieve(pattern);
      HMMM_CHECK(results.ok());
      const auto metrics = EvaluateRanking(catalog, pattern, *results, 10);
      const auto positives = user.JudgePositive(pattern, *results);
      Row({Fmt("%.1f", noise), StrFormat("%2d", round),
           Fmt("%5.2f", metrics.precision_at_k),
           Fmt("%5.2f", metrics.average_precision), Fmt("%5.2f", metrics.ndcg),
           StrFormat("%2zu", positives.size()),
           Fmt("%7.4f", max_drift())});
      if (round == 6) break;
      for (size_t i : positives) {
        HMMM_CHECK(trainer.MarkPositive(engine->model(), (*results)[i]).ok());
      }
      HMMM_CHECK(trainer.MaybeTrain(engine->mutable_model(), true).ok());
    }
  }
  std::printf("\nShape reproduced: positive feedback concentrates A1/Pi1\n"
              "mass on the co-accessed paths (A1 drift grows), and ranking\n"
              "quality is non-decreasing over rounds for a clean oracle;\n"
              "with 20%% judgment noise learning still converges, just\n"
              "less sharply — the paper's \"continuous improvement\" claim.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintLearningCurve();
  return 0;
}
