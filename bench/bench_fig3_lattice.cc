// Experiment F3 — Figure 3 of the paper: the lattice architecture of the
// temporal pattern retrieval process. Sweeps pattern length C and beam
// width, reporting traversal cost and how close the traversal's best score
// comes to the exhaustive optimum (paper's greedy = beam 1).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

const VideoCatalog& Catalog() {
  static const VideoCatalog& catalog =
      *new VideoCatalog(MakeSoccerCatalog(30, 23, 0.12));
  return catalog;
}

const HierarchicalModel& Model() {
  static const HierarchicalModel& model = *new HierarchicalModel([] {
    auto model = ModelBuilder(Catalog()).Build();
    HMMM_CHECK(model.ok());
    return std::move(model).value();
  }());
  return model;
}

TemporalPattern PatternOfLength(size_t c) {
  // A soccer-plausible cycle of events.
  const std::vector<EventId> cycle = {2, 0, 1, 3, 4};  // fk,goal,corner,...
  std::vector<EventId> events;
  for (size_t j = 0; j < c; ++j) events.push_back(cycle[j % cycle.size()]);
  return TemporalPattern::FromEvents(events);
}

void BM_LatticeTraversal(benchmark::State& state) {
  TraversalOptions options;
  options.beam_width = static_cast<int>(state.range(1));
  options.num_threads = static_cast<int>(state.range(2));
  HmmmTraversal traversal(Model(), Catalog(), options);
  const auto pattern = PatternOfLength(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_LatticeTraversal)
    ->ArgsProduct({{1, 2, 3, 4}, {1, 4}, {1, 4}})
    ->ArgNames({"C", "beam", "threads"});

void PrintLatticeTable() {
  Banner("Figure 3 (reproduced): lattice traversal vs pattern length & beam");
  Row({"C", "beam", "latency ms", "expansions", "top SS",
       "SS vs exhaustive", "optimum found"});

  for (size_t c : {1u, 2u, 3u, 4u}) {
    const auto pattern = PatternOfLength(c);
    // Exhaustive optimum for reference.
    ExhaustiveOptions gold_options;
    gold_options.max_results = 1;
    gold_options.max_tuples = 50000000;
    ExhaustiveMatcher exhaustive(Model(), Catalog(), gold_options);
    auto gold = exhaustive.Retrieve(pattern);
    HMMM_CHECK(gold.ok());
    const double optimum = gold->empty() ? 0.0 : gold->front().score;

    for (int beam : {1, 2, 4, 8}) {
      TraversalOptions options;
      options.beam_width = beam;
      HmmmTraversal traversal(Model(), Catalog(), options);
      RetrievalStats stats;
      double top = 0.0;
      const double ms = MedianMillis([&] {
        stats = RetrievalStats();
        auto results = traversal.Retrieve(pattern, &stats);
        HMMM_CHECK(results.ok());
        top = results->empty() ? 0.0 : results->front().score;
      });
      const double ratio = optimum > 0.0 ? top / optimum : 1.0;
      Row({StrFormat("%zu", c), StrFormat("%2d", beam), Fmt("%8.3f", ms),
           StrFormat("%7zu", stats.states_visited), Fmt("%10.3e", top),
           Fmt("%6.3f", ratio), ratio > 0.999 ? "yes" : "no"});
    }
  }
  std::printf("\nPaper: Fig. 3 depicts the per-video lattice whose hops are\n"
              "weighted by Eq. 13; the system \"always tries to traverse\n"
              "the right path\". Measured: beam 1 (the paper's greedy walk)\n"
              "already reaches a large fraction of the exhaustive optimum\n"
              "at a fraction of the expansions; modest beams close the gap\n"
              "while staying orders of magnitude below exhaustive cost\n"
              "(see bench_ablation_baselines for that comparison).\n");
}

void PrintThreadSweepTable() {
  Banner("Lattice traversal: thread sweep at C=4 (beam 4)");
  Row({"threads", "latency ms", "speedup", "identical ranking"});
  const auto pattern = PatternOfLength(4);
  TraversalOptions serial_options;
  serial_options.beam_width = 4;
  HmmmTraversal serial(Model(), Catalog(), serial_options);
  auto reference = serial.Retrieve(pattern);
  HMMM_CHECK(reference.ok());
  double serial_ms = 0.0;

  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options = serial_options;
    options.num_threads = threads;
    HmmmTraversal traversal(Model(), Catalog(), options);
    std::vector<RetrievedPattern> results;
    const double ms = MedianMillis([&] {
      auto retrieved = traversal.Retrieve(pattern);
      HMMM_CHECK(retrieved.ok());
      results = std::move(retrieved).value();
    });
    if (threads == 1) serial_ms = ms;
    bool identical = results.size() == reference->size();
    for (size_t i = 0; identical && i < results.size(); ++i) {
      identical = results[i].shots == (*reference)[i].shots &&
                  results[i].score == (*reference)[i].score;
    }
    Row({StrFormat("%2d", threads), Fmt("%8.3f", ms),
         Fmt("%5.2fx", ms > 0.0 ? serial_ms / ms : 0.0),
         identical ? "yes" : "NO"});
  }
}

/// Machine-readable companion: the C x beam lattice sweep, a per-thread-
/// count latency sweep with engine metrics snapshots, and one serial
/// trace sample showing the phase structure of a C=4 walk.
void WriteFig3Json() {
  std::vector<std::string> lattice;
  for (size_t c : {1u, 2u, 3u, 4u}) {
    const auto pattern = PatternOfLength(c);
    for (int beam : {1, 2, 4, 8}) {
      TraversalOptions options;
      options.beam_width = beam;
      HmmmTraversal traversal(Model(), Catalog(), options);
      RetrievalStats stats;
      double top = 0.0;
      const double ms = MedianMillis([&] {
        stats = RetrievalStats();
        auto results = traversal.Retrieve(pattern, &stats);
        HMMM_CHECK(results.ok());
        top = results->empty() ? 0.0 : results->front().score;
      });
      lattice.push_back(JsonObject({
          {"pattern_length", JsonNumber(static_cast<double>(c))},
          {"beam", JsonNumber(beam)},
          {"median_ms", JsonNumber(ms)},
          {"states_visited",
           JsonNumber(static_cast<double>(stats.states_visited))},
          {"beam_pruned", JsonNumber(static_cast<double>(stats.beam_pruned))},
          {"sim_evaluations",
           JsonNumber(static_cast<double>(stats.sim_evaluations))},
          {"sim_memo_hits",
           JsonNumber(static_cast<double>(stats.sim_memo_hits))},
          {"candidate_list_reuse",
           JsonNumber(static_cast<double>(stats.candidate_list_reuse))},
          {"sim_evaluations_unmemoized",
           JsonNumber(static_cast<double>(stats.sim_evaluations +
                                          stats.sim_memo_hits))},
          {"heap_pops", JsonNumber(static_cast<double>(stats.heap_pops))},
          {"grid_cells_skipped",
           JsonNumber(static_cast<double>(stats.grid_cells_skipped))},
          {"top_score", JsonNumber(top)},
      }));
    }
  }

  const auto pattern = PatternOfLength(4);
  double serial_ms = 0.0;
  std::vector<std::string> sweep;
  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.beam_width = 4;
    options.num_threads = threads;
    HmmmTraversal traversal(Model(), Catalog(), options);
    const double ms = MedianMillis([&] {
      auto results = traversal.Retrieve(pattern);
      HMMM_CHECK(results.ok());
    });
    if (threads == 1) serial_ms = ms;

    RetrievalEngine engine(Catalog(), Model(), options);
    for (int i = 0; i < 8; ++i) {
      HMMM_CHECK(engine.Retrieve(pattern).ok());
    }
    sweep.push_back(JsonObject({
        {"threads", JsonNumber(threads)},
        {"median_traversal_ms", JsonNumber(ms)},
        {"speedup", JsonNumber(ms > 0.0 ? serial_ms / ms : 0.0)},
        {"metrics", engine.DumpMetricsJson()},
    }));
  }

  QueryTrace trace;
  TraversalOptions traced_options;
  traced_options.beam_width = 4;
  traced_options.trace = &trace;
  HmmmTraversal traced(Model(), Catalog(), traced_options);
  HMMM_CHECK(traced.Retrieve(pattern).ok());
  const double plan_build_ms = SpanElapsedMs(trace, "query_plan_build");

  // Kernel A/B at C=4, beam 8: the scalar Eq.-14 kernel against the
  // runtime CPU pick, covering both places the kernel runs — the index's
  // batch sim precomputation (index_build_ms) and the query-time row
  // evaluations (median_ms, with the scorer forced to match). Rankings
  // and every counter are bit-identical by construction; only the wall
  // times may differ, and those ride the regular latency regression gate.
  std::vector<std::string> kernel_ab;
  {
    TraversalOptions ab_options;
    ab_options.beam_width = 8;
    const auto ab_pattern = PatternOfLength(4);
    std::vector<RetrievedPattern> reference_ranking;
    size_t reference_evals = 0;
    bool first_leg = true;
    for (const bool force_scalar : {true, false}) {
      const Eq14Kernel kernel =
          force_scalar ? Eq14Kernel::kScalar : DefaultEq14Kernel();
      std::unique_ptr<EventBitmapIndex> index;
      const double index_build_ms = MedianMillis([&] {
        index = std::make_unique<EventBitmapIndex>(Model(), Catalog(), kernel);
      });
      TraversalOptions options = ab_options;
      options.scorer.force_scalar_kernel = force_scalar;
      HmmmTraversal traversal(Model(), Catalog(), options, /*pool=*/nullptr,
                              index.get());
      RetrievalStats stats;
      std::vector<RetrievedPattern> ranking;
      const double ms = MedianMillis([&] {
        stats = RetrievalStats();
        auto results = traversal.Retrieve(ab_pattern, &stats);
        HMMM_CHECK(results.ok());
        ranking = std::move(results).value();
      });
      if (first_leg) {
        reference_ranking = ranking;
        reference_evals = stats.sim_evaluations;
        first_leg = false;
      } else {
        HMMM_CHECK(stats.sim_evaluations == reference_evals);
        HMMM_CHECK(ranking.size() == reference_ranking.size());
        for (size_t i = 0; i < ranking.size(); ++i) {
          HMMM_CHECK(ranking[i].shots == reference_ranking[i].shots);
          HMMM_CHECK(ranking[i].score == reference_ranking[i].score);
        }
      }
      kernel_ab.push_back(JsonObject({
          {"kernel", JsonQuote(Eq14KernelName(kernel))},
          {"index_build_ms", JsonNumber(index_build_ms)},
          {"median_ms", JsonNumber(ms)},
          {"sim_evaluations",
           JsonNumber(static_cast<double>(stats.sim_evaluations))},
          {"heap_pops", JsonNumber(static_cast<double>(stats.heap_pops))},
          {"grid_cells_skipped",
           JsonNumber(static_cast<double>(stats.grid_cells_skipped))},
      }));
    }
  }

  WriteBenchJson(
      "BENCH_fig3.json",
      JsonObject({
          {"benchmark", JsonQuote("fig3_lattice")},
          {"videos", JsonNumber(static_cast<double>(Catalog().num_videos()))},
          {"shots", JsonNumber(static_cast<double>(Catalog().num_shots()))},
          {"kernel", JsonQuote(Eq14KernelName(DefaultEq14Kernel()))},
          {"plan_build_ms", JsonNumber(plan_build_ms)},
          {"lattice_sweep", JsonArray(lattice)},
          {"thread_sweep", JsonArray(sweep)},
          {"kernel_ab", JsonArray(kernel_ab)},
          {"trace_sample", JsonlToArray(trace.RenderJsonl())},
      }));
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintLatticeTable();
  hmmm::bench::PrintThreadSweepTable();
  hmmm::bench::WriteFig3Json();
  return 0;
}
