// Experiment T1 — Table 1 of the paper: the 20 visual/audio shot-level
// features. Micro-benchmarks the extraction pipeline on rendered synthetic
// soccer footage and prints the measured per-feature statistics in Table-1
// order (the paper lists names/descriptions; we add the measured value
// distributions of our substrate).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dsp/stats.h"

namespace hmmm::bench {
namespace {

SoccerGeneratorConfig MediaConfig() {
  SoccerGeneratorConfig config;
  config.seed = 7;
  config.min_shots_per_video = 10;
  config.max_shots_per_video = 14;
  config.min_frames_per_shot = 12;
  config.max_frames_per_shot = 28;
  config.event_shot_fraction = 0.4;
  return config;
}

const SyntheticVideo& SharedVideo() {
  static const SyntheticVideo& video =
      *new SyntheticVideo(SoccerVideoGenerator(MediaConfig()).Generate(0));
  return video;
}

void BM_VisualFeatures(benchmark::State& state) {
  const SyntheticVideo& video = SharedVideo();
  const ShotTruth& shot = video.shots[0];
  for (auto _ : state) {
    auto features =
        ExtractVisualFeatures(video.frames, shot.begin_frame, shot.end_frame);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VisualFeatures);

void BM_AudioFeatures(benchmark::State& state) {
  const SyntheticVideo& video = SharedVideo();
  const ShotTruth& shot = video.shots[0];
  const AudioClip clip =
      video.AudioForFrames(shot.begin_frame, shot.end_frame);
  for (auto _ : state) {
    auto features = ExtractAudioFeatures(clip);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AudioFeatures);

void BM_FullShotExtraction(benchmark::State& state) {
  const SyntheticVideo& video = SharedVideo();
  const ShotFeatureExtractor extractor;
  size_t shot_index = 0;
  for (auto _ : state) {
    auto features = extractor.ExtractForShot(video, shot_index);
    benchmark::DoNotOptimize(features);
    shot_index = (shot_index + 1) % video.shots.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullShotExtraction);

void PrintTable1() {
  const SoccerVideoGenerator generator(MediaConfig());
  const ShotFeatureExtractor extractor;

  std::vector<dsp::RunningStats> stats(kNumFeatures);
  size_t shots = 0;
  const int videos = 4;
  const double total_ms = TimeMillis([&] {
    for (int v = 0; v < videos; ++v) {
      const SyntheticVideo video = generator.Generate(v);
      for (size_t s = 0; s < video.shots.size(); ++s) {
        auto features = extractor.ExtractForShot(video, s);
        HMMM_CHECK(features.ok());
        for (int f = 0; f < kNumFeatures; ++f) {
          stats[static_cast<size_t>(f)].Add((*features)[static_cast<size_t>(f)]);
        }
        ++shots;
      }
    }
  });

  Banner("Table 1 (reproduced): 5 visual + 15 audio shot features");
  std::printf("extracted %zu shots from %d rendered videos in %.1f ms "
              "(%.1f shots/s, includes rendering)\n",
              shots, videos, total_ms, 1000.0 * shots / total_ms);
  Row({"idx", "category", "feature", "mean", "std", "min", "max"});
  for (int f = 0; f < kNumFeatures; ++f) {
    const auto& s = stats[static_cast<size_t>(f)];
    Row({StrFormat("%2d", f), IsVisualFeature(f) ? "visual" : "audio",
         StrFormat("%-20s", FeatureName(f).c_str()),
         Fmt("%7.4f", s.mean()), Fmt("%7.4f", s.stddev()),
         Fmt("%7.4f", s.min()), Fmt("%7.4f", s.max())});
  }
  std::printf("\nPaper: Table 1 lists the same 20 features by name; the\n"
              "distributions here come from the synthetic media substrate\n"
              "(see DESIGN.md substitutions). Non-degenerate spread on every\n"
              "feature confirms each extractor produces signal.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintTable1();
  return 0;
}
