// Snapshot cold-start benchmark: how fast a server becomes ready to
// serve from the mmap snapshot path vs. the legacy blob loader, swept
// across a 10x archive-size range. The headline claim under test is the
// complexity split:
//
//   * SnapshotReader::Open (map + header/table verification) is O(1) in
//     catalog size — the sweep's open times must stay within a small
//     constant factor while the archive grows 10x.
//   * Blob deserialization re-parses every double, so it grows linearly
//     with the archive.
//
// The report also A/Bs query latency mapped vs. heap (same bytes, so the
// rankings are checked identical) and records snapshot file sizes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

constexpr int kSweepVideos[] = {8, 24, 80};
constexpr int kQueryAbVideos = 24;

struct Scale {
  int videos = 0;
  size_t shots = 0;
  std::string snapshot_path;
  std::string catalog_path;
  std::string model_path;
  size_t snapshot_bytes = 0;
};

// Builds (once) and persists the archive for one sweep point: blob pair
// + snapshot, written into the working directory like the BENCH reports.
const Scale& ScaleFor(int videos) {
  static std::vector<std::unique_ptr<Scale>>& scales =
      *new std::vector<std::unique_ptr<Scale>>();
  for (const auto& s : scales) {
    if (s->videos == videos) return *s;
  }
  auto scale = std::make_unique<Scale>();
  scale->videos = videos;
  const std::string stem = StrFormat("bench_snapshot_%d", videos);
  scale->snapshot_path = stem + ".hmms";
  scale->catalog_path = stem + ".catalog";
  scale->model_path = stem + ".model";

  VideoCatalog catalog = MakeSoccerCatalog(videos, /*seed=*/17, 0.1);
  scale->shots = catalog.num_shots();
  auto db = VideoDatabase::Create(std::move(catalog));
  HMMM_CHECK(db.ok());
  HMMM_CHECK(db->Save(scale->catalog_path, scale->model_path).ok());
  HMMM_CHECK(db->WriteSnapshot(scale->snapshot_path).ok());
  auto bytes = ReadFileToString(scale->snapshot_path);
  HMMM_CHECK(bytes.ok());
  scale->snapshot_bytes = bytes->size();

  scales.push_back(std::move(scale));
  return *scales.back();
}

void BM_SnapshotMapOpen(benchmark::State& state) {
  const Scale& scale = ScaleFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto reader = SnapshotReader::Open(scale.snapshot_path);
    HMMM_CHECK(reader.ok());
    benchmark::DoNotOptimize(reader);
  }
}
BENCHMARK(BM_SnapshotMapOpen)->Arg(8)->Arg(80)->ArgNames({"videos"});

void BM_SnapshotColdStart(benchmark::State& state) {
  const Scale& scale = ScaleFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto db = VideoDatabase::OpenSnapshot(scale.snapshot_path);
    HMMM_CHECK(db.ok());
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_SnapshotColdStart)->Arg(24)->ArgNames({"videos"});

void BM_BlobColdStart(benchmark::State& state) {
  const Scale& scale = ScaleFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto db = VideoDatabase::Open(scale.catalog_path, scale.model_path);
    HMMM_CHECK(db.ok());
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_BlobColdStart)->Arg(24)->ArgNames({"videos"});

struct SweepPoint {
  int videos = 0;
  size_t shots = 0;
  size_t snapshot_bytes = 0;
  double map_open_ms = 0.0;
  double snapshot_ready_ms = 0.0;
  double blob_load_ms = 0.0;
};

SweepPoint MeasureScale(int videos) {
  const Scale& scale = ScaleFor(videos);
  SweepPoint point;
  point.videos = videos;
  point.shots = scale.shots;
  point.snapshot_bytes = scale.snapshot_bytes;
  point.map_open_ms = MedianMillis(
      [&] {
        auto reader = SnapshotReader::Open(scale.snapshot_path);
        HMMM_CHECK(reader.ok());
      },
      /*repeats=*/9);
  point.snapshot_ready_ms = MedianMillis([&] {
    auto db = VideoDatabase::OpenSnapshot(scale.snapshot_path);
    HMMM_CHECK(db.ok());
  });
  point.blob_load_ms = MedianMillis([&] {
    auto db = VideoDatabase::Open(scale.catalog_path, scale.model_path);
    HMMM_CHECK(db.ok());
  });
  return point;
}

void PrintColdStartTable(const std::vector<SweepPoint>& sweep) {
  Banner("Snapshot cold start vs blob load (10x archive sweep)");
  Row({"videos", "shots", "snapshot MB", "map open ms", "snapshot ready ms",
       "blob load ms", "ready speedup"});
  for (const SweepPoint& p : sweep) {
    Row({StrFormat("%3d", p.videos), StrFormat("%6zu", p.shots),
         Fmt("%7.2f", static_cast<double>(p.snapshot_bytes) / 1e6),
         Fmt("%9.4f", p.map_open_ms), Fmt("%9.3f", p.snapshot_ready_ms),
         Fmt("%9.3f", p.blob_load_ms),
         Fmt("%5.1fx", p.snapshot_ready_ms > 0.0
                           ? p.blob_load_ms / p.snapshot_ready_ms
                           : 0.0)});
  }
  const double ratio =
      sweep.front().map_open_ms > 0.0
          ? sweep.back().map_open_ms / sweep.front().map_open_ms
          : 0.0;
  std::printf(
      "\nmap open grew %.2fx across a %dx archive sweep (O(1) target: "
      "stay within 2x);\nblob load re-parses every double and scales with "
      "the archive instead.\n",
      ratio, sweep.back().videos / sweep.front().videos);
}

void WriteSnapshotJson(const std::vector<SweepPoint>& sweep) {
  std::vector<std::string> rows;
  for (const SweepPoint& p : sweep) {
    rows.push_back(JsonObject({
        {"videos", JsonNumber(p.videos)},
        {"shots", JsonNumber(static_cast<double>(p.shots))},
        {"snapshot_bytes", JsonNumber(static_cast<double>(p.snapshot_bytes))},
        {"map_open_ms", JsonNumber(p.map_open_ms)},
        {"snapshot_ready_ms", JsonNumber(p.snapshot_ready_ms)},
        {"blob_load_ms", JsonNumber(p.blob_load_ms)},
    }));
  }

  // Query A/B at the middle scale: the mapped database must serve the
  // same bytes — rankings identical to the raw double — at comparable
  // latency (both paths run the same kernels on the same layout).
  const Scale& scale = ScaleFor(kQueryAbVideos);
  auto heap_db = VideoDatabase::Open(scale.catalog_path, scale.model_path);
  HMMM_CHECK(heap_db.ok());
  auto mapped_db = VideoDatabase::OpenSnapshot(scale.snapshot_path);
  HMMM_CHECK(mapped_db.ok());
  const std::string query = "free_kick ; goal";
  auto expected = heap_db->Query(query);
  HMMM_CHECK(expected.ok());
  auto actual = mapped_db->Query(query);
  HMMM_CHECK(actual.ok());
  HMMM_CHECK(expected->size() == actual->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    HMMM_CHECK((*expected)[i].shots == (*actual)[i].shots);
    HMMM_CHECK((*expected)[i].score == (*actual)[i].score);
  }
  const double heap_query_ms =
      MedianMillis([&] { HMMM_CHECK(heap_db->Query(query).ok()); });
  const double mapped_query_ms =
      MedianMillis([&] { HMMM_CHECK(mapped_db->Query(query).ok()); });

  const double open_ratio =
      sweep.front().map_open_ms > 0.0
          ? sweep.back().map_open_ms / sweep.front().map_open_ms
          : 0.0;
  WriteBenchJson(
      "BENCH_snapshot.json",
      JsonObject({
          {"benchmark", JsonQuote("snapshot_open")},
          {"sweep", JsonArray(rows)},
          // Plain ratio (not *_ms) on purpose: the O(1) claim is about
          // growth across the sweep, not absolute wall time, so it
          // should not ride the latency tolerance gate.
          {"map_open_growth_over_10x", JsonNumber(open_ratio)},
          {"query_ab",
           JsonObject({
               {"videos", JsonNumber(kQueryAbVideos)},
               {"query", JsonQuote(query)},
               {"heap_query_ms", JsonNumber(heap_query_ms)},
               {"mapped_query_ms", JsonNumber(mapped_query_ms)},
               {"rankings_identical", JsonBool(true)},
           })},
      }));
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::vector<hmmm::bench::SweepPoint> sweep;
  for (int videos : hmmm::bench::kSweepVideos) {
    sweep.push_back(hmmm::bench::MeasureScale(videos));
  }
  hmmm::bench::PrintColdStartTable(sweep);
  hmmm::bench::WriteSnapshotJson(sweep);
  return 0;
}
