// Experiment F5 — Figure 5 of the paper: the full soccer retrieval system
// at the paper's corpus scale (54 videos, 11,567 shots, 506 annotated
// events). Runs a temporal-pattern query mix, reporting latency and
// ranking quality, then a feedback round to show the learning loop.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

const VideoCatalog& Catalog() {
  static const VideoCatalog& catalog =
      *new VideoCatalog(MakePaperScaleCatalog(1));
  return catalog;
}

void BM_PaperScaleModelBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto model = ModelBuilder(Catalog()).Build();
    benchmark::DoNotOptimize(model);
  }
  state.SetLabel(StrFormat("%zu shots / %zu states", Catalog().num_shots(),
                           Catalog().num_annotated_shots()));
}
BENCHMARK(BM_PaperScaleModelBuild);

void BM_PaperScaleQuery(benchmark::State& state) {
  auto engine = RetrievalEngine::Create(Catalog());
  HMMM_CHECK(engine.ok());
  for (auto _ : state) {
    auto results = engine->Query("goal ; free_kick");
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_PaperScaleQuery);

const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string>& queries =
      *new std::vector<std::string>{
          "goal",
          "goal ; free_kick",
          "free_kick ; goal",
          "corner_kick ; goal",
          "foul ; free_kick",
          "foul ; yellow_card",
          "goal_kick ; foul",
          "free_kick ; corner_kick ; goal",
          "(corner_kick | free_kick) ; goal",
          "foul ; free_kick ; goal",
      };
  return queries;
}

void PrintSystemTable() {
  Banner("Figure 5 (reproduced): full system at paper scale");
  std::printf("corpus: %zu videos, %zu shots, %zu annotated shots, "
              "%zu annotations (paper: 54 / 11,567 / 506 events)\n",
              Catalog().num_videos(), Catalog().num_shots(),
              Catalog().num_annotated_shots(), Catalog().num_annotations());

  ModelBuilderOptions builder_options;
  builder_options.learn_feature_weights = true;
  TraversalOptions traversal_options;
  traversal_options.beam_width = 4;
  traversal_options.max_results = 10;
  const double build_ms = TimeMillis([&] {
    auto engine =
        RetrievalEngine::Create(Catalog(), builder_options, traversal_options);
    HMMM_CHECK(engine.ok());
  });
  std::printf("HMMM construction: %.1f ms\n", build_ms);

  auto engine =
      RetrievalEngine::Create(Catalog(), builder_options, traversal_options);
  HMMM_CHECK(engine.ok());

  Row({"query", "latency ms", "results", "P@10", "recall", "MAP", "nDCG"});
  double mean_p10 = 0.0;
  for (const std::string& query : QueryMix()) {
    auto pattern = CompileQuery(query, Catalog().vocabulary());
    HMMM_CHECK(pattern.ok());
    std::vector<RetrievedPattern> results;
    const double ms = MedianMillis([&] {
      auto r = engine->Retrieve(*pattern);
      HMMM_CHECK(r.ok());
      results = std::move(r).value();
    });
    const auto metrics = EvaluateRanking(Catalog(), *pattern, results, 10);
    mean_p10 += metrics.precision_at_k;
    Row({StrFormat("%-36s", query.c_str()), Fmt("%7.2f", ms),
         StrFormat("%2zu", results.size()), Fmt("%5.2f", metrics.precision_at_k),
         Fmt("%5.2f", metrics.recall), Fmt("%5.2f", metrics.average_precision),
         Fmt("%5.2f", metrics.ndcg)});
  }
  std::printf("mean P@10 over the mix: %.3f\n",
              mean_p10 / static_cast<double>(QueryMix().size()));

  // One feedback round on the headline query, as the Fig.-5 interface
  // supports ("users select preferred patterns ... sent back for further
  // improvement").
  Banner("Figure 5 feedback loop: one learning round");
  const auto pattern = *CompileQuery("goal ; free_kick", Catalog().vocabulary());
  SimulatedUser user(Catalog());
  FeedbackTrainerOptions trainer_options;
  trainer_options.retrain_threshold = 1;
  FeedbackTrainer trainer(Catalog(), trainer_options);

  auto before = engine->Retrieve(pattern);
  HMMM_CHECK(before.ok());
  const auto metrics_before = EvaluateRanking(Catalog(), pattern, *before, 10);
  for (size_t i : user.JudgePositive(pattern, *before)) {
    HMMM_CHECK(trainer.MarkPositive(engine->model(), (*before)[i]).ok());
  }
  auto trained = trainer.MaybeTrain(engine->mutable_model(), true);
  HMMM_CHECK(trained.ok());
  auto after = engine->Retrieve(pattern);
  HMMM_CHECK(after.ok());
  const auto metrics_after = EvaluateRanking(Catalog(), pattern, *after, 10);
  Row({"phase", "P@10", "MAP", "nDCG", "top score"});
  Row({"before feedback", Fmt("%5.2f", metrics_before.precision_at_k),
       Fmt("%5.2f", metrics_before.average_precision),
       Fmt("%5.2f", metrics_before.ndcg),
       Fmt("%10.3e", before->empty() ? 0.0 : before->front().score)});
  Row({"after feedback", Fmt("%5.2f", metrics_after.precision_at_k),
       Fmt("%5.2f", metrics_after.average_precision),
       Fmt("%5.2f", metrics_after.ndcg),
       Fmt("%10.3e", after->empty() ? 0.0 : after->front().score)});
  std::printf("\nPaper: Fig. 5 demonstrates the client retrieving ranked\n"
              "patterns over the 54-video archive with user feedback. The\n"
              "reproduction answers the same query mix at interactive\n"
              "latency on the same corpus shape, and the feedback round\n"
              "does not degrade (typically sharpens) the ranking.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintSystemTable();
  return 0;
}
