// Ablation A3 — the P12 feature-importance matrix: uniform Eq.-7 weights
// vs the learned Eq.-10 weights (inverse per-event feature deviations).
// The corpus deliberately contains uninformative high-noise features; the
// learned weights should suppress them and improve ranking quality.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

VideoCatalog NoisyCatalog(double feature_noise, uint64_t seed) {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(seed);
  config.num_videos = 20;
  config.min_shots_per_video = 60;
  config.max_shots_per_video = 100;
  config.event_shot_fraction = 0.2;
  config.informative_features = 12;
  config.feature_noise = feature_noise;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  HMMM_CHECK(catalog.ok());
  return std::move(catalog).value();
}

void BM_LearnP12(benchmark::State& state) {
  const VideoCatalog catalog = NoisyCatalog(0.08, 5);
  auto model = ModelBuilder(catalog).Build();
  HMMM_CHECK(model.ok());
  for (auto _ : state) {
    auto p12 = ComputeFeatureWeights(*model, catalog);
    benchmark::DoNotOptimize(p12);
  }
}
BENCHMARK(BM_LearnP12);

void PrintWeightAblation() {
  Banner("Ablation A3: uniform Eq.-7 vs learned Eq.-10 feature weights");
  Row({"noise", "weights", "P@10", "MAP", "nDCG",
       "weight mass on informative 12/20"});

  for (double noise : {0.05, 0.10, 0.15}) {
    const VideoCatalog catalog = NoisyCatalog(noise, 5);
    const auto pattern =
        *CompileQuery("free_kick ; goal", catalog.vocabulary());
    for (bool learned : {false, true}) {
      ModelBuilderOptions builder_options;
      builder_options.learn_feature_weights = learned;
      TraversalOptions traversal_options;
      traversal_options.beam_width = 4;
      traversal_options.max_results = 10;
      // Isolate the Eq.-14 similarity pathway: with the Step-3
      // annotated-first rule on, P12 barely influences candidate choice.
      traversal_options.annotated_first = false;
      auto engine = RetrievalEngine::Create(catalog, builder_options,
                                            traversal_options);
      HMMM_CHECK(engine.ok());
      auto results = engine->Retrieve(pattern);
      HMMM_CHECK(results.ok());
      const auto metrics = EvaluateRanking(catalog, pattern, *results, 10);

      // Fraction of P12 mass on the 12 informative features, averaged
      // over events (uniform would put 12/20 = 0.6 there).
      const Matrix& p12 = engine->model().p12();
      double informative_mass = 0.0;
      for (size_t e = 0; e < p12.rows(); ++e) {
        for (size_t f = 0; f < 12; ++f) informative_mass += p12.at(e, f);
      }
      informative_mass /= static_cast<double>(p12.rows());

      Row({Fmt("%.2f", noise), learned ? "learned" : "uniform",
           Fmt("%5.2f", metrics.precision_at_k),
           Fmt("%5.2f", metrics.average_precision), Fmt("%5.2f", metrics.ndcg),
           Fmt("%5.3f", informative_mass)});
    }
  }
  std::printf("\nShape reproduced: Eq. 10 shifts weight mass from the\n"
              "high-variance uninformative features (uniform keeps 0.600\n"
              "there by construction) toward the event-discriminative\n"
              "ones, and ranking quality is at least as good — the reason\n"
              "the paper learns P12 from annotated shots instead of\n"
              "keeping the Eq.-7 initialization.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintWeightAblation();
  return 0;
}
