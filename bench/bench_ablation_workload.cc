// Ablation A6 — model-driven workloads: the generative side of the
// mediator (pattern sampling from Pi/A1) and frequent-pattern mining are
// used to build query workloads that actually exist in the archive, and
// retrieval is evaluated against them. Queries sampled from the model
// should be answerable (the sampled shots witness them), and mined
// patterns give the workload's head.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

const VideoCatalog& Catalog() {
  static const VideoCatalog& catalog =
      *new VideoCatalog(MakeSoccerCatalog(30, 99, 0.2, 60, 110));
  return catalog;
}

void BM_SamplePattern(benchmark::State& state) {
  auto model = ModelBuilder(Catalog()).Build();
  HMMM_CHECK(model.ok());
  Rng rng(1);
  for (auto _ : state) {
    auto sample = SamplePattern(*model, rng, 2);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_SamplePattern);

void BM_MinePatterns(benchmark::State& state) {
  for (auto _ : state) {
    auto mined = MineFrequentEventPatterns(Catalog());
    benchmark::DoNotOptimize(mined);
  }
}
BENCHMARK(BM_MinePatterns);

void PrintWorkloadTable() {
  auto model = ModelBuilder(Catalog()).Build();
  HMMM_CHECK(model.ok());

  Banner("Ablation A6: mined workload head");
  PatternMiningOptions mining;
  mining.max_results = 8;
  mining.min_support = 2;
  const auto mined = MineFrequentEventPatterns(Catalog(), mining);
  Row({"support", "videos", "pattern"});
  for (const MinedPattern& pattern : mined) {
    Row({StrFormat("%4zu", pattern.support),
         StrFormat("%3zu", pattern.video_support),
         pattern.ToQuery(Catalog().vocabulary())});
  }

  Banner("Ablation A6: retrieval vs a model-sampled query workload");
  TraversalOptions options;
  options.beam_width = 4;
  options.max_results = 10;
  HmmmTraversal traversal(*model, Catalog(), options);

  Rng rng(7);
  std::map<size_t, std::pair<double, int>> by_length;  // len -> (P@10 sum, n)
  const int workload_size = 30;
  double latency_sum = 0.0;
  int answered = 0;
  for (int q = 0; q < workload_size; ++q) {
    const size_t length = 2 + static_cast<size_t>(q % 2);  // mix of 2s, 3s
    auto events = SampleEventPattern(*model, Catalog(), rng, length);
    if (!events.ok()) continue;
    const auto pattern = TemporalPattern::FromEvents(*events);
    std::vector<RetrievedPattern> results;
    latency_sum += TimeMillis([&] {
      auto r = traversal.Retrieve(pattern);
      HMMM_CHECK(r.ok());
      results = std::move(r).value();
    });
    const auto metrics = EvaluateRanking(Catalog(), pattern, results, 10);
    auto& [p10_sum, count] = by_length[length];
    p10_sum += metrics.precision_at_k;
    ++count;
    if (metrics.relevant_retrieved > 0) ++answered;
  }
  Row({"pattern length", "queries", "mean P@10"});
  for (const auto& [length, stats] : by_length) {
    Row({StrFormat("%zu", length), StrFormat("%d", stats.second),
         Fmt("%5.2f", stats.first / stats.second)});
  }
  std::printf("answered (>=1 annotation-exact hit): %d of %d; "
              "mean latency %.3f ms\n",
              answered, workload_size, latency_sum / workload_size);
  std::printf("\nShape: every sampled query is witnessed by construction\n"
              "(the sampled shots themselves form a true occurrence), so\n"
              "this isolates ranking quality from query feasibility; the\n"
              "mined head doubles as the realistic 'popular queries' mix\n"
              "for capacity planning.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintWorkloadTable();
  return 0;
}
