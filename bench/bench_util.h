#ifndef HMMM_BENCH_BENCH_UTIL_H_
#define HMMM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/strings.h"
#include "hmmm.h"

namespace hmmm::bench {

/// Builds a feature-level soccer catalog at a chosen scale. Defaults give
/// the paper's per-video shape; `num_videos` scales the archive.
inline VideoCatalog MakeSoccerCatalog(int num_videos, uint64_t seed = 1,
                                      double event_fraction = 0.1,
                                      int min_shots = 100,
                                      int max_shots = 240) {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(seed);
  config.num_videos = num_videos;
  config.min_shots_per_video = min_shots;
  config.max_shots_per_video = max_shots;
  config.event_shot_fraction = event_fraction;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  HMMM_CHECK(catalog.ok());
  return std::move(catalog).value();
}

/// The paper's corpus: 54 videos, ~11.5k shots, ~506 annotated events.
inline VideoCatalog MakePaperScaleCatalog(uint64_t seed = 1) {
  FeatureLevelGenerator generator(SoccerFeatureLevelDefaults(seed));
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  HMMM_CHECK(catalog.ok());
  return std::move(catalog).value();
}

/// Wall-clock milliseconds of one invocation.
inline double TimeMillis(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Median wall-clock milliseconds over `repeats` invocations.
inline double MedianMillis(const std::function<void()>& fn, int repeats = 5) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) times.push_back(TimeMillis(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Section banner for the shape tables printed after the micro benches.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints one row of '|'-separated cells.
inline void Row(const std::vector<std::string>& cells) {
  std::printf("|");
  for (const std::string& cell : cells) std::printf(" %s |", cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(const char* format, double value) {
  return StrFormat(format, value);
}

/// Elapsed milliseconds of the first span named `name` in the trace, or
/// -1 when absent. Used to report per-phase costs (e.g. the query-plan
/// build) in the JSON reports.
inline double SpanElapsedMs(const QueryTrace& trace, const std::string& name) {
  for (const TraceSpan& span : trace.Spans()) {
    if (span.name == name) return span.elapsed_ms;
  }
  return -1.0;
}

// -- Machine-readable reports (BENCH_*.json) ------------------------------
//
// Each bench writes one BENCH_<name>.json next to its human tables so CI
// can archive the numbers per run. The helpers below build JSON from
// already-rendered fragments: pass JsonQuote/JsonNumber/JsonBool output
// (or a nested JsonObject/JsonArray, or a registry's RenderJson()) as the
// values.

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<int>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string JsonQuote(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

inline std::string JsonNumber(double value) {
  const auto integral = static_cast<long long>(value);
  if (static_cast<double>(integral) == value && value > -1e15 &&
      value < 1e15) {
    return StrFormat("%lld", integral);
  }
  return StrFormat("%.9g", value);
}

inline std::string JsonBool(bool value) { return value ? "true" : "false"; }

inline std::string JsonObject(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonQuote(fields[i].first) + ":" + fields[i].second;
  }
  return out + "}";
}

inline std::string JsonArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += items[i];
  }
  return out + "]";
}

/// Wraps QueryTrace::RenderJsonl (one JSON object per line) into a JSON
/// array, so a trace sample can be embedded in a report.
inline std::string JsonlToArray(const std::string& jsonl) {
  std::vector<std::string> items;
  std::string line;
  for (char c : jsonl) {
    if (c == '\n') {
      if (!line.empty()) items.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) items.push_back(line);
  return JsonArray(items);
}

/// Writes one report into the working directory and announces the path so
/// CI can collect the file as an artifact.
inline void WriteBenchJson(const std::string& filename,
                           const std::string& json) {
  std::FILE* file = std::fopen(filename.c_str(), "w");
  if (file == nullptr) {
    std::printf("FAILED to write %s\n", filename.c_str());
    return;
  }
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("\nwrote %s (%zu bytes)\n", filename.c_str(), json.size() + 1);
}

}  // namespace hmmm::bench

#endif  // HMMM_BENCH_BENCH_UTIL_H_
