#ifndef HMMM_BENCH_BENCH_UTIL_H_
#define HMMM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/strings.h"
#include "hmmm.h"

namespace hmmm::bench {

/// Builds a feature-level soccer catalog at a chosen scale. Defaults give
/// the paper's per-video shape; `num_videos` scales the archive.
inline VideoCatalog MakeSoccerCatalog(int num_videos, uint64_t seed = 1,
                                      double event_fraction = 0.1,
                                      int min_shots = 100,
                                      int max_shots = 240) {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(seed);
  config.num_videos = num_videos;
  config.min_shots_per_video = min_shots;
  config.max_shots_per_video = max_shots;
  config.event_shot_fraction = event_fraction;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  HMMM_CHECK(catalog.ok());
  return std::move(catalog).value();
}

/// The paper's corpus: 54 videos, ~11.5k shots, ~506 annotated events.
inline VideoCatalog MakePaperScaleCatalog(uint64_t seed = 1) {
  FeatureLevelGenerator generator(SoccerFeatureLevelDefaults(seed));
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  HMMM_CHECK(catalog.ok());
  return std::move(catalog).value();
}

/// Wall-clock milliseconds of one invocation.
inline double TimeMillis(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Median wall-clock milliseconds over `repeats` invocations.
inline double MedianMillis(const std::function<void()>& fn, int repeats = 5) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) times.push_back(TimeMillis(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Section banner for the shape tables printed after the micro benches.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints one row of '|'-separated cells.
inline void Row(const std::vector<std::string>& cells) {
  std::printf("|");
  for (const std::string& cell : cells) std::printf(" %s |", cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(const char* format, double value) {
  return StrFormat(format, value);
}

}  // namespace hmmm::bench

#endif  // HMMM_BENCH_BENCH_UTIL_H_
