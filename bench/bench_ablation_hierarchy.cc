// Ablation A4 — the d-level generalization: 2-level HMMM (paper's
// instantiation) vs 3-level HMMM with a video-category layer discovered by
// clustering B2 signatures. Measures how much level-3 pruning saves on a
// mixed-domain archive where queries only concern one domain.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "media/news_generator.h"

namespace hmmm::bench {
namespace {

struct MixedArchive {
  VideoCatalog catalog;
  std::vector<EventId> news_ids;
};

MixedArchive MakeMixedArchive(int soccer_videos, int news_videos,
                              uint64_t seed) {
  EventVocabulary combined = SoccerEvents();
  const EventVocabulary news_vocab = NewsEvents();
  MixedArchive archive{VideoCatalog(combined, 20), {}};
  for (const std::string& name : news_vocab.names()) {
    archive.news_ids.push_back(combined.Register(name));
  }
  archive.catalog = VideoCatalog(combined, 20);

  FeatureLevelConfig soccer_config = SoccerFeatureLevelDefaults(seed);
  soccer_config.num_videos = soccer_videos;
  soccer_config.min_shots_per_video = 80;
  soccer_config.max_shots_per_video = 150;
  soccer_config.event_shot_fraction = 0.12;
  for (const GeneratedVideo& video :
       FeatureLevelGenerator(soccer_config).Generate().videos) {
    const VideoId vid = archive.catalog.AddVideo("soccer_" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      HMMM_CHECK(archive.catalog.AddShot(vid, shot.begin_time, shot.end_time,
                                         shot.events, shot.features).ok());
    }
  }
  FeatureLevelConfig news_config = NewsFeatureLevelDefaults(seed + 1);
  news_config.num_videos = news_videos;
  news_config.min_shots_per_video = 80;
  news_config.max_shots_per_video = 150;
  for (const GeneratedVideo& video :
       FeatureLevelGenerator(news_config).Generate().videos) {
    const VideoId vid = archive.catalog.AddVideo("news_" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      std::vector<EventId> remapped;
      for (EventId e : shot.events) {
        remapped.push_back(archive.news_ids[static_cast<size_t>(e)]);
      }
      HMMM_CHECK(archive.catalog.AddShot(vid, shot.begin_time, shot.end_time,
                                         remapped, shot.features).ok());
    }
  }
  return archive;
}

void BM_TwoLevelMixed(benchmark::State& state) {
  const MixedArchive archive = MakeMixedArchive(20, 20, 71);
  auto model = ModelBuilder(archive.catalog).Build();
  HMMM_CHECK(model.ok());
  HmmmTraversal traversal(*model, archive.catalog);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_TwoLevelMixed);

void BM_ThreeLevelMixed(benchmark::State& state) {
  const MixedArchive archive = MakeMixedArchive(20, 20, 71);
  auto model = ModelBuilder(archive.catalog).Build();
  HMMM_CHECK(model.ok());
  CategoryLevelOptions options;
  options.num_clusters = 2;
  auto categories = BuildCategoryLevel(*model, options);
  HMMM_CHECK(categories.ok());
  ThreeLevelTraversal traversal(*model, archive.catalog, *categories);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (auto _ : state) {
    auto results = traversal.Retrieve(pattern);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ThreeLevelMixed);

void PrintHierarchyTable() {
  Banner("Ablation A4: 2-level vs 3-level (category pruning)");
  Row({"mix (soccer+news)", "query", "engine", "latency ms", "videos seen",
       "sim() calls", "P@10"});

  for (int per_domain : {10, 25, 50}) {
    const MixedArchive archive = MakeMixedArchive(per_domain, per_domain, 71);
    auto model = ModelBuilder(archive.catalog).Build();
    HMMM_CHECK(model.ok());
    CategoryLevelOptions cat_options;
    cat_options.num_clusters = 2;
    auto categories = BuildCategoryLevel(*model, cat_options);
    HMMM_CHECK(categories.ok());

    const std::vector<std::pair<std::string, TemporalPattern>> queries = {
        {"free_kick;goal", TemporalPattern::FromEvents({2, 0})},
        {"anchor;weather",
         TemporalPattern::FromEvents({archive.news_ids[0],
                                      archive.news_ids[3]})},
    };
    for (const auto& [name, pattern] : queries) {
      TraversalOptions options;
      options.max_results = 10;

      HmmmTraversal two_level(*model, archive.catalog, options);
      RetrievalStats stats2;
      std::vector<RetrievedPattern> results2;
      const double ms2 = MedianMillis([&] {
        stats2 = RetrievalStats();
        auto r = two_level.Retrieve(pattern, &stats2);
        HMMM_CHECK(r.ok());
        results2 = std::move(r).value();
      });
      const auto metrics2 =
          EvaluateRanking(archive.catalog, pattern, results2, 10);
      Row({StrFormat("%d+%d", per_domain, per_domain),
           StrFormat("%-16s", name.c_str()), "2-level", Fmt("%8.3f", ms2),
           StrFormat("%4zu", stats2.videos_considered),
           StrFormat("%6zu", stats2.sim_evaluations),
           Fmt("%5.2f", metrics2.precision_at_k)});

      ThreeLevelTraversal three_level(*model, archive.catalog, *categories,
                                      options);
      RetrievalStats stats3;
      std::vector<RetrievedPattern> results3;
      const double ms3 = MedianMillis([&] {
        stats3 = RetrievalStats();
        auto r = three_level.Retrieve(pattern, &stats3);
        HMMM_CHECK(r.ok());
        results3 = std::move(r).value();
      });
      const auto metrics3 =
          EvaluateRanking(archive.catalog, pattern, results3, 10);
      Row({StrFormat("%d+%d", per_domain, per_domain),
           StrFormat("%-16s", name.c_str()), "3-level", Fmt("%8.3f", ms3),
           StrFormat("%4zu", stats3.videos_considered),
           StrFormat("%6zu", stats3.sim_evaluations),
           Fmt("%5.2f", metrics3.precision_at_k)});
    }
  }
  std::printf("\nShape: on a mixed-domain archive the category level cuts\n"
              "the Step-7 video scan roughly in half (only the cluster\n"
              "containing the queried events is traversed) without losing\n"
              "result quality — the payoff of Definition 1's d-level\n"
              "hierarchy beyond the paper's 2-level instantiation.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintHierarchyTable();
  return 0;
}
