// Serving-layer benchmark: end-to-end throughput and latency of the
// QueryServer wire path over loopback TCP, against the in-process
// VideoDatabase::Query cost of the same workload. Reports a
// workers x clients sweep plus the wire/framing overhead of a single
// unloaded request, and writes BENCH_serving.json for the CI baseline
// gate (bench_compare.py checks every *_ms field).

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "free_kick ; goal",
      "corner_kick ; goal",
      "free_kick ; corner_kick",
      "goal ; goal",
      "foul ; free_kick ; goal",
      "yellow_card ; free_kick",
      "goal_kick ; corner_kick",
      "free_kick & goal ; corner_kick",
  };
  return queries;
}

VideoDatabase& Database() {
  static VideoDatabase* db = [] {
    VideoDatabaseOptions options;
    // No result cache: every served request must run a real traversal,
    // so the sweep measures retrieval + serving, not cache hits.
    options.query_cache_entries = 0;
    auto created =
        VideoDatabase::Create(MakeSoccerCatalog(/*num_videos=*/30), options);
    HMMM_CHECK(created.ok());
    return new VideoDatabase(std::move(created).value());
  }();
  return *db;
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      fraction * static_cast<double>(values.size() - 1));
  return values[index];
}

struct SweepPoint {
  int workers = 0;
  int clients = 0;
  int requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double median_request_ms = 0.0;
  double p99_request_ms = 0.0;
};

/// Issues `clients` x `requests_per_client` temporal queries against an
/// already-started server and folds the latencies into a SweepPoint.
SweepPoint MeasureAgainst(QueryServer& server, int workers, int clients,
                          int requests_per_client) {
  std::vector<std::vector<double>> per_client_ms(
      static_cast<size_t>(clients));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const double wall_ms = TimeMillis([&] {
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        QueryClientOptions client_options;
        client_options.port = server.port();
        QueryClient client(client_options);
        auto& latencies = per_client_ms[static_cast<size_t>(c)];
        latencies.reserve(static_cast<size_t>(requests_per_client));
        for (int i = 0; i < requests_per_client; ++i) {
          TemporalQueryRequest request;
          request.text =
              Queries()[static_cast<size_t>(c + i) % Queries().size()];
          const double ms = TimeMillis([&] {
            if (!client.TemporalQuery(request).ok()) ++failures;
          });
          latencies.push_back(ms);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  });
  HMMM_CHECK(failures.load() == 0);

  std::vector<double> all;
  for (const auto& latencies : per_client_ms) {
    all.insert(all.end(), latencies.begin(), latencies.end());
  }
  SweepPoint point;
  point.workers = workers;
  point.clients = clients;
  point.requests = clients * requests_per_client;
  point.wall_ms = wall_ms;
  point.qps = wall_ms > 0.0 ? 1000.0 * point.requests / wall_ms : 0.0;
  point.median_request_ms = Percentile(all, 0.5);
  point.p99_request_ms = Percentile(all, 0.99);
  return point;
}

/// Runs `clients` concurrent QueryClients, each issuing
/// `requests_per_client` temporal queries against a fresh server with
/// `workers` worker threads. Trace sampling stays at its 0.0 default:
/// the sweep measures the untraced fast path.
SweepPoint RunSweepPoint(int workers, int clients, int requests_per_client) {
  QueryServerOptions options;
  options.num_workers = workers;
  QueryServer server(&Database(), options);
  HMMM_CHECK(server.Start().ok());
  SweepPoint point = MeasureAgainst(server, workers, clients,
                                    requests_per_client);
  server.Shutdown();
  return point;
}

/// Same single-client workload against a service with head sampling
/// forced on (trace_sample_rate = 1.0): every request opens, renders and
/// tail-captures a full span tree, so the delta against the untraced
/// point is the per-request cost of always-on tracing.
SweepPoint RunSampledPoint(int requests) {
  QueryServiceOptions service_options;
  service_options.trace_sample_rate = 1.0;
  VideoDatabaseService service(&Database(), service_options);
  QueryServerOptions server_options;
  server_options.num_workers = 1;  // mirror the untraced 1x1 sweep point
  QueryServer server(&service, server_options);
  HMMM_CHECK(server.Start().ok());
  SweepPoint point = MeasureAgainst(server, /*workers=*/1, /*clients=*/1,
                                    requests);
  server.Shutdown();
  return point;
}

/// Median in-process latency of the same query mix — the no-network
/// floor the served numbers are compared against.
double InProcessMedianMs() {
  std::vector<double> latencies;
  for (int i = 0; i < 40; ++i) {
    const std::string& text = Queries()[static_cast<size_t>(i) %
                                        Queries().size()];
    latencies.push_back(TimeMillis([&] {
      HMMM_CHECK(Database().Query(text).ok());
    }));
  }
  return Percentile(latencies, 0.5);
}

void RunServingBench() {
  const double in_process_ms = InProcessMedianMs();

  Banner("serving: workers x clients sweep (loopback TCP)");
  Row({"workers", "clients", "requests", "wall ms", "qps", "median ms",
       "p99 ms"});
  std::vector<std::string> sweep_json;
  std::vector<SweepPoint> sweep;
  for (const auto& [workers, clients] :
       std::vector<std::pair<int, int>>{{1, 1}, {1, 4}, {2, 4}, {4, 8}}) {
    // 100 requests per client keeps the p99 a real percentile rather
    // than the max of a couple dozen samples — the tail is what the
    // baseline gate watches.
    const SweepPoint point =
        RunSweepPoint(workers, clients, /*requests_per_client=*/100);
    sweep.push_back(point);
    Row({StrFormat("%d", point.workers), StrFormat("%d", point.clients),
         StrFormat("%d", point.requests), Fmt("%.2f", point.wall_ms),
         Fmt("%.0f", point.qps), Fmt("%.3f", point.median_request_ms),
         Fmt("%.3f", point.p99_request_ms)});
    sweep_json.push_back(JsonObject({
        {"workers", JsonNumber(point.workers)},
        {"clients", JsonNumber(point.clients)},
        {"requests", JsonNumber(point.requests)},
        {"wall_ms", JsonNumber(point.wall_ms)},
        {"qps", JsonNumber(point.qps)},
        {"median_request_ms", JsonNumber(point.median_request_ms)},
        {"p99_request_ms", JsonNumber(point.p99_request_ms)},
    }));
  }

  // Wire overhead: one unloaded client against one worker, relative to
  // the in-process floor.
  const double served_ms = sweep.front().median_request_ms;
  Banner("serving: single-request overhead");
  Row({"in-process ms", "served ms", "overhead ms"});
  Row({Fmt("%.3f", in_process_ms), Fmt("%.3f", served_ms),
       Fmt("%.3f", served_ms - in_process_ms)});

  // Tracing overhead: the same unloaded workload with head sampling
  // forced to 1.0 (every request traced + tail-captured), against the
  // untraced point above.
  const SweepPoint sampled = RunSampledPoint(/*requests=*/100);
  Banner("serving: always-on trace sampling overhead");
  Row({"untraced ms", "sampled ms", "overhead ms"});
  Row({Fmt("%.3f", served_ms), Fmt("%.3f", sampled.median_request_ms),
       Fmt("%.3f", sampled.median_request_ms - served_ms)});

  WriteBenchJson(
      "BENCH_serving.json",
      JsonObject({
          {"benchmark", JsonQuote("serving")},
          {"videos",
           JsonNumber(static_cast<double>(Database().catalog().num_videos()))},
          {"shots",
           JsonNumber(static_cast<double>(Database().catalog().num_shots()))},
          {"in_process_median_ms", JsonNumber(in_process_ms)},
          {"served_median_ms", JsonNumber(served_ms)},
          {"wire_overhead_ms", JsonNumber(served_ms - in_process_ms)},
          {"sampled_median_ms", JsonNumber(sampled.median_request_ms)},
          {"sampling_overhead_ms",
           JsonNumber(sampled.median_request_ms - served_ms)},
          {"sweep", JsonArray(sweep_json)},
      }));
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::RunServingBench();
  return 0;
}
