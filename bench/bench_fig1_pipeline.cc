// Experiment F1 — Figure 1 of the paper: the overall framework. Times each
// pipeline stage (video synthesis -> shot boundary detection -> feature
// extraction -> decision-tree event detection -> HMMM construction) and
// reports stage costs and end-to-end throughput at several corpus sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace hmmm::bench {
namespace {

SoccerGeneratorConfig MediaConfig(uint64_t seed) {
  SoccerGeneratorConfig config;
  config.seed = seed;
  config.min_shots_per_video = 10;
  config.max_shots_per_video = 14;
  config.min_frames_per_shot = 10;
  config.max_frames_per_shot = 22;
  config.event_shot_fraction = 0.45;
  return config;
}

void BM_BoundaryDetection(benchmark::State& state) {
  const SyntheticVideo video =
      SoccerVideoGenerator(MediaConfig(3)).Generate(0);
  const BoundaryDetector detector;
  for (auto _ : state) {
    auto boundaries = detector.Detect(video.frames);
    benchmark::DoNotOptimize(boundaries);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(video.frames.size()));
}
BENCHMARK(BM_BoundaryDetection);

void BM_ModelBuild(benchmark::State& state) {
  const VideoCatalog catalog =
      MakeSoccerCatalog(static_cast<int>(state.range(0)), 5, 0.1);
  for (auto _ : state) {
    auto model = ModelBuilder(catalog).Build();
    benchmark::DoNotOptimize(model);
  }
  state.SetLabel(StrFormat("%zu shots / %zu states", catalog.num_shots(),
                           catalog.num_annotated_shots()));
}
BENCHMARK(BM_ModelBuild)->Arg(8)->Arg(16)->Arg(54);

void PrintPipelineTable() {
  Banner("Figure 1 (reproduced): framework stage costs");
  Row({"videos", "frames", "shots", "gen ms", "segment ms", "extract ms",
       "detect ms", "build ms", "query ms", "e2e shots/s"});

  for (int num_videos : {2, 4, 8}) {
    SoccerVideoGenerator generator(MediaConfig(11));
    std::vector<SyntheticVideo> videos;
    const double gen_ms = TimeMillis([&] {
      for (int v = 0; v < num_videos; ++v) {
        videos.push_back(generator.Generate(v));
      }
    });

    size_t frames = 0, shots = 0;
    ShotSegmenter segmenter;
    std::vector<std::vector<DetectedShot>> detected(videos.size());
    const double segment_ms = TimeMillis([&] {
      for (size_t v = 0; v < videos.size(); ++v) {
        detected[v] = segmenter.Segment(videos[v]);
        frames += videos[v].frames.size();
      }
    });

    // Extract features for ground-truth shots (annotations known) and
    // build the supervised dataset for the detector.
    ShotFeatureExtractor extractor;
    LabeledDataset dataset;
    std::vector<std::vector<double>> rows;
    const double extract_ms = TimeMillis([&] {
      for (const SyntheticVideo& video : videos) {
        for (size_t s = 0; s < video.shots.size(); ++s) {
          auto features = extractor.ExtractForShot(video, s);
          HMMM_CHECK(features.ok());
          rows.push_back(std::move(features).value());
          const auto& events = video.shots[s].events;
          dataset.labels.push_back(events.empty() ? kBackgroundLabel
                                                  : events[0]);
          ++shots;
        }
      }
      auto matrix = Matrix::FromRows(rows);
      HMMM_CHECK(matrix.ok());
      dataset.features = std::move(matrix).value();
    });

    EventDetector detector(SoccerEvents());
    const double detect_ms = TimeMillis([&] {
      HMMM_CHECK(detector.Train(dataset).ok());
      size_t row = 0;
      for (const SyntheticVideo& video : videos) {
        for (size_t s = 0; s < video.shots.size(); ++s) {
          auto events = detector.Detect(dataset.features.Row(row++));
          HMMM_CHECK(events.ok());
          benchmark::DoNotOptimize(events);
        }
      }
    });

    // Catalog + HMMM build + a query.
    VideoCatalog catalog(SoccerEvents(), kNumFeatures);
    size_t row = 0;
    for (const SyntheticVideo& video : videos) {
      const VideoId vid = catalog.AddVideo(video.name);
      for (size_t s = 0; s < video.shots.size(); ++s) {
        HMMM_CHECK(catalog
                       .AddShot(vid, video.shots[s].begin_frame / video.fps,
                                video.shots[s].end_frame / video.fps,
                                video.shots[s].events,
                                dataset.features.Row(row++))
                       .ok());
      }
    }
    double query_ms = 0.0;
    const double build_ms = TimeMillis([&] {
      auto engine = RetrievalEngine::Create(catalog);
      HMMM_CHECK(engine.ok());
      query_ms = TimeMillis([&] {
        auto results = engine->Query("free_kick ; goal");
        HMMM_CHECK(results.ok());
        benchmark::DoNotOptimize(results);
      });
    });

    const double total =
        gen_ms + segment_ms + extract_ms + detect_ms + build_ms;
    Row({StrFormat("%d", num_videos), StrFormat("%zu", frames),
         StrFormat("%zu", shots), Fmt("%8.1f", gen_ms),
         Fmt("%8.1f", segment_ms), Fmt("%8.1f", extract_ms),
         Fmt("%8.1f", detect_ms), Fmt("%8.1f", build_ms - query_ms),
         Fmt("%8.2f", query_ms),
         Fmt("%8.1f", 1000.0 * static_cast<double>(shots) / total)});
  }
  std::printf("\nPaper: Fig. 1 shows the five framework components; this\n"
              "table shows each component is implemented and where the time\n"
              "goes. Media synthesis + feature extraction dominate; the\n"
              "HMMM build and query stages are comparatively cheap, as the\n"
              "paper's design intends.\n");
}

}  // namespace
}  // namespace hmmm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hmmm::bench::PrintPipelineTable();
  return 0;
}
