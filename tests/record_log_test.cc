#include "storage/record_log.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialization.h"
#include "common/strings.h"
#include "test_util.h"

namespace hmmm {
namespace {

std::string LogPath(const std::string& name) {
  const std::string path = testing::TempPath(name);
  std::remove(path.c_str());
  return path;
}

TEST(RecordLogTest, AppendAndReplay) {
  const std::string path = LogPath("record_log_basic.log");
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("first").ok());
    ASSERT_TRUE(writer->Append("").ok());  // empty records are legal
    ASSERT_TRUE(writer->Append(std::string("bin\0ary", 7)).ok());
    EXPECT_EQ(writer->records_appended(), 3u);
    ASSERT_TRUE(writer->Close().ok());
  }
  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0], "first");
  EXPECT_EQ(contents->records[1], "");
  EXPECT_EQ(contents->records[2], std::string("bin\0ary", 7));
  EXPECT_EQ(contents->dropped_tail_bytes, 0u);
  std::remove(path.c_str());
}

TEST(RecordLogTest, ReopenAppends) {
  const std::string path = LogPath("record_log_reopen.log");
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("a").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("b").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[1], "b");
  std::remove(path.c_str());
}

TEST(RecordLogTest, TornTailDroppedOnRecovery) {
  const std::string path = LogPath("record_log_torn.log");
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("intact record one").ok());
    ASSERT_TRUE(writer->Append("intact record two").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  // Simulate a crash mid-append: append a record, then truncate bytes.
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("record that gets torn").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const std::string truncated = full->substr(0, full->size() - 6);
  ASSERT_TRUE(WriteFile(path, truncated).ok());

  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->records.size(), 2u);
  EXPECT_GT(contents->dropped_tail_bytes, 0u);
  std::remove(path.c_str());
}

TEST(RecordLogTest, EveryTruncationPointRecoversPrefix) {
  // Property: truncating a clean log at ANY byte offset yields recovery
  // of some prefix of the records, never an error or garbage record.
  const std::string path = LogPath("record_log_sweep.log");
  std::vector<std::string> records;
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) {
      records.push_back(StrFormat("record-%d-%s", i,
                                  std::string(static_cast<size_t>(i * 3), 'x')
                                      .c_str()));
      ASSERT_TRUE(writer->Append(records.back()).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  for (size_t cut = 0; cut < full->size(); ++cut) {
    ASSERT_TRUE(WriteFile(path, full->substr(0, cut)).ok());
    auto contents = ReadRecordLog(path);
    ASSERT_TRUE(contents.ok()) << "cut at " << cut;
    ASSERT_LE(contents->records.size(), records.size());
    for (size_t i = 0; i < contents->records.size(); ++i) {
      EXPECT_EQ(contents->records[i], records[i]) << "cut at " << cut;
    }
  }
  std::remove(path.c_str());
}

TEST(RecordLogTest, MidFileCorruptionIsDataLoss) {
  const std::string path = LogPath("record_log_corrupt.log");
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(std::string(100, 'a')).ok());
    ASSERT_TRUE(writer->Append(std::string(100, 'b')).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string corrupted = *full;
  corrupted[20] ^= 0x7F;  // inside the first record's payload
  ASSERT_TRUE(WriteFile(path, corrupted).ok());
  auto contents = ReadRecordLog(path);
  EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(RecordLogTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadRecordLog("/nonexistent/dir/wal.log").status().code(),
            StatusCode::kNotFound);
}

TEST(RecordLogTest, MoveSemantics) {
  const std::string path = LogPath("record_log_move.log");
  auto writer = RecordLogWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  RecordLogWriter moved = std::move(writer).value();
  ASSERT_TRUE(moved.Append("after move").ok());
  ASSERT_TRUE(moved.Close().ok());
  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hmmm
