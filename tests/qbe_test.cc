#include "retrieval/qbe.h"

#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "test_util.h"

namespace hmmm {
namespace {

class QbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    ModelBuilderOptions options;
    options.learn_feature_weights = true;
    auto model = ModelBuilder(catalog_, options).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(QbeTest, ModelStoresNormalizerParameters) {
  EXPECT_EQ(model_.feature_minima().size(), 8u);
  EXPECT_EQ(model_.feature_maxima().size(), 8u);
  // Raw features in the small catalog are 0.1 / 0.9 per column.
  EXPECT_DOUBLE_EQ(model_.feature_minima()[0], 0.1);
  EXPECT_DOUBLE_EQ(model_.feature_maxima()[0], 0.9);
}

TEST_F(QbeTest, NormalizeFeaturesAppliesEquation3) {
  auto normalized = model_.NormalizeFeatures(
      {0.5, 0.1, 0.9, 0.5, 0.5, 0.5, 0.5, 0.5});
  ASSERT_TRUE(normalized.ok());
  EXPECT_DOUBLE_EQ((*normalized)[0], 0.5);
  EXPECT_DOUBLE_EQ((*normalized)[1], 0.0);
  EXPECT_DOUBLE_EQ((*normalized)[2], 1.0);
  // Out-of-range raw values clamp.
  auto clamped = model_.NormalizeFeatures(
      {2.0, -1.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5});
  ASSERT_TRUE(clamped.ok());
  EXPECT_DOUBLE_EQ((*clamped)[0], 1.0);
  EXPECT_DOUBLE_EQ((*clamped)[1], 0.0);
}

TEST_F(QbeTest, NormalizeFeaturesValidatesWidth) {
  EXPECT_FALSE(model_.NormalizeFeatures({0.5}).ok());
}

TEST_F(QbeTest, NormalizerParametersSurviveSerialization) {
  auto restored = HierarchicalModel::Deserialize(model_.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->feature_minima(), model_.feature_minima());
  EXPECT_EQ(restored->feature_maxima(), model_.feature_maxima());
}

TEST_F(QbeTest, ExampleRetrievesMatchingShots) {
  QbeMatcher matcher(model_);
  // A raw example that looks like a goal shot (feature 0 hot).
  std::vector<double> example(8, 0.1);
  example[0] = 0.9;
  auto results = matcher.Retrieve(example);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // Top results must be the goal-annotated shots (2, 4, 7).
  const ShotId top = results->front().shot;
  EXPECT_TRUE(catalog_.shot(top).HasEvent(0)) << "top shot " << top;
}

TEST_F(QbeTest, ResultsSortedAndTruncated) {
  QbeOptions options;
  options.max_results = 3;
  QbeMatcher matcher(model_, options);
  auto results = matcher.Retrieve(std::vector<double>(8, 0.5));
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_GE((*results)[i - 1].similarity, (*results)[i].similarity);
  }
}

TEST_F(QbeTest, SimilarToExcludesProbe) {
  QbeMatcher matcher(model_);
  auto results = matcher.RetrieveSimilarTo(4);  // a goal shot
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  for (const QbeResult& r : *results) {
    EXPECT_NE(r.shot, 4);
  }
  // The most similar shot to a goal shot is another goal shot.
  EXPECT_TRUE(catalog_.shot(results->front().shot).HasEvent(0));
}

TEST_F(QbeTest, SimilarToRejectsNonStates) {
  QbeMatcher matcher(model_);
  EXPECT_FALSE(matcher.RetrieveSimilarTo(1).ok());    // un-annotated shot
  EXPECT_FALSE(matcher.RetrieveSimilarTo(999).ok());  // unknown shot
}

TEST_F(QbeTest, FeatureSubsetRestricts) {
  QbeOptions options;
  options.feature_subset = {2};  // only the free_kick indicator feature
  QbeMatcher matcher(model_, options);
  std::vector<double> example(8, 0.1);
  example[2] = 0.9;
  auto results = matcher.Retrieve(example);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(catalog_.shot(results->front().shot).HasEvent(2));
}

TEST_F(QbeTest, EventWeightedSimilarity) {
  QbeOptions options;
  options.weight_event = 0;  // use goal's learned P12 row
  QbeMatcher matcher(model_, options);
  std::vector<double> example(8, 0.1);
  example[0] = 0.9;
  auto results = matcher.Retrieve(example);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST_F(QbeTest, WidthMismatchRejected) {
  QbeMatcher matcher(model_);
  EXPECT_FALSE(matcher.Retrieve({0.5, 0.5}).ok());
}

}  // namespace
}  // namespace hmmm
