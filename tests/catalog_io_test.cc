#include "storage/model_io.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hmmm {
namespace {

TEST(CatalogIoTest, RoundTripPreservesEverything) {
  const VideoCatalog original = testing::SmallSoccerCatalog();
  const std::string blob = SerializeCatalog(original);
  auto restored = DeserializeCatalog(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->num_videos(), original.num_videos());
  EXPECT_EQ(restored->num_shots(), original.num_shots());
  EXPECT_EQ(restored->num_features(), original.num_features());
  EXPECT_EQ(restored->vocabulary().names(), original.vocabulary().names());
  for (size_t s = 0; s < original.num_shots(); ++s) {
    const ShotRecord& a = original.shot(static_cast<ShotId>(s));
    const ShotRecord& b = restored->shot(static_cast<ShotId>(s));
    EXPECT_EQ(a.video_id, b.video_id);
    EXPECT_EQ(a.index_in_video, b.index_in_video);
    EXPECT_DOUBLE_EQ(a.begin_time, b.begin_time);
    EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(original.raw_features_of(static_cast<ShotId>(s)),
              restored->raw_features_of(static_cast<ShotId>(s)));
  }
}

TEST(CatalogIoTest, RoundTripLargeGeneratedCorpus) {
  const VideoCatalog original = testing::GeneratedSoccerCatalog(4, 6);
  auto restored = DeserializeCatalog(SerializeCatalog(original));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_shots(), original.num_shots());
  EXPECT_EQ(restored->num_annotations(), original.num_annotations());
}

TEST(CatalogIoTest, CorruptionRejected) {
  std::string blob = SerializeCatalog(testing::SmallSoccerCatalog());
  blob[blob.size() / 2] ^= 0x01;
  EXPECT_EQ(DeserializeCatalog(blob).status().code(), StatusCode::kDataLoss);
}

TEST(CatalogIoTest, TruncationRejected) {
  const std::string blob = SerializeCatalog(testing::SmallSoccerCatalog());
  EXPECT_FALSE(
      DeserializeCatalog(std::string_view(blob).substr(0, blob.size() - 5)).ok());
}

TEST(CatalogIoTest, WrongMagicRejected) {
  const std::string blob =
      WrapChecksummed(0x12345678, kCatalogVersion, "junk");
  EXPECT_FALSE(DeserializeCatalog(blob).ok());
}

TEST(CatalogIoTest, FileRoundTrip) {
  const VideoCatalog original = testing::SmallSoccerCatalog();
  const std::string path = testing::TempPath("hmmm_catalog_io_test.cat");
  ASSERT_TRUE(SaveCatalog(original, path).ok());
  auto restored = LoadCatalog(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_shots(), original.num_shots());
  std::remove(path.c_str());
}

TEST(CatalogIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadCatalog("/nonexistent/catalog.bin").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace hmmm
