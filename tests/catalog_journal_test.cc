#include "storage/catalog_journal.h"

#include <gtest/gtest.h>

#include "common/serialization.h"
#include "retrieval/engine.h"
#include "test_util.h"

namespace hmmm {
namespace {

std::string JournalPath(const std::string& name) {
  const std::string path = testing::TempPath(name);
  std::remove(path.c_str());
  return path;
}

TEST(CatalogJournalTest, IngestAndReplay) {
  const std::string path = JournalPath("journal_basic.wal");
  {
    auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
    ASSERT_TRUE(journal.ok()) << journal.status();
    auto v0 = journal->AppendVideo("match_a");
    ASSERT_TRUE(v0.ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 0.0, 4.0, {2}, {0.9, 0.1}).ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 4.0, 9.0, {}, {0.2, 0.2}).ok());
    auto v1 = journal->AppendVideo("match_b");
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(journal->AppendShot(*v1, 0.0, 5.0, {0}, {0.1, 0.9}).ok());
    ASSERT_TRUE(journal->Flush().ok());
    EXPECT_EQ(journal->catalog().num_videos(), 2u);
    EXPECT_EQ(journal->catalog().num_shots(), 3u);
  }
  // Reopen: the catalog is rebuilt by replay.
  auto reopened = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->recovered_tail_bytes(), 0u);
  EXPECT_EQ(reopened->catalog().num_videos(), 2u);
  EXPECT_EQ(reopened->catalog().num_shots(), 3u);
  EXPECT_EQ(reopened->catalog().num_annotated_shots(), 2u);
  EXPECT_EQ(reopened->catalog().video(0).name, "match_a");
  EXPECT_EQ(reopened->catalog().shot(0).events, (std::vector<EventId>{2}));
  EXPECT_EQ(reopened->catalog().raw_features_of(2),
            (std::vector<double>{0.1, 0.9}));
  EXPECT_TRUE(reopened->catalog().Validate().ok());

  // And it stays appendable.
  ASSERT_TRUE(reopened->AppendShot(1, 5.0, 8.0, {1}, {0.5, 0.5}).ok());
  ASSERT_TRUE(reopened->Flush().ok());
  auto third = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->catalog().num_shots(), 4u);
  std::remove(path.c_str());
}

TEST(CatalogJournalTest, TornTailRecovery) {
  const std::string path = JournalPath("journal_torn.wal");
  {
    auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
    ASSERT_TRUE(journal.ok());
    auto v0 = journal->AppendVideo("match");
    ASSERT_TRUE(v0.ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 0.0, 4.0, {2}, {0.9, 0.1}).ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 4.0, 9.0, {0}, {0.1, 0.9}).ok());
    ASSERT_TRUE(journal->Flush().ok());
  }
  // Tear the tail: drop the last few bytes (mid-record crash).
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(WriteFile(path, full->substr(0, full->size() - 4)).ok());

  auto recovered = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GT(recovered->recovered_tail_bytes(), 0u);
  EXPECT_EQ(recovered->catalog().num_shots(), 1u);  // last shot lost
  EXPECT_TRUE(recovered->catalog().Validate().ok());
  std::remove(path.c_str());
}

TEST(CatalogJournalTest, MidFileCorruptionNotMaskedAsEmpty) {
  const std::string path = JournalPath("journal_corrupt.wal");
  {
    auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
    ASSERT_TRUE(journal.ok());
    auto v0 = journal->AppendVideo("match");
    ASSERT_TRUE(v0.ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 0.0, 4.0, {2},
                                    std::vector<double>(2, 0.5)).ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 4.0, 9.0, {0},
                                    std::vector<double>(2, 0.5)).ok());
    ASSERT_TRUE(journal->Flush().ok());
  }
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string corrupted = *full;
  corrupted[10] ^= 0x55;  // inside the header record, not the tail
  ASSERT_TRUE(WriteFile(path, corrupted).ok());
  auto reopened = CatalogJournal::Open(path, SoccerEvents(), 2);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CatalogJournalTest, VocabularyMismatchRejected) {
  const std::string path = JournalPath("journal_vocab.wal");
  {
    auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Flush().ok());
  }
  auto wrong_vocab = CatalogJournal::Open(path, NewsEvents(), 2);
  EXPECT_EQ(wrong_vocab.status().code(), StatusCode::kFailedPrecondition);
  auto wrong_features = CatalogJournal::Open(path, SoccerEvents(), 7);
  EXPECT_EQ(wrong_features.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CatalogJournalTest, InvalidOpsNeverReachTheLog) {
  const std::string path = JournalPath("journal_invalid.wal");
  auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(journal.ok());
  auto v0 = journal->AppendVideo("match");
  ASSERT_TRUE(v0.ok());
  // Wrong width, bad event id, unknown video: all rejected up front.
  EXPECT_FALSE(journal->AppendShot(*v0, 0, 1, {}, {0.5}).ok());
  EXPECT_FALSE(journal->AppendShot(*v0, 0, 1, {99}, {0.5, 0.5}).ok());
  EXPECT_FALSE(journal->AppendShot(7, 0, 1, {}, {0.5, 0.5}).ok());
  ASSERT_TRUE(journal->Flush().ok());
  // Replay still clean.
  auto reopened = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->catalog().num_shots(), 0u);
  std::remove(path.c_str());
}

TEST(CatalogJournalTest, JournaledCatalogDrivesRetrieval) {
  // End-to-end: ingest via journal, reopen, build a model, query.
  const std::string path = JournalPath("journal_e2e.wal");
  const VideoCatalog source = testing::SmallSoccerCatalog();
  {
    auto journal = CatalogJournal::Open(path, source.vocabulary(),
                                        source.num_features());
    ASSERT_TRUE(journal.ok());
    for (const VideoRecord& video : source.videos()) {
      auto vid = journal->AppendVideo(video.name);
      ASSERT_TRUE(vid.ok());
      for (ShotId sid : video.shots) {
        const ShotRecord& shot = source.shot(sid);
        ASSERT_TRUE(journal
                        ->AppendShot(*vid, shot.begin_time, shot.end_time,
                                     shot.events, source.raw_features_of(sid))
                        .ok());
      }
    }
    ASSERT_TRUE(journal->Flush().ok());
  }
  auto journal = CatalogJournal::Open(path, source.vocabulary(),
                                      source.num_features());
  ASSERT_TRUE(journal.ok());
  auto engine = RetrievalEngine::Create(journal->catalog());
  ASSERT_TRUE(engine.ok());
  auto results = engine->Query("free_kick ; goal");
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hmmm
