// Integration test of the full Fig.-1 pipeline: synthetic soccer footage
// -> shot boundary detection -> Table-1 feature extraction -> decision-tree
// event detection -> catalog -> HMMM construction -> temporal pattern
// retrieval -> feedback learning.

#include <gtest/gtest.h>

#include "hmmm.h"
#include "test_util.h"

namespace hmmm {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static SoccerGeneratorConfig MediaConfig() {
    SoccerGeneratorConfig config;
    config.seed = 1234;
    config.min_shots_per_video = 10;
    config.max_shots_per_video = 14;
    config.min_frames_per_shot = 10;
    config.max_frames_per_shot = 20;
    config.event_shot_fraction = 0.5;
    return config;
  }
};

TEST_F(EndToEndTest, MediaPipelineProducesQueryableModel) {
  SoccerVideoGenerator generator(MediaConfig());
  const int num_videos = 3;

  VideoCatalog catalog(generator.vocabulary(), kNumFeatures);
  ShotFeatureExtractor extractor;

  // Stage 1-2: generate, segment (using ground-truth shot spans here;
  // detector quality is covered by boundary_detector_test), extract
  // features, and ingest annotations.
  for (int v = 0; v < num_videos; ++v) {
    const SyntheticVideo video = generator.Generate(v);
    const VideoId vid = catalog.AddVideo(video.name);
    for (size_t s = 0; s < video.shots.size(); ++s) {
      const ShotTruth& shot = video.shots[s];
      auto features = extractor.ExtractForShot(video, s);
      ASSERT_TRUE(features.ok()) << features.status();
      auto added = catalog.AddShot(
          vid, shot.begin_frame / video.fps, shot.end_frame / video.fps,
          shot.events, std::move(features).value());
      ASSERT_TRUE(added.ok()) << added.status();
    }
  }
  ASSERT_TRUE(catalog.Validate().ok());
  ASSERT_GT(catalog.num_annotated_shots(), 4u);

  // Stage 3: HMMM construction and retrieval.
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto results = engine->Query("free_kick");
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST_F(EndToEndTest, DetectedBoundariesRoughlyMatchTruth) {
  SoccerVideoGenerator generator(MediaConfig());
  const SyntheticVideo video = generator.Generate(0);
  ShotSegmenter segmenter;
  const auto shots = segmenter.Segment(video);
  // Within a factor ~2 of the true shot count.
  EXPECT_GT(shots.size(), video.shots.size() / 2);
  EXPECT_LT(shots.size(), video.shots.size() * 2);
}

TEST_F(EndToEndTest, EventDetectorLearnsFromExtractedFeatures) {
  SoccerVideoGenerator generator(MediaConfig());
  ShotFeatureExtractor extractor;
  LabeledDataset dataset;
  std::vector<std::vector<double>> rows;
  for (int v = 0; v < 6; ++v) {
    const SyntheticVideo video = generator.Generate(v);
    for (size_t s = 0; s < video.shots.size(); ++s) {
      auto features = extractor.ExtractForShot(video, s);
      ASSERT_TRUE(features.ok());
      rows.push_back(std::move(features).value());
      const auto& events = video.shots[s].events;
      dataset.labels.push_back(events.empty() ? kBackgroundLabel : events[0]);
    }
  }
  dataset.features = *Matrix::FromRows(rows);

  Rng rng(5);
  auto split = SplitDataset(dataset, 0.3, rng);
  ASSERT_TRUE(split.ok());
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(split->train).ok());
  auto metrics = EvaluateClassifier(tree, split->test);
  ASSERT_TRUE(metrics.ok());
  // Real features on synthetic footage: much better than the ~1/9 chance
  // level (8 events + background).
  EXPECT_GT(metrics->accuracy, 0.45);
}

TEST_F(EndToEndTest, FeatureLevelPipelineWithFeedbackImproves) {
  // Paper-shaped experiment in miniature: retrieval quality before vs
  // after feedback rounds on a generated corpus.
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(99, 12);
  TraversalOptions traversal;
  traversal.beam_width = 2;
  auto engine = RetrievalEngine::Create(catalog, {}, traversal);
  ASSERT_TRUE(engine.ok());

  const auto pattern = *CompileQuery("free_kick ; goal", catalog.vocabulary());
  auto before = engine->Retrieve(pattern);
  ASSERT_TRUE(before.ok());
  const auto metrics_before = EvaluateRanking(catalog, pattern, *before, 10);

  SimulatedUser user(catalog);
  FeedbackTrainerOptions trainer_options;
  trainer_options.retrain_threshold = 1;
  FeedbackTrainer trainer(catalog, trainer_options);
  for (int round = 0; round < 4; ++round) {
    auto results = engine->Retrieve(pattern);
    ASSERT_TRUE(results.ok());
    for (size_t i : user.JudgePositive(pattern, *results)) {
      ASSERT_TRUE(trainer.MarkPositive(engine->model(), (*results)[i]).ok());
    }
    ASSERT_TRUE(trainer.MaybeTrain(engine->mutable_model(), true).ok());
  }
  auto after = engine->Retrieve(pattern);
  ASSERT_TRUE(after.ok());
  const auto metrics_after = EvaluateRanking(catalog, pattern, *after, 10);
  // Feedback must not hurt, and the model must stay consistent.
  EXPECT_GE(metrics_after.precision_at_k + 1e-9, metrics_before.precision_at_k);
  EXPECT_TRUE(engine->model().Validate().ok());
}

TEST_F(EndToEndTest, ModelSurvivesSaveLoadQueryCycle) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(7, 6);
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  auto expected = engine->Query("goal");
  ASSERT_TRUE(expected.ok());

  const std::string model_path = testing::TempPath("hmmm_e2e_model.hmmm");
  const std::string catalog_path = testing::TempPath("hmmm_e2e_catalog.cat");
  ASSERT_TRUE(engine->model().SaveToFile(model_path).ok());
  ASSERT_TRUE(SaveCatalog(catalog, catalog_path).ok());

  auto loaded_catalog = LoadCatalog(catalog_path);
  ASSERT_TRUE(loaded_catalog.ok());
  auto loaded_model = HierarchicalModel::LoadFromFile(model_path);
  ASSERT_TRUE(loaded_model.ok());
  RetrievalEngine restored(*loaded_catalog, std::move(loaded_model).value());
  auto results = restored.Query("goal");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), expected->size());
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ((*results)[i].shots, (*expected)[i].shots);
    EXPECT_NEAR((*results)[i].score, (*expected)[i].score, 1e-12);
  }
  std::remove(model_path.c_str());
  std::remove(catalog_path.c_str());
}

TEST_F(EndToEndTest, MixedArchiveClustersDomainsViaB2) {
  // Soccer + news corpora in one archive: B2 rows of news videos have
  // zero mass on soccer events and vice versa, which is what drives the
  // video-level clustering claim of Section 4.2.2.
  FeatureLevelConfig soccer_config = SoccerFeatureLevelDefaults(3);
  soccer_config.num_videos = 4;
  soccer_config.min_shots_per_video = 30;
  soccer_config.max_shots_per_video = 40;
  FeatureLevelGenerator soccer(soccer_config);

  FeatureLevelConfig news_config = NewsFeatureLevelDefaults(4);
  news_config.num_videos = 4;
  news_config.min_shots_per_video = 30;
  news_config.max_shots_per_video = 40;
  FeatureLevelGenerator news(news_config);

  // A combined vocabulary: soccer ids stay, news ids are offset.
  EventVocabulary combined = SoccerEvents();
  const EventVocabulary news_vocab = NewsEvents();
  std::vector<EventId> news_ids;
  for (const std::string& name : news_vocab.names()) {
    news_ids.push_back(combined.Register(name));
  }
  VideoCatalog catalog(combined, 20);
  const GeneratedCorpus soccer_corpus = soccer.Generate();
  const GeneratedCorpus news_corpus = news.Generate();
  for (const GeneratedVideo& video : soccer_corpus.videos) {
    const VideoId vid = catalog.AddVideo("soccer_" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      ASSERT_TRUE(catalog.AddShot(vid, shot.begin_time, shot.end_time,
                                  shot.events, shot.features).ok());
    }
  }
  for (const GeneratedVideo& video : news_corpus.videos) {
    const VideoId vid = catalog.AddVideo("news_" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      std::vector<EventId> remapped;
      for (EventId e : shot.events) {
        remapped.push_back(news_ids[static_cast<size_t>(e)]);
      }
      ASSERT_TRUE(catalog.AddShot(vid, shot.begin_time, shot.end_time,
                                  remapped, shot.features).ok());
    }
  }

  const Matrix b2 = catalog.EventCountMatrix();
  for (size_t v = 0; v < 4; ++v) {
    double news_mass = 0.0;
    for (EventId e : news_ids) {
      news_mass += b2.at(v, static_cast<size_t>(e));
    }
    EXPECT_DOUBLE_EQ(news_mass, 0.0);  // soccer videos: no news events
  }
  for (size_t v = 4; v < 8; ++v) {
    double soccer_mass = 0.0;
    for (size_t e = 0; e < 8; ++e) soccer_mass += b2.at(v, e);
    EXPECT_DOUBLE_EQ(soccer_mass, 0.0);  // news videos: no soccer events
  }

  // Retrieval against the mixed archive still answers both domains.
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  auto soccer_results = engine->Query("goal");
  ASSERT_TRUE(soccer_results.ok());
  ASSERT_FALSE(soccer_results->empty());
  auto news_results = engine->Query("anchor ; weather");
  ASSERT_TRUE(news_results.ok());
  EXPECT_FALSE(news_results->empty());
}

}  // namespace
}  // namespace hmmm
