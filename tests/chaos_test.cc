#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/serialization.h"
#include "common/thread_pool.h"
#include "core/model_builder.h"
#include "retrieval/engine.h"
#include "retrieval/traversal.h"
#include "storage/catalog_journal.h"
#include "test_util.h"

// Chaos suite: every test arms named fault points and asserts the system
// degrades along its documented contract. The probes only exist when the
// build sets -DHMMM_FAULT_INJECTION=ON (the `chaos` ctest label is wired
// to a dedicated CI leg); in a regular build each test skips — but still
// compiles, so the chaos code cannot bit-rot unnoticed.
#ifdef HMMM_FAULT_INJECTION
#define SKIP_WITHOUT_FAULT_INJECTION() (void)0
#else
#define SKIP_WITHOUT_FAULT_INJECTION() \
  GTEST_SKIP() << "built without HMMM_FAULT_INJECTION"
#endif

namespace hmmm {
namespace {

void ExpectIdenticalResults(const std::vector<RetrievedPattern>& expected,
                            const std::vector<RetrievedPattern>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].shots, actual[i].shots) << "rank " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << "rank " << i;
    EXPECT_EQ(expected[i].video, actual[i].video) << "rank " << i;
    EXPECT_EQ(expected[i].edge_weights, actual[i].edge_weights)
        << "rank " << i;
    EXPECT_EQ(expected[i].crosses_videos, actual[i].crosses_videos)
        << "rank " << i;
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/11, /*num_videos=*/20);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(ChaosTest, ForcedDeadlineCutoffIsByteIdenticalAtEveryThreadCount) {
  SKIP_WITHOUT_FAULT_INJECTION();
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  // Fix the visiting order while nothing is armed, so every run below
  // shares it.
  HmmmTraversal plain(model_, catalog_, TraversalOptions{});
  const std::vector<VideoId> order = plain.VideoOrder(pattern);
  ASSERT_GT(order.size(), 8u);

  // arg_threshold = C makes the Step-7 claim probe fire for every claim
  // index >= C: a deterministic "deadline" at video C, immune to wall
  // clocks and scheduling.
  constexpr int64_t kCutoff = 6;
  FaultPointConfig config;
  config.arg_threshold = kCutoff;
  FaultInjector::Instance().Arm("traversal.deadline_at_video", config);

  std::vector<std::vector<RetrievedPattern>> runs;
  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.num_threads = threads;
    HmmmTraversal traversal(model_, catalog_, options);
    RetrievalStats stats;
    auto results = traversal.RetrieveWithVideoOrder(pattern, order, &stats);
    ASSERT_TRUE(results.ok()) << threads << " threads";
    EXPECT_TRUE(stats.degraded) << threads << " threads";
    EXPECT_EQ(stats.videos_skipped,
              order.size() - static_cast<size_t>(kCutoff))
        << threads << " threads";
    runs.push_back(std::move(results).value());
  }

  // The anytime result is the full retrieval over order[0, C) — computed
  // with the injector quiet — and identical at every thread count.
  FaultInjector::Instance().Reset();
  const std::vector<VideoId> prefix(order.begin(), order.begin() + kCutoff);
  auto reference = plain.RetrieveWithVideoOrder(pattern, prefix);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());
  for (auto& run : runs) ExpectIdenticalResults(*reference, run);
}

TEST_F(ChaosTest, MidWalkFaultAbortsTheWalkAndPinsTheCutoff) {
  SKIP_WITHOUT_FAULT_INJECTION();
  // Multi-step pattern: the walk_fault probe is polled between pattern
  // steps, so walks at order index >= 3 abort mid-lattice.
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  HmmmTraversal plain(model_, catalog_, TraversalOptions{});
  const std::vector<VideoId> order = plain.VideoOrder(pattern);

  FaultPointConfig config;
  config.arg_threshold = 3;
  FaultInjector::Instance().Arm("traversal.walk_fault", config);

  TraversalOptions options;
  options.num_threads = 4;
  HmmmTraversal traversal(model_, catalog_, options);
  RetrievalStats stats;
  auto results = traversal.RetrieveWithVideoOrder(pattern, order, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.videos_skipped, order.size() - 3u);

  FaultInjector::Instance().Reset();
  const std::vector<VideoId> prefix(order.begin(), order.begin() + 3);
  auto reference = plain.RetrieveWithVideoOrder(pattern, prefix);
  ASSERT_TRUE(reference.ok());
  ExpectIdenticalResults(*reference, *results);
}

TEST_F(ChaosTest, OrderingFaultDegradesToEmptyOrder) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig config;
  config.after_hits = 0;
  FaultInjector::Instance().Arm("traversal.order_pick", config);

  HmmmTraversal traversal(model_, catalog_, TraversalOptions{});
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  RetrievalStats stats;
  auto results = traversal.Retrieve(pattern, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.videos_skipped, catalog_.num_videos());
}

TEST_F(ChaosTest, WorkerFaultSurfacesAsInternalErrorNotACrash) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig config;
  config.probability = 1.0;
  FaultInjector::Instance().Arm("threadpool.task", config);

  TraversalOptions options;
  options.num_threads = 4;
  HmmmTraversal traversal(model_, catalog_, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  // The pattern is validated and the order computed before the fan-out;
  // the injected worker exception must come back as a Status.
  HmmmTraversal plain(model_, catalog_, TraversalOptions{});
  const std::vector<VideoId> order = plain.VideoOrder(pattern);
  auto results = traversal.RetrieveWithVideoOrder(pattern, order);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInternal);
  EXPECT_NE(results.status().message().find("injected fault"),
            std::string::npos)
      << results.status();

  // The pool survived: disarm and the same traversal answers normally.
  FaultInjector::Instance().Reset();
  auto healthy = traversal.RetrieveWithVideoOrder(pattern, order);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->empty());
}

TEST_F(ChaosTest, FutureTaskFaultPropagatesThroughTheFuture) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig config;
  config.after_hits = 0;
  config.max_fires = 1;
  FaultInjector::Instance().Arm("threadpool.task", config);

  ThreadPool pool(2);
  auto poisoned = pool.SubmitWithFuture([] {});
  EXPECT_THROW(poisoned.get(), std::runtime_error);
  // One fire only: the next task runs clean on a surviving worker.
  auto healthy = pool.SubmitWithFuture([] {});
  EXPECT_NO_THROW(healthy.get());
}

TEST_F(ChaosTest, TransientReadFaultIsAbsorbedByTheRetryLoop) {
  SKIP_WITHOUT_FAULT_INJECTION();
  const std::string path = testing::TempPath("chaos_transient_read.bin");
  ASSERT_TRUE(WriteFile(path, "payload under test").ok());

  FaultPointConfig transient;
  transient.after_hits = 0;
  transient.max_fires = 1;
  FaultInjector::Instance().Arm("storage.read", transient);
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, "payload under test");
  EXPECT_EQ(FaultInjector::Instance().fires("storage.read"), 1u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, PersistentReadFaultExhaustsTheBoundedRetry) {
  SKIP_WITHOUT_FAULT_INJECTION();
  const std::string path = testing::TempPath("chaos_persistent_read.bin");
  ASSERT_TRUE(WriteFile(path, "unreachable").ok());

  FaultPointConfig persistent;
  persistent.after_hits = 0;
  FaultInjector::Instance().Arm("storage.read", persistent);
  auto data = ReadFileToString(path);
  EXPECT_EQ(data.status().code(), StatusCode::kIOError);
  // The retry is bounded: exactly the attempt budget, no spinning.
  EXPECT_EQ(FaultInjector::Instance().hits("storage.read"), 3u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, AppendFaultFailsCleanlyAndTheJournalStaysAppendable) {
  SKIP_WITHOUT_FAULT_INJECTION();
  const std::string path = testing::TempPath("chaos_journal.wal");
  std::remove(path.c_str());
  auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto v0 = journal->AppendVideo("match");
  ASSERT_TRUE(v0.ok());

  // The probe sits before any byte reaches the file, so a fired append
  // is atomic-failure: nothing torn, nothing applied.
  FaultPointConfig config;
  config.after_hits = 0;
  config.max_fires = 1;
  FaultInjector::Instance().Arm("storage.append", config);
  auto failed = journal->AppendShot(*v0, 0.0, 4.0, {2}, {0.9, 0.1});
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  EXPECT_EQ(journal->catalog().num_shots(), 0u);

  // The transient passed: the same append now lands, and replay agrees.
  auto retried = journal->AppendShot(*v0, 0.0, 4.0, {2}, {0.9, 0.1});
  ASSERT_TRUE(retried.ok()) << retried.status();
  ASSERT_TRUE(journal->Flush().ok());
  auto reopened = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->recovered_tail_bytes(), 0u);
  EXPECT_EQ(reopened->catalog().num_shots(), 1u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, EngineExportsFaultPointCounters) {
  SKIP_WITHOUT_FAULT_INJECTION();
  auto engine = RetrievalEngine::Create(catalog_);
  ASSERT_TRUE(engine.ok());

  FaultPointConfig config;
  config.arg_threshold = 2;
  FaultInjector::Instance().Arm("traversal.deadline_at_video", config);
  RetrievalStats stats;
  auto results = engine->Retrieve(TemporalPattern::FromEvents({2, 0}), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(stats.degraded);

  const std::string dump = engine->DumpMetricsPrometheus();
  EXPECT_NE(dump.find("hmmm_fault_traversal_deadline_at_video_hits"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("hmmm_fault_traversal_deadline_at_video_fires"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("hmmm_queries_degraded_total 1"), std::string::npos)
      << dump;
}

}  // namespace
}  // namespace hmmm
