#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/crc32.h"

namespace hmmm {
namespace {

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "ok"), "x=3 y=ok");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringsTest, StrFormatLongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 501u);
}

TEST(StringsTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, SplitJoinRoundTrip) {
  const std::string text = "x;y;z";
  EXPECT_EQ(StrJoin(StrSplit(text, ';'), ";"), text);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("GoAl_Kick9"), "goal_kick9");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("free_kick", "free"));
  EXPECT_FALSE(StartsWith("free", "free_kick"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C of "123456789" is 0xE3069283 (RFC 3720 test vector).
  const char data[] = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32Test, DifferentDataDifferentCrc) {
  EXPECT_NE(Crc32c("abc", 3), Crc32c("abd", 3));
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "hello, hierarchical markov model mediator";
  const uint32_t whole = Crc32c(data.data(), data.size());
  const uint32_t first = Crc32c(data.data(), 10);
  const uint32_t incremental = Crc32c(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(incremental, whole);
}

}  // namespace
}  // namespace hmmm
