#include "events/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "events/training.h"

namespace hmmm {
namespace {

/// Two well-separated Gaussian blobs in 2D.
LabeledDataset TwoBlobDataset(int per_class, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < per_class; ++i) {
    rows.push_back({rng.NextGaussian(0.2, 0.05), rng.NextGaussian(0.2, 0.05)});
    labels.push_back(0);
    rows.push_back({rng.NextGaussian(0.8, 0.05), rng.NextGaussian(0.8, 0.05)});
    labels.push_back(1);
  }
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows(rows);
  dataset.labels = std::move(labels);
  return dataset;
}

TEST(DecisionTreeTest, RejectsEmptyAndMismatched) {
  DecisionTree tree;
  EXPECT_FALSE(tree.Train(LabeledDataset{}).ok());
  LabeledDataset bad;
  bad.features = Matrix(2, 2);
  bad.labels = {0};
  EXPECT_FALSE(tree.Train(bad).ok());
  EXPECT_FALSE(tree.Predict({1.0, 2.0}).ok());  // untrained
}

TEST(DecisionTreeTest, LearnsLinearlySeparableBlobs) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(TwoBlobDataset(40)).ok());
  EXPECT_TRUE(tree.trained());
  EXPECT_EQ(*tree.Predict({0.15, 0.25}), 0);
  EXPECT_EQ(*tree.Predict({0.85, 0.75}), 1);
}

TEST(DecisionTreeTest, SingleClassGivesSingleLeaf) {
  LabeledDataset dataset;
  dataset.features = Matrix(5, 2, 0.5);
  dataset.labels = std::vector<int>(5, 3);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(dataset).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(*tree.Predict({9.0, 9.0}), 3);
}

TEST(DecisionTreeTest, BackgroundLabelIsLegalClass) {
  LabeledDataset dataset = TwoBlobDataset(20);
  for (int& label : dataset.labels) {
    if (label == 0) label = kBackgroundLabel;
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(dataset).ok());
  EXPECT_EQ(*tree.Predict({0.2, 0.2}), kBackgroundLabel);
}

TEST(DecisionTreeTest, PredictRejectsWrongWidth) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(TwoBlobDataset(10)).ok());
  EXPECT_FALSE(tree.Predict({1.0}).ok());
  EXPECT_FALSE(tree.Predict({1.0, 2.0, 3.0}).ok());
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  DecisionTreeOptions options;
  options.max_depth = 2;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Train(TwoBlobDataset(50)).ok());
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTreeTest, PredictProbaSumsToOne) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(TwoBlobDataset(30)).ok());
  auto proba = tree.PredictProba({0.2, 0.2});
  ASSERT_TRUE(proba.ok());
  double sum = 0.0;
  for (double p : *proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(proba->size(), tree.classes().size());
}

TEST(DecisionTreeTest, FeatureImportancesFocusOnInformative) {
  // Class depends only on feature 0; feature 1 is noise.
  Rng rng(9);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    const int label = i % 2;
    rows.push_back({label == 0 ? rng.NextDouble(0.0, 0.4)
                               : rng.NextDouble(0.6, 1.0),
                    rng.NextDouble()});
    labels.push_back(label);
  }
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows(rows);
  dataset.labels = labels;
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(dataset).ok());
  const auto importances = tree.FeatureImportances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.8);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(DecisionTreeTest, MinSamplesLeafLimitsFragmentation) {
  DecisionTreeOptions options;
  options.min_samples_leaf = 20;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Train(TwoBlobDataset(25)).ok());
  // With 50 total examples and >=20 per leaf, at most 3 leaves exist.
  EXPECT_LE(tree.node_count(), 5u);
}

TEST(DatasetTest, ValidateChecksLabels) {
  LabeledDataset dataset;
  dataset.features = Matrix(2, 1);
  dataset.labels = {0, 5};
  EXPECT_FALSE(dataset.Validate(3).ok());
  dataset.labels = {0, kBackgroundLabel};
  EXPECT_TRUE(dataset.Validate(3).ok());
}

TEST(DatasetTest, IndicesByClassPartitions) {
  LabeledDataset dataset;
  dataset.features = Matrix(4, 1);
  dataset.labels = {1, kBackgroundLabel, 1, 0};
  const auto by_class = dataset.IndicesByClass(2);
  ASSERT_EQ(by_class.size(), 3u);
  EXPECT_EQ(by_class[0], (std::vector<size_t>{3}));
  EXPECT_EQ(by_class[1], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(by_class[2], (std::vector<size_t>{1}));
}

TEST(DatasetTest, CleanDatasetDropsNonFinite) {
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows({{1.0, 2.0}, {std::nan(""), 2.0},
                                        {3.0, 4.0}});
  dataset.labels = {0, 1, 0};
  EXPECT_EQ(CleanDataset(dataset), 1u);
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.labels, (std::vector<int>{0, 0}));
  // Already-clean datasets are untouched.
  EXPECT_EQ(CleanDataset(dataset), 0u);
}

TEST(TrainingTest, SplitDatasetPartitions) {
  const LabeledDataset dataset = TwoBlobDataset(30);
  Rng rng(3);
  auto split = SplitDataset(dataset, 0.25, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size() + split->test.size(), dataset.size());
  EXPECT_EQ(split->test.size(), 15u);  // 25% of 60
  EXPECT_FALSE(SplitDataset(dataset, 0.0, rng).ok());
  EXPECT_FALSE(SplitDataset(dataset, 1.0, rng).ok());
}

TEST(TrainingTest, EvaluateClassifierOnSeparableData) {
  const LabeledDataset dataset = TwoBlobDataset(50);
  Rng rng(4);
  auto split = SplitDataset(dataset, 0.3, rng);
  ASSERT_TRUE(split.ok());
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(split->train).ok());
  auto metrics = EvaluateClassifier(tree, split->test);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->accuracy, 0.95);
  EXPECT_GT(metrics->MacroF1(), 0.95);
  EXPECT_EQ(metrics->examples, split->test.size());
}

}  // namespace
}  // namespace hmmm
