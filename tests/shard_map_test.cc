#include "server/shard_map.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/catalog_partition.h"
#include "api/video_database.h"
#include "test_util.h"

namespace hmmm {
namespace {

using ::hmmm::testing::SmallSoccerCatalog;
using ::hmmm::testing::TempPath;

/// A well-formed two-shard map over 4 videos / 6 shots, with the global
/// shot ids of shard 1 interleaved below shard 0's — the catalog allows
/// interleaved global ids across videos, and the map must too.
ShardMap TwoShardMap() {
  ShardMap map;
  map.total_videos = 4;
  map.total_shots = 6;
  ShardMapEntry a;
  a.endpoint = "127.0.0.1:9001";
  a.video_begin = 0;
  a.video_end = 2;
  a.shot_to_global = {0, 3, 4};
  ShardMapEntry b;
  b.endpoint = "127.0.0.1:9002";
  b.video_begin = 2;
  b.video_end = 4;
  b.shot_to_global = {5, 1, 2};
  map.shards = {a, b};
  return map;
}

TEST(ShardMapTest, ValidMapPasses) {
  EXPECT_TRUE(ValidateShardMap(TwoShardMap()).ok());
}

TEST(ShardMapTest, RejectsEmptyMap) {
  ShardMap map;
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsRangeNotStartingAtZero) {
  ShardMap map = TwoShardMap();
  map.shards[0].video_begin = 1;
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsGapBetweenRanges) {
  ShardMap map = TwoShardMap();
  map.shards[1].video_begin = 3;
  map.shards[1].video_end = 5;
  map.total_videos = 5;
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsOverlappingRanges) {
  ShardMap map = TwoShardMap();
  map.shards[1].video_begin = 1;
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsEmptyRange) {
  ShardMap map = TwoShardMap();
  map.shards[0].video_end = 0;
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsUncoveredVideos) {
  ShardMap map = TwoShardMap();
  map.total_videos = 5;
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsShotOwnedTwice) {
  ShardMap map = TwoShardMap();
  map.shards[1].shot_to_global[0] = 0;  // already owned by shard 0
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsUnownedShot) {
  ShardMap map = TwoShardMap();
  map.total_shots = 7;  // shot 6 exists but nobody owns it
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, RejectsOutOfRangeShot) {
  ShardMap map = TwoShardMap();
  map.shards[1].shot_to_global[0] = 6;
  EXPECT_FALSE(ValidateShardMap(map).ok());
}

TEST(ShardMapTest, SerializeRoundTrips) {
  const ShardMap map = TwoShardMap();
  const std::string blob = SerializeShardMap(map);
  StatusOr<ShardMap> restored = DeserializeShardMap(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->total_videos, map.total_videos);
  EXPECT_EQ(restored->total_shots, map.total_shots);
  ASSERT_EQ(restored->shards.size(), map.shards.size());
  for (size_t s = 0; s < map.shards.size(); ++s) {
    EXPECT_EQ(restored->shards[s].endpoint, map.shards[s].endpoint);
    EXPECT_EQ(restored->shards[s].video_begin, map.shards[s].video_begin);
    EXPECT_EQ(restored->shards[s].video_end, map.shards[s].video_end);
    EXPECT_EQ(restored->shards[s].shot_to_global,
              map.shards[s].shot_to_global);
  }
}

TEST(ShardMapTest, V2RoundTripsReplicasAndEpoch) {
  ShardMap map = TwoShardMap();
  map.epoch = 42;
  map.shards[0].replica_endpoints = {"127.0.0.1:9101", "127.0.0.1:9201"};
  map.shards[1].replica_endpoints = {"127.0.0.1:9102"};
  const std::string blob = SerializeShardMap(map);
  StatusOr<ShardMap> restored = DeserializeShardMap(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->epoch, 42u);
  ASSERT_EQ(restored->shards.size(), 2u);
  EXPECT_EQ(restored->shards[0].replica_endpoints,
            map.shards[0].replica_endpoints);
  EXPECT_EQ(restored->shards[1].replica_endpoints,
            map.shards[1].replica_endpoints);
  EXPECT_EQ(restored->shards[0].all_endpoints(),
            (std::vector<std::string>{"127.0.0.1:9001", "127.0.0.1:9101",
                                      "127.0.0.1:9201"}));
}

TEST(ShardMapTest, V1BlobLoadsWithoutReplicasOrEpoch) {
  // A map written by the previous release (v1 layout) must still load:
  // replicas empty, epoch 0 — exactly the pre-replication semantics.
  ShardMap map = TwoShardMap();
  map.epoch = 42;
  map.shards[0].replica_endpoints = {"127.0.0.1:9101"};
  const std::string blob = SerializeShardMap(map, /*version=*/1);
  StatusOr<ShardMap> restored = DeserializeShardMap(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->epoch, 0u);
  for (const ShardMapEntry& entry : restored->shards) {
    EXPECT_TRUE(entry.replica_endpoints.empty());
  }
  // Everything v1 carried survives the downgrade.
  EXPECT_EQ(restored->shards[0].endpoint, map.shards[0].endpoint);
  EXPECT_EQ(restored->shards[1].shot_to_global,
            map.shards[1].shot_to_global);
}

TEST(ShardMapTest, V2BlobRejectsCorruptionInTheReplicaSection) {
  ShardMap map = TwoShardMap();
  map.epoch = 7;
  map.shards[0].replica_endpoints = {"127.0.0.1:9101"};
  std::string blob = SerializeShardMap(map);
  // Flip a byte near the end, where the v2 additions live.
  blob[blob.size() - 5] ^= 0x10;
  EXPECT_FALSE(DeserializeShardMap(blob).ok());
}

TEST(ShardMapTest, DeserializeRejectsCorruption) {
  std::string blob = SerializeShardMap(TwoShardMap());
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_FALSE(DeserializeShardMap(blob).ok());
}

TEST(ShardMapTest, DeserializeRejectsTruncation) {
  const std::string blob = SerializeShardMap(TwoShardMap());
  EXPECT_FALSE(DeserializeShardMap(
                   std::string_view(blob).substr(0, blob.size() - 3))
                   .ok());
}

TEST(ShardMapTest, FileRoundTrip) {
  const ShardMap map = TwoShardMap();
  const std::string path = TempPath("shard_map_test.map");
  ASSERT_TRUE(SaveShardMap(map, path).ok());
  StatusOr<ShardMap> restored = LoadShardMap(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->shards.size(), 2u);
  EXPECT_EQ(restored->shards[1].shot_to_global, map.shards[1].shot_to_global);
}

TEST(ShardMapTest, FromPartitionCoversCatalog) {
  StatusOr<VideoDatabase> db = VideoDatabase::Create(SmallSoccerCatalog());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  StatusOr<std::vector<CatalogShard>> shards =
      PartitionForServing(db->catalog(), db->model(), 2);
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  const ShardMap map = ShardMapFromPartition(*shards, db->catalog());
  EXPECT_TRUE(ValidateShardMap(map).ok());
  EXPECT_EQ(map.total_videos, 2);
  EXPECT_EQ(static_cast<size_t>(map.total_shots),
            db->catalog().num_shots());
  ASSERT_EQ(map.shards.size(), 2u);
  EXPECT_TRUE(map.shards[0].endpoint.empty());
  EXPECT_EQ(map.shards[0].video_begin, 0);
  EXPECT_EQ(map.shards[0].video_end, 1);
  EXPECT_EQ(map.shards[1].video_begin, 1);
  EXPECT_EQ(map.shards[1].video_end, 2);
}

}  // namespace
}  // namespace hmmm
