#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace hmmm {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingCompiles) {
  // Below-threshold messages are swallowed; the statement must still
  // evaluate its operands exactly once.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  HMMM_LOG(Debug) << "value " << ++evaluations;
  HMMM_LOG(Info) << "value " << ++evaluations;
  EXPECT_EQ(evaluations, 2);
  SetLogLevel(original);
}

TEST(LoggingTest, SinkCapturesEmittedLines) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  HMMM_LOG(Warning) << "captured line";
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  EXPECT_NE(captured[0].second.find("captured line"), std::string::npos);
  // The formatted line carries the severity tag and source location.
  EXPECT_NE(captured[0].second.find("W"), std::string::npos);
  SetLogSink(nullptr);
  SetLogLevel(original);
}

TEST(LoggingTest, SinkHonorsTheLevelFilter) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int emissions = 0;
  SetLogSink([&emissions](LogLevel, const std::string&) { ++emissions; });
  HMMM_LOG(Debug) << "filtered";
  HMMM_LOG(Info) << "filtered";
  HMMM_LOG(Error) << "emitted";
  EXPECT_EQ(emissions, 1);
  SetLogSink(nullptr);
  SetLogLevel(original);
}

TEST(LoggingTest, NullSinkRestoresDefaultWithoutCrashing) {
  SetLogSink(nullptr);
  HMMM_LOG(Error) << "back to stderr";
  SUCCEED();
}

TEST(LoggingTest, ConcurrentLoggingThroughASinkIsSerialized) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  int emissions = 0;  // unsynchronized on purpose: sink calls serialize
  SetLogSink([&emissions](LogLevel, const std::string&) { ++emissions; });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) HMMM_LOG(Info) << "line " << i;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(emissions, kThreads * kPerThread);
  SetLogSink(nullptr);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  HMMM_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ HMMM_CHECK(false) << "boom"; }, "check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ HMMM_LOG(Fatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace hmmm
