#include "common/logging.h"

#include <gtest/gtest.h>

namespace hmmm {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingCompiles) {
  // Below-threshold messages are swallowed; the statement must still
  // evaluate its operands exactly once.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  HMMM_LOG(Debug) << "value " << ++evaluations;
  HMMM_LOG(Info) << "value " << ++evaluations;
  EXPECT_EQ(evaluations, 2);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  HMMM_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ HMMM_CHECK(false) << "boom"; }, "check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ HMMM_LOG(Fatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace hmmm
