#include "core/affinity.h"

#include <gtest/gtest.h>

namespace hmmm {
namespace {

TEST(InitialShotAffinityTest, PaperWorkedExample) {
  // Section 4.2.1.1: shots "Free Kick" (NE=1), "Free Kick"+"Goal" (NE=2),
  // "Corner Kick" (NE=1) give:
  //   A1(1,2)=2/3, A1(1,3)=1/3, A1(2,2)=1/2, A1(2,3)=1/2, A1(3,3)=1.
  auto a1 = InitialShotAffinity({1, 2, 1});
  ASSERT_TRUE(a1.ok());
  EXPECT_DOUBLE_EQ(a1->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a1->at(0, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(a1->at(0, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a1->at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a1->at(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(a1->at(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(a1->at(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(a1->at(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(a1->at(2, 2), 1.0);
}

TEST(InitialShotAffinityTest, AlwaysRowStochasticUpperTriangular) {
  for (const auto& counts : std::vector<std::vector<int>>{
           {1}, {1, 1}, {3, 1, 2, 5}, {2, 2, 2, 2, 2, 2}, {7}}) {
    auto a1 = InitialShotAffinity(counts);
    ASSERT_TRUE(a1.ok());
    EXPECT_TRUE(a1->IsRowStochastic(1e-12)) << a1->ToString();
    for (size_t i = 0; i < a1->rows(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        EXPECT_DOUBLE_EQ(a1->at(i, j), 0.0);
      }
    }
  }
}

TEST(InitialShotAffinityTest, SingleShotIsAbsorbing) {
  auto a1 = InitialShotAffinity({3});
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->rows(), 1u);
  EXPECT_DOUBLE_EQ(a1->at(0, 0), 1.0);
}

TEST(InitialShotAffinityTest, EmptyAndInvalidInputs) {
  auto empty = InitialShotAffinity({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->rows(), 0u);
  EXPECT_FALSE(InitialShotAffinity({1, 0, 1}).ok());
  EXPECT_FALSE(InitialShotAffinity({-1}).ok());
}

TEST(InitialShotAffinityTest, HigherCountsAttractMoreMass) {
  // A shot with more annotations receives a proportionally larger
  // incoming transition probability.
  auto a1 = InitialShotAffinity({1, 3, 1});
  ASSERT_TRUE(a1.ok());
  EXPECT_DOUBLE_EQ(a1->at(0, 1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(a1->at(0, 2), 1.0 / 4.0);
}

TEST(AccumulateShotAffinityTest, Equation1CoAccess) {
  // Prior: the paper example matrix. One positive pattern hits shots
  // {0, 2} with access frequency 2.
  auto prior = *InitialShotAffinity({1, 2, 1});
  std::vector<AccessPattern> patterns = {{{0, 2}, 2.0}};
  auto af1 = AccumulateShotAffinity(prior, patterns);
  ASSERT_TRUE(af1.ok());
  // aff1(0,2) = A1(0,2) * 2 = (1/3)*2; aff1(0,0) = A1(0,0)*2 = 0.
  EXPECT_DOUBLE_EQ(af1->at(0, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(af1->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(af1->at(0, 1), 0.0);  // shot 1 not in pattern
  EXPECT_DOUBLE_EQ(af1->at(2, 2), 2.0);  // self co-access * A1(2,2)=1
  // Temporal restriction: no mass below the diagonal.
  EXPECT_DOUBLE_EQ(af1->at(2, 0), 0.0);
}

TEST(AccumulateShotAffinityTest, DuplicateStatesCountOnce) {
  auto prior = *InitialShotAffinity({1, 1});
  std::vector<AccessPattern> patterns = {{{0, 0, 1}, 1.0}};
  auto af1 = AccumulateShotAffinity(prior, patterns);
  ASSERT_TRUE(af1.ok());
  // use() is an indicator: duplicate 0 must not double count.
  EXPECT_DOUBLE_EQ(af1->at(0, 1), prior.at(0, 1) * 1.0);
}

TEST(AccumulateShotAffinityTest, ValidatesInputs) {
  auto prior = *InitialShotAffinity({1, 1});
  EXPECT_FALSE(AccumulateShotAffinity(Matrix(2, 3), {}).ok());
  EXPECT_FALSE(AccumulateShotAffinity(prior, {{{5}, 1.0}}).ok());
  EXPECT_FALSE(AccumulateShotAffinity(prior, {{{0}, -1.0}}).ok());
}

TEST(NormalizeAffinityTest, Equation2RowNormalization) {
  auto accumulated = *Matrix::FromRows({{2.0, 6.0}, {0.0, 0.0}});
  auto prior = *Matrix::FromRows({{0.5, 0.5}, {0.1, 0.9}});
  const Matrix a1 = NormalizeAffinity(accumulated, prior);
  EXPECT_DOUBLE_EQ(a1.at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(a1.at(0, 1), 0.75);
  // Zero row keeps the prior distribution.
  EXPECT_DOUBLE_EQ(a1.at(1, 0), 0.1);
  EXPECT_DOUBLE_EQ(a1.at(1, 1), 0.9);
  EXPECT_TRUE(a1.IsRowStochastic(1e-12));
}

TEST(AccumulateVideoAffinityTest, Equation5SymmetricCoAccess) {
  std::vector<AccessPattern> patterns = {{{0, 2}, 3.0}, {{1}, 1.0}};
  auto af2 = AccumulateVideoAffinity(3, patterns);
  ASSERT_TRUE(af2.ok());
  // Videos 0 and 2 co-accessed 3 times, in both directions (no temporal
  // restriction at the video level).
  EXPECT_DOUBLE_EQ(af2->at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(af2->at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(af2->at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(af2->at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(af2->at(0, 1), 0.0);
}

TEST(AccumulateVideoAffinityTest, ValidatesStates) {
  EXPECT_FALSE(AccumulateVideoAffinity(2, {{{3}, 1.0}}).ok());
}

TEST(DistributionFromPatternsTest, InitialStateSemantics) {
  std::vector<AccessPattern> patterns = {{{1, 2}, 2.0}, {{0, 2}, 1.0}};
  const std::vector<double> fallback = {0.25, 0.25, 0.25, 0.25};
  const auto pi = DistributionFromPatterns(
      4, patterns, PiSemantics::kInitialStateCounts, fallback);
  // Pattern starts: state 1 with weight 2, state 0 with weight 1.
  EXPECT_DOUBLE_EQ(pi[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(pi[1], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pi[2], 0.0);
}

TEST(DistributionFromPatternsTest, LiteralEquation4Semantics) {
  std::vector<AccessPattern> patterns = {{{1, 2}, 2.0}, {{0, 2}, 1.0}};
  const std::vector<double> fallback = {0.25, 0.25, 0.25, 0.25};
  const auto pi = DistributionFromPatterns(
      4, patterns, PiSemantics::kLiteralEquation4, fallback);
  // All uses count: state 1: 2; state 2: 2+1; state 0: 1; total 6.
  EXPECT_DOUBLE_EQ(pi[0], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(pi[1], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(pi[2], 3.0 / 6.0);
}

TEST(DistributionFromPatternsTest, NoDataFallsBack) {
  const std::vector<double> fallback = {0.5, 0.5};
  EXPECT_EQ(DistributionFromPatterns(2, {}, PiSemantics::kInitialStateCounts,
                                     fallback),
            fallback);
}

}  // namespace
}  // namespace hmmm
