#include "server/wire_protocol.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/status.h"

namespace hmmm {
namespace {

RetrievedPattern MakePattern(double score) {
  RetrievedPattern pattern;
  pattern.shots = {3, 17, 42};
  pattern.edge_weights = {0.25, score};
  pattern.score = score;
  pattern.video = 7;
  pattern.crosses_videos = true;
  return pattern;
}

// -- Framing --------------------------------------------------------------

TEST(FrameTest, HeaderRoundTrips) {
  const std::string frame =
      EncodeFrame(MessageType::kTemporalQueryRequest, "payload");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 7);
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kNone);
  EXPECT_EQ(header.version, kWireProtocolVersion);
  EXPECT_EQ(header.type, MessageType::kTemporalQueryRequest);
  EXPECT_EQ(header.payload_bytes, 7u);
  EXPECT_EQ(VerifyFramePayload(header, frame.substr(kFrameHeaderBytes)),
            WireError::kNone);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::string frame = EncodeFrame(MessageType::kHealthRequest, "");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kNone);
  EXPECT_EQ(header.payload_bytes, 0u);
  EXPECT_EQ(VerifyFramePayload(header, ""), WireError::kNone);
}

// The corrupt-frame corpus: every malformed input must produce a typed
// wire error, never a crash or an accepted frame.

TEST(CorruptFrameTest, BadMagic) {
  std::string frame = EncodeFrame(MessageType::kHealthRequest, "");
  frame[0] = 'X';
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kBadMagic);
}

TEST(CorruptFrameTest, AllZeroHeader) {
  const std::string frame(kFrameHeaderBytes, '\0');
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kBadMagic);
}

TEST(CorruptFrameTest, UnsupportedVersionStillYieldsType) {
  std::string frame = EncodeFrame(MessageType::kTemporalQueryRequest, "x");
  frame[4] = 99;  // version low byte
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kUnsupportedVersion);
  // The frozen header layout means we can still see what was asked even
  // when we do not speak the version (needed to answer the error).
  EXPECT_EQ(header.payload_bytes, 1u);
}

TEST(CorruptFrameTest, OversizedLength) {
  std::string frame = EncodeFrame(MessageType::kTemporalQueryRequest, "x");
  // Rewrite the payload-size field (offset 8, little-endian u32) to 2 GiB.
  frame[8] = 0;
  frame[9] = 0;
  frame[10] = 0;
  frame[11] = static_cast<char>(0x80);
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kFrameTooLarge);
}

TEST(CorruptFrameTest, BadCrc) {
  const std::string frame = EncodeFrame(MessageType::kQbeRequest, "payload");
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kNone);
  std::string payload = frame.substr(kFrameHeaderBytes);
  payload[0] ^= 0x40;
  EXPECT_EQ(VerifyFramePayload(header, payload), WireError::kBadCrc);
}

TEST(CorruptFrameTest, TruncatedPayload) {
  const std::string frame = EncodeFrame(MessageType::kQbeRequest, "payload");
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kNone);
  const std::string truncated = frame.substr(kFrameHeaderBytes, 3);
  EXPECT_EQ(VerifyFramePayload(header, truncated),
            WireError::kMalformedPayload);
}

TEST(CorruptFrameTest, TruncatedPayloadCodecs) {
  // Chop a valid payload at every prefix length: decoders must error,
  // not crash or read out of bounds.
  TemporalQueryResponse response;
  response.results = {MakePattern(0.5), MakePattern(0.25)};
  response.degraded = true;
  response.videos_skipped = 3;
  const std::string payload = EncodeTemporalQueryResponse(response);
  for (size_t n = 0; n < payload.size(); ++n) {
    EXPECT_FALSE(DecodeTemporalQueryResponse(payload.substr(0, n)).ok())
        << "prefix length " << n << " decoded successfully";
  }
}

TEST(CorruptFrameTest, HostileElementCountRejected) {
  // A hand-built payload claiming 2^31 results must be rejected by the
  // element-count guard instead of driving a giant allocation.
  std::string payload;
  const uint32_t hostile = 0x7FFFFFFFu;
  payload.push_back(static_cast<char>(hostile & 0xFF));
  payload.push_back(static_cast<char>((hostile >> 8) & 0xFF));
  payload.push_back(static_cast<char>((hostile >> 16) & 0xFF));
  payload.push_back(static_cast<char>((hostile >> 24) & 0xFF));
  EXPECT_FALSE(DecodeTemporalQueryResponse(payload).ok());
  EXPECT_FALSE(DecodeQbeResponse(payload).ok());
}

// -- Error-code mapping ---------------------------------------------------

TEST(WireErrorTest, StatusCodesRoundTrip) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::OutOfRange("c"),      Status::FailedPrecondition("d"),
      Status::AlreadyExists("e"),   Status::DataLoss("f"),
      Status::Internal("g"),        Status::Unimplemented("h"),
      Status::IOError("i"),         Status::ResourceExhausted("j"),
  };
  for (const Status& status : statuses) {
    const WireError code = WireErrorFromStatus(status);
    const Status back = StatusFromWireError(code, status.message());
    EXPECT_EQ(back.code(), status.code()) << status.ToString();
    EXPECT_EQ(back.message(), status.message());
  }
}

TEST(WireErrorTest, WireLayerCodesMapToClientStatuses) {
  EXPECT_EQ(StatusFromWireError(WireError::kBadMagic, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromWireError(WireError::kBadCrc, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromWireError(WireError::kFrameTooLarge, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromWireError(WireError::kMalformedPayload, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromWireError(WireError::kUnknownMessageType, "m").code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(StatusFromWireError(WireError::kUnsupportedVersion, "m").code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(StatusFromWireError(WireError::kSuperseded, "m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusFromWireError(WireError::kShuttingDown, "m").code(),
            StatusCode::kResourceExhausted);
  // An unknown future code degrades to kInternal instead of crashing.
  EXPECT_EQ(StatusFromWireError(static_cast<WireError>(9999), "m").code(),
            StatusCode::kInternal);
}

TEST(WireErrorTest, OnlyRefusalsAreRetriable) {
  EXPECT_TRUE(WireErrorRetriable(WireError::kResourceExhausted));
  EXPECT_TRUE(WireErrorRetriable(WireError::kShuttingDown));
  EXPECT_FALSE(WireErrorRetriable(WireError::kInvalidArgument));
  EXPECT_FALSE(WireErrorRetriable(WireError::kBadCrc));
  EXPECT_FALSE(WireErrorRetriable(WireError::kSuperseded));
  EXPECT_FALSE(WireErrorRetriable(WireError::kInternal));
}

// -- Payload codecs -------------------------------------------------------

TEST(CodecTest, TemporalQueryRequestRoundTrips) {
  TemporalQueryRequest request;
  request.text = "free_kick & goal ; corner_kick";
  request.budget_ms = 1500;
  request.cancel_generation = 42;
  request.want_stats = true;
  request.want_trace = true;
  const auto decoded =
      DecodeTemporalQueryRequest(EncodeTemporalQueryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->text, request.text);
  EXPECT_EQ(decoded->budget_ms, 1500);
  EXPECT_EQ(decoded->cancel_generation, 42u);
  EXPECT_TRUE(decoded->want_stats);
  EXPECT_TRUE(decoded->want_trace);
}

TEST(CodecTest, TemporalQueryResponseBitExact) {
  TemporalQueryResponse response;
  RetrievedPattern pattern = MakePattern(0.123456789012345);
  // A score with no short decimal representation: doubles travel as raw
  // IEEE-754 bits, so the decode must be bit-exact, not just close.
  pattern.score = 0x1.fffffffffffffp-3;
  pattern.edge_weights = {0x1.0000000000001p0,
                          std::numeric_limits<double>::denorm_min()};
  response.results = {pattern, MakePattern(0.5)};
  response.degraded = true;
  response.videos_skipped = 9;
  response.has_stats = true;
  response.stats.states_visited = 1234;
  response.stats.sim_evaluations = 567;
  response.stats.truncated = true;
  response.stats.degraded = true;
  response.stats.videos_skipped = 9;
  response.trace_jsonl = "{\"span\":\"traversal\"}\n";

  const auto decoded =
      DecodeTemporalQueryResponse(EncodeTemporalQueryResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->results.size(), 2u);
  EXPECT_EQ(decoded->results[0].shots, pattern.shots);
  EXPECT_EQ(decoded->results[0].video, pattern.video);
  EXPECT_TRUE(decoded->results[0].crosses_videos);
  // Bit-exact doubles.
  EXPECT_EQ(decoded->results[0].score, pattern.score);
  ASSERT_EQ(decoded->results[0].edge_weights.size(), 2u);
  EXPECT_EQ(decoded->results[0].edge_weights[1],
            std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(decoded->degraded);
  EXPECT_EQ(decoded->videos_skipped, 9u);
  ASSERT_TRUE(decoded->has_stats);
  EXPECT_EQ(decoded->stats.states_visited, 1234u);
  EXPECT_EQ(decoded->stats.sim_evaluations, 567u);
  EXPECT_TRUE(decoded->stats.truncated);
  EXPECT_TRUE(decoded->stats.degraded);
  EXPECT_EQ(decoded->stats.videos_skipped, 9u);
  EXPECT_EQ(decoded->trace_jsonl, response.trace_jsonl);
}

TEST(CodecTest, QbeRoundTrips) {
  QbeRequest request;
  request.features = {0.1, 0.9, 0.5};
  request.max_results = 7;
  const auto decoded_request = DecodeQbeRequest(EncodeQbeRequest(request));
  ASSERT_TRUE(decoded_request.ok());
  EXPECT_EQ(decoded_request->features, request.features);
  EXPECT_EQ(decoded_request->max_results, 7);

  QbeResponse response;
  response.results = {{11, 0.75}, {3, 0.5}};
  const auto decoded = DecodeQbeResponse(EncodeQbeResponse(response));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->results.size(), 2u);
  EXPECT_EQ(decoded->results[0].shot, 11);
  EXPECT_EQ(decoded->results[0].similarity, 0.75);
}

TEST(CodecTest, MarkPositiveTrainMetricsHealthRoundTrip) {
  MarkPositiveRequest mark;
  mark.pattern = MakePattern(0.5);
  const auto decoded_mark =
      DecodeMarkPositiveRequest(EncodeMarkPositiveRequest(mark));
  ASSERT_TRUE(decoded_mark.ok());
  EXPECT_EQ(decoded_mark->pattern.shots, mark.pattern.shots);

  const auto decoded_mark_response =
      DecodeMarkPositiveResponse(EncodeMarkPositiveResponse({17}));
  ASSERT_TRUE(decoded_mark_response.ok());
  EXPECT_EQ(decoded_mark_response->training_rounds, 17u);

  const auto decoded_train = DecodeTrainResponse(EncodeTrainResponse(
      {/*trained=*/true, /*training_rounds=*/4}));
  ASSERT_TRUE(decoded_train.ok());
  EXPECT_TRUE(decoded_train->trained);
  EXPECT_EQ(decoded_train->training_rounds, 4u);

  MetricsResponse metrics_response;
  metrics_response.prometheus_text = "# HELP x\nx 1\n";
  const auto decoded_metrics =
      DecodeMetricsResponse(EncodeMetricsResponse(metrics_response));
  ASSERT_TRUE(decoded_metrics.ok());
  EXPECT_EQ(decoded_metrics->prometheus_text, "# HELP x\nx 1\n");

  HealthResponse health;
  health.videos = 54;
  health.shots = 11567;
  health.annotated_shots = 506;
  health.model_version = 3;
  health.draining = true;
  const auto decoded_health =
      DecodeHealthResponse(EncodeHealthResponse(health));
  ASSERT_TRUE(decoded_health.ok());
  EXPECT_EQ(decoded_health->videos, 54u);
  EXPECT_EQ(decoded_health->shots, 11567u);
  EXPECT_EQ(decoded_health->annotated_shots, 506u);
  EXPECT_EQ(decoded_health->model_version, 3u);
  EXPECT_TRUE(decoded_health->draining);
}

TEST(CodecTest, ErrorResponseRoundTrips) {
  ErrorResponse error;
  error.code = WireError::kResourceExhausted;
  error.retriable = true;
  error.message = "retrieval admission queue full (load shed)";
  const auto decoded = DecodeErrorResponse(EncodeErrorResponse(error));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, WireError::kResourceExhausted);
  EXPECT_TRUE(decoded->retriable);
  EXPECT_EQ(decoded->message, error.message);
}

// -- v2 trace fields and mixed-version codecs -----------------------------

TEST(CodecV2Test, TraceContextFieldsRoundTrip) {
  TemporalQueryRequest request;
  request.text = "goal";
  request.want_trace = true;
  request.trace_id_hi = 0x0123456789ABCDEFull;
  request.trace_id_lo = 0xFEDCBA9876543210ull;
  request.parent_span_id = 7;
  const auto decoded =
      DecodeTemporalQueryRequest(EncodeTemporalQueryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id_hi, request.trace_id_hi);
  EXPECT_EQ(decoded->trace_id_lo, request.trace_id_lo);
  EXPECT_EQ(decoded->parent_span_id, 7u);

  QbeRequest qbe;
  qbe.features = {0.5};
  qbe.want_trace = true;
  qbe.trace_id_hi = 1;
  qbe.trace_id_lo = 2;
  qbe.parent_span_id = 3;
  const auto decoded_qbe = DecodeQbeRequest(EncodeQbeRequest(qbe));
  ASSERT_TRUE(decoded_qbe.ok());
  EXPECT_TRUE(decoded_qbe->want_trace);
  EXPECT_EQ(decoded_qbe->trace_id_hi, 1u);
  EXPECT_EQ(decoded_qbe->trace_id_lo, 2u);
  EXPECT_EQ(decoded_qbe->parent_span_id, 3u);

  TemporalQueryResponse response;
  response.results = {MakePattern(0.5)};
  response.trace_blob = std::string("\x01\x02\x00", 3);
  const auto decoded_response =
      DecodeTemporalQueryResponse(EncodeTemporalQueryResponse(response));
  ASSERT_TRUE(decoded_response.ok());
  EXPECT_EQ(decoded_response->trace_blob, response.trace_blob);

  QbeResponse qbe_response;
  qbe_response.results = {{11, 0.75}};
  qbe_response.trace_blob = "blob";
  const auto decoded_qbe_response =
      DecodeQbeResponse(EncodeQbeResponse(qbe_response));
  ASSERT_TRUE(decoded_qbe_response.ok());
  EXPECT_EQ(decoded_qbe_response->trace_blob, "blob");

  MetricsResponse metrics;
  metrics.prometheus_text = "x 1\n";
  metrics.json_snapshot = "{\"v\":1,\"metrics\":[]}";
  const auto decoded_metrics =
      DecodeMetricsResponse(EncodeMetricsResponse(metrics));
  ASSERT_TRUE(decoded_metrics.ok());
  EXPECT_EQ(decoded_metrics->json_snapshot, metrics.json_snapshot);

  DumpSlowQueriesResponse slow;
  slow.jsonl = "{\"reason\":\"slow\"}\n";
  const auto decoded_slow =
      DecodeDumpSlowQueriesResponse(EncodeDumpSlowQueriesResponse(slow));
  ASSERT_TRUE(decoded_slow.ok());
  EXPECT_EQ(decoded_slow->jsonl, slow.jsonl);
}

TEST(CodecV2Test, V1EncodingOmitsTraceFields) {
  // Encoding at v1 must stop before the v2 fields — byte-compatible with
  // an old peer — and decoding those bytes at v1 leaves them defaulted.
  TemporalQueryRequest request;
  request.text = "goal";
  request.trace_id_hi = 99;
  request.trace_id_lo = 98;
  request.parent_span_id = 97;
  const std::string v1 = EncodeTemporalQueryRequest(request, 1);
  const std::string v2 = EncodeTemporalQueryRequest(request, 2);
  EXPECT_LT(v1.size(), v2.size());
  const auto decoded = DecodeTemporalQueryRequest(v1, 1);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->text, "goal");
  EXPECT_EQ(decoded->trace_id_hi, 0u);
  EXPECT_EQ(decoded->trace_id_lo, 0u);
  EXPECT_EQ(decoded->parent_span_id, 0u);
  // A v2 decode of v1 bytes fails (truncated), and vice versa a v1
  // decode of v2 bytes fails (trailing bytes) — versions don't blur.
  EXPECT_FALSE(DecodeTemporalQueryRequest(v1, 2).ok());

  TemporalQueryResponse response;
  response.results = {MakePattern(0.5)};
  response.trace_blob = "blob";
  const std::string resp_v1 = EncodeTemporalQueryResponse(response, 1);
  const auto decoded_resp = DecodeTemporalQueryResponse(resp_v1, 1);
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_TRUE(decoded_resp->trace_blob.empty());
}

TEST(CodecV2Test, TruncatedV2PayloadsRejected) {
  TemporalQueryRequest request;
  request.text = "corner_kick then goal";
  request.want_trace = true;
  request.trace_id_hi = ~0ull;
  request.trace_id_lo = 1;
  request.parent_span_id = 12345;
  const std::string payload = EncodeTemporalQueryRequest(request);
  for (size_t n = 0; n < payload.size(); ++n) {
    EXPECT_FALSE(DecodeTemporalQueryRequest(payload.substr(0, n)).ok())
        << "prefix length " << n << " decoded successfully";
  }
  QbeRequest qbe;
  qbe.features = {0.25, 0.5};
  qbe.want_trace = true;
  qbe.trace_id_lo = 2;
  const std::string qbe_payload = EncodeQbeRequest(qbe);
  for (size_t n = 0; n < qbe_payload.size(); ++n) {
    EXPECT_FALSE(DecodeQbeRequest(qbe_payload.substr(0, n)).ok())
        << "prefix length " << n << " decoded successfully";
  }
}

TEST(CodecV2Test, FrameVersionParameterIsStamped) {
  const std::string frame =
      EncodeFrame(MessageType::kHealthRequest, "", 1);
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(frame, kDefaultMaxFrameBytes, &header),
            WireError::kNone);
  EXPECT_EQ(header.version, 1u);
  // A v1-capped decoder (an old server) rejects a v2-stamped frame but
  // still fills the header so it can answer typed.
  const std::string v2_frame =
      EncodeFrame(MessageType::kTemporalQueryRequest, "x", 2);
  EXPECT_EQ(DecodeFrameHeader(v2_frame, kDefaultMaxFrameBytes, &header,
                              /*max_version=*/1),
            WireError::kUnsupportedVersion);
  EXPECT_EQ(header.type, MessageType::kTemporalQueryRequest);
  EXPECT_EQ(header.payload_bytes, 1u);
}

TEST(MessageTypeTest, DumpSlowQueriesIsARequest) {
  EXPECT_TRUE(IsRequestType(MessageType::kDumpSlowQueriesRequest));
  EXPECT_FALSE(IsRequestType(MessageType::kDumpSlowQueriesResponse));
  EXPECT_STREQ(MessageTypeLabel(MessageType::kDumpSlowQueriesRequest),
               "dump_slow_queries");
}

TEST(MessageTypeTest, RequestClassification) {
  EXPECT_TRUE(IsRequestType(MessageType::kHealthRequest));
  EXPECT_TRUE(IsRequestType(MessageType::kTemporalQueryRequest));
  EXPECT_TRUE(IsRequestType(MessageType::kMetricsRequest));
  EXPECT_FALSE(IsRequestType(MessageType::kHealthResponse));
  EXPECT_FALSE(IsRequestType(MessageType::kErrorResponse));
  EXPECT_FALSE(IsRequestType(static_cast<MessageType>(77)));
}

}  // namespace
}  // namespace hmmm
