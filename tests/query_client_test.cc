#include "client/query_client.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/logging.h"
#include "common/socket.h"
#include "server/wire_protocol.h"

namespace hmmm {
namespace {

// A scripted single-connection server: accepts connections one at a time
// and answers each received frame through `script` (invocation count is
// passed so tests can fail-then-succeed). Lets the client's retry policy
// be tested without a real QueryServer.
class FakeServer {
 public:
  using Script = std::function<std::string(int call, MessageType type,
                                           const std::string& payload)>;

  explicit FakeServer(Script script) : script_(std::move(script)) {
    auto listener = TcpListen("127.0.0.1", 0);
    HMMM_CHECK(listener.ok());
    listener_ = std::move(listener).value();
    auto port = LocalPort(listener_);
    HMMM_CHECK(port.ok());
    port_ = port.value();
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeServer() {
    stop_.store(true);
    // Unblock a pending accept by connecting once.
    auto poke = TcpConnect("127.0.0.1", port_, std::chrono::milliseconds(500));
    (void)poke;
    thread_.join();
  }

  uint16_t port() const { return port_; }
  int calls() const { return calls_.load(); }

 private:
  void Serve() {
    const auto deadline = [] {
      return DeadlineAfter(std::chrono::milliseconds(5000));
    };
    while (!stop_.load()) {
      auto conn = Accept(listener_);
      if (!conn.ok() || stop_.load()) continue;
      // Serve frames on this connection until the peer leaves or the
      // script asks for a disconnect (empty response).
      for (;;) {
        char header_bytes[kFrameHeaderBytes];
        if (!ReadExact(conn->fd(), header_bytes, kFrameHeaderBytes,
                       deadline())
                 .ok()) {
          break;
        }
        FrameHeader header;
        if (DecodeFrameHeader(std::string_view(header_bytes,
                                               kFrameHeaderBytes),
                              kDefaultMaxFrameBytes,
                              &header) != WireError::kNone) {
          break;
        }
        std::string payload(header.payload_bytes, '\0');
        if (!payload.empty() &&
            !ReadExact(conn->fd(), payload.data(), payload.size(),
                       deadline())
                 .ok()) {
          break;
        }
        const int call = calls_.fetch_add(1);
        const std::string response = script_(call, header.type, payload);
        if (response.empty()) break;  // scripted disconnect
        if (!WriteAll(conn->fd(), response, deadline()).ok()) break;
      }
    }
  }

  Script script_;
  Socket listener_;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> calls_{0};
};

QueryClientOptions FastRetryOptions(uint16_t port, int max_retries = 3) {
  QueryClientOptions options;
  options.port = port;
  options.max_retries = max_retries;
  options.retry_backoff = std::chrono::milliseconds(1);
  options.connect_timeout = std::chrono::milliseconds(1000);
  options.io_timeout = std::chrono::milliseconds(1000);
  return options;
}

std::string HealthFrame() {
  HealthResponse health;
  health.videos = 5;
  return EncodeFrame(MessageType::kHealthResponse,
                     EncodeHealthResponse(health));
}

std::string RetriableErrorFrame(WireError code) {
  ErrorResponse error;
  error.code = code;
  error.retriable = true;
  error.message = "try again";
  return EncodeFrame(MessageType::kErrorResponse,
                     EncodeErrorResponse(error));
}

TEST(QueryClientTest, RetriesTypedRetriableErrorUntilSuccess) {
  FakeServer server([](int call, MessageType, const std::string&) {
    if (call < 2) return RetriableErrorFrame(WireError::kResourceExhausted);
    return HealthFrame();
  });
  QueryClient client(FastRetryOptions(server.port()));
  const auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->videos, 5u);
  EXPECT_EQ(client.retries_performed(), 2u);
  EXPECT_EQ(server.calls(), 3);
}

TEST(QueryClientTest, RetriableTypedErrorRetriesEvenNonIdempotentRequests) {
  // kShuttingDown means the server refused before executing, so even
  // Train (non-idempotent) goes again.
  FakeServer server([](int call, MessageType, const std::string&) {
    if (call == 0) return RetriableErrorFrame(WireError::kShuttingDown);
    return EncodeFrame(MessageType::kTrainResponse,
                       EncodeTrainResponse({true, 1}));
  });
  QueryClient client(FastRetryOptions(server.port()));
  const auto trained = client.Train();
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_EQ(client.retries_performed(), 1u);
}

TEST(QueryClientTest, ExhaustedRetryBudgetSurfacesTheError) {
  FakeServer server([](int, MessageType, const std::string&) {
    return RetriableErrorFrame(WireError::kResourceExhausted);
  });
  QueryClient client(FastRetryOptions(server.port(), /*max_retries=*/2));
  const auto health = client.Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.retries_performed(), 2u);
  EXPECT_EQ(server.calls(), 3);  // initial attempt + 2 retries
}

TEST(QueryClientTest, NonRetriableTypedErrorIsNotRetried) {
  FakeServer server([](int, MessageType, const std::string&) {
    ErrorResponse error;
    error.code = WireError::kInvalidArgument;
    error.retriable = false;
    error.message = "unknown event name";
    return EncodeFrame(MessageType::kErrorResponse,
                       EncodeErrorResponse(error));
  });
  QueryClient client(FastRetryOptions(server.port()));
  TemporalQueryRequest request;
  request.text = "nonsense";
  const auto response = client.TemporalQuery(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response.status().message(), "unknown event name");
  EXPECT_EQ(client.retries_performed(), 0u);
  EXPECT_EQ(server.calls(), 1);
}

TEST(QueryClientTest, TransportFailureRetriesIdempotentRequests) {
  // First connection is dropped mid-exchange (scripted disconnect);
  // Health is idempotent so the client reconnects and retries.
  FakeServer server([](int call, MessageType, const std::string&) {
    if (call == 0) return std::string();  // disconnect without answering
    return HealthFrame();
  });
  QueryClient client(FastRetryOptions(server.port()));
  const auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(client.retries_performed(), 1u);
}

TEST(QueryClientTest, TransportFailureDoesNotRetryNonIdempotentRequests) {
  // The connection drops after MarkPositive was sent: the server may or
  // may not have applied it, so the client must surface the failure
  // instead of blindly re-sending feedback.
  FakeServer server([](int, MessageType, const std::string&) {
    return std::string();  // always disconnect
  });
  QueryClient client(FastRetryOptions(server.port()));
  MarkPositiveRequest request;
  request.pattern.shots = {1, 2};
  request.pattern.edge_weights = {0.5};
  request.pattern.score = 0.5;
  request.pattern.video = 0;
  const auto response = client.MarkPositive(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(client.retries_performed(), 0u);
  EXPECT_EQ(server.calls(), 1);
}

TEST(QueryClientTest, ConnectFailureIsRetriedThenSurfaced) {
  // Nothing listens on this port (bind+close to reserve then free it).
  uint16_t dead_port;
  {
    auto listener = TcpListen("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = LocalPort(*listener).value();
  }
  QueryClientOptions options = FastRetryOptions(dead_port, /*max_retries=*/2);
  options.connect_timeout = std::chrono::milliseconds(200);
  QueryClient client(options);
  const auto health = client.Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(client.retries_performed(), 2u);
}

TEST(QueryClientTest, GarbageResponseIsDesyncNotRetried) {
  FakeServer server([](int, MessageType, const std::string&) {
    return std::string(kFrameHeaderBytes, 'Z');  // not a frame
  });
  QueryClient client(FastRetryOptions(server.port()));
  const auto health = client.Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.retries_performed(), 0u);
  EXPECT_FALSE(client.connected());  // desync drops the connection
}

TEST(QueryClientTest, MismatchedResponseTypeIsInternalError) {
  FakeServer server([](int, MessageType, const std::string&) {
    return EncodeFrame(MessageType::kTrainResponse,
                       EncodeTrainResponse({true, 1}));
  });
  QueryClient client(FastRetryOptions(server.port()));
  const auto health = client.Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.status().code(), StatusCode::kInternal);
}

TEST(QueryClientTest, SlowServerHitsIoTimeout) {
  // The script never answers Health (sleeps past the client deadline).
  FakeServer server([](int, MessageType, const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return HealthFrame();
  });
  QueryClientOptions options = FastRetryOptions(server.port(),
                                                /*max_retries=*/0);
  options.io_timeout = std::chrono::milliseconds(50);
  QueryClient client(options);
  const auto started = std::chrono::steady_clock::now();
  const auto health = client.Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.status().code(), StatusCode::kIOError);
  EXPECT_LT(std::chrono::steady_clock::now() - started,
            std::chrono::milliseconds(350));
}

TEST(QueryClientTest, NextCancelGenerationIsMonotone) {
  QueryClient client(FastRetryOptions(0));
  EXPECT_EQ(client.NextCancelGeneration(), 1u);
  EXPECT_EQ(client.NextCancelGeneration(), 2u);
  EXPECT_EQ(client.NextCancelGeneration(), 3u);
}

TEST(RetryBackoffTest, DecorrelatedJitterStaysInItsEnvelope) {
  Rng rng(1234);
  const std::chrono::milliseconds base(10);
  const std::chrono::milliseconds cap(200);
  std::chrono::milliseconds prev = base;
  for (int i = 0; i < 2000; ++i) {
    const std::chrono::milliseconds next =
        NextDecorrelatedBackoff(base, cap, prev, rng);
    EXPECT_GE(next, base);
    EXPECT_LE(next, cap);
    EXPECT_LE(next.count(), std::min<int64_t>(cap.count(),
                                              3 * prev.count()));
    prev = next;
  }
}

TEST(RetryBackoffTest, JitterActuallySpreadsAcrossTheRange) {
  // Decorrelation is the whole point: a fleet that failed together must
  // not retry in lockstep. With prev pinned high, successive draws from
  // one stream must take more than a handful of distinct values.
  Rng rng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(NextDecorrelatedBackoff(std::chrono::milliseconds(10),
                                        std::chrono::milliseconds(10000),
                                        std::chrono::milliseconds(300), rng)
                    .count());
  }
  EXPECT_GT(seen.size(), 50u);
}

TEST(RetryBackoffTest, PinnedSeedReplaysTheSameSchedule) {
  const auto draw = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<int64_t> schedule;
    std::chrono::milliseconds prev(10);
    for (int i = 0; i < 16; ++i) {
      prev = NextDecorrelatedBackoff(std::chrono::milliseconds(10),
                                     std::chrono::milliseconds(1000), prev,
                                     rng);
      schedule.push_back(prev.count());
    }
    return schedule;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST(RetryBackoffTest, DeriveRetryJitterSeedDecorrelatesClients) {
  // A configured seed is used verbatim (tests pin schedules); the 0
  // default derives a distinct stream per client.
  EXPECT_EQ(DeriveRetryJitterSeed(42), 42u);
  EXPECT_NE(DeriveRetryJitterSeed(0), DeriveRetryJitterSeed(0));
}

TEST(QueryClientPoolTest, DiscardsStaleConnectionsAtCheckout) {
  StatusOr<Socket> listener = TcpListen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<uint16_t> port = LocalPort(*listener);
  ASSERT_TRUE(port.ok());

  QueryClientOptions options;
  options.port = *port;
  QueryClientPool pool(options, /*max_idle=*/4);
  {
    QueryClientPool::Lease lease = pool.Acquire();
    ASSERT_TRUE(lease->Connect().ok());
    // Accept the connection server-side, then drop it: the pooled
    // client's socket now holds an unread EOF.
    StatusOr<Socket> conn = Accept(*listener);
    ASSERT_TRUE(conn.ok());
  }  // lease returns the (now half-closed) client to the idle pool
  ASSERT_EQ(pool.idle(), 1u);

  // Give the FIN a beat to arrive, then check out: the stale connection
  // must be discarded, not leased into a fan-out.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  QueryClientPool::Lease lease = pool.Acquire();
  EXPECT_FALSE(lease->connected());
  EXPECT_EQ(pool.stale_discarded(), 1u);
  EXPECT_EQ(pool.clients_created(), 2u);
}

TEST(QueryClientPoolTest, HealthyIdleConnectionIsReused) {
  FakeServer server([](int, MessageType, const std::string&) {
    return HealthFrame();
  });
  QueryClientOptions options;
  options.port = server.port();
  QueryClientPool pool(options, /*max_idle=*/4);
  {
    QueryClientPool::Lease lease = pool.Acquire();
    ASSERT_TRUE(lease->Health().ok());
  }
  {
    QueryClientPool::Lease lease = pool.Acquire();
    EXPECT_TRUE(lease->connected());
    ASSERT_TRUE(lease->Health().ok());
  }
  EXPECT_EQ(pool.clients_created(), 1u);
  EXPECT_EQ(pool.stale_discarded(), 0u);
}

}  // namespace
}  // namespace hmmm
