#include "media/audio.h"

#include <gtest/gtest.h>

#include <cmath>

#include "media/video.h"

namespace hmmm {
namespace {

TEST(AudioClipTest, DurationAndAccess) {
  AudioClip clip(8000, std::vector<double>(4000, 0.1));
  EXPECT_EQ(clip.sample_rate(), 8000);
  EXPECT_EQ(clip.size(), 4000u);
  EXPECT_DOUBLE_EQ(clip.duration(), 0.5);
}

TEST(AudioClipTest, EmptyClip) {
  AudioClip clip;
  EXPECT_TRUE(clip.empty());
  EXPECT_DOUBLE_EQ(clip.duration(), 0.0);
}

TEST(AudioClipTest, SliceClipsBounds) {
  std::vector<double> samples(10);
  for (size_t i = 0; i < 10; ++i) samples[i] = static_cast<double>(i);
  AudioClip clip(100, samples);

  const AudioClip mid = clip.Slice(2, 5);
  EXPECT_EQ(mid.samples(), (std::vector<double>{2, 3, 4}));
  EXPECT_EQ(mid.sample_rate(), 100);

  const AudioClip past_end = clip.Slice(8, 50);
  EXPECT_EQ(past_end.samples(), (std::vector<double>{8, 9}));

  EXPECT_TRUE(clip.Slice(5, 5).empty());
  EXPECT_TRUE(clip.Slice(7, 3).empty());
}

TEST(AudioClipTest, AppendConcatenates) {
  AudioClip a(100, {1, 2});
  AudioClip b(100, {3});
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.samples(), (std::vector<double>{1, 2, 3}));
}

TEST(AudioClipTest, AppendRateMismatchRejected) {
  AudioClip a(100, {1});
  AudioClip b(200, {2});
  EXPECT_EQ(a.Append(b).code(), StatusCode::kInvalidArgument);
}

TEST(AudioClipTest, AppendToEmptyAdoptsRate) {
  AudioClip a;
  AudioClip b(200, {2, 3});
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.sample_rate(), 200);
  EXPECT_EQ(a.size(), 2u);
  // Appending an empty clip is a no-op.
  ASSERT_TRUE(a.Append(AudioClip()).ok());
  EXPECT_EQ(a.size(), 2u);
}

TEST(SyntheticVideoTest, AudioForFramesAlignment) {
  SyntheticVideo video;
  video.fps = 25.0;
  video.audio = AudioClip(1000, std::vector<double>(4000, 0.0));  // 4 s
  // 40 samples per frame.
  EXPECT_DOUBLE_EQ(video.samples_per_frame(), 40.0);
  const AudioClip clip = video.AudioForFrames(10, 20);
  EXPECT_EQ(clip.size(), 400u);
}

TEST(SyntheticVideoTest, TrueBoundaries) {
  SyntheticVideo video;
  video.shots = {ShotTruth{0, 10, {}, 0}, ShotTruth{10, 25, {}, 0},
                 ShotTruth{25, 30, {}, 0}};
  EXPECT_EQ(video.TrueBoundaries(), (std::vector<int>{10, 25}));
}

}  // namespace
}  // namespace hmmm
