#include "retrieval/query_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/model_builder.h"
#include "retrieval/engine.h"
#include "test_util.h"

namespace hmmm {
namespace {

// -- DenseBitset ----------------------------------------------------------

TEST(DenseBitsetTest, SetTestCountOverWordBoundaries) {
  DenseBitset bits(130);  // spans three 64-bit words
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.Any());
  for (size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(bits.Test(i));
    bits.Set(i);
    EXPECT_TRUE(bits.Test(i));
  }
  EXPECT_EQ(bits.Count(), 6u);
  EXPECT_TRUE(bits.Any());
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DenseBitsetTest, SetAllClearsTailBitsBeyondSize) {
  DenseBitset bits(70);  // 6 tail bits in the second word must stay clear
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  std::vector<size_t> seen;
  bits.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 70u);
  EXPECT_EQ(seen.front(), 0u);
  EXPECT_EQ(seen.back(), 69u);
}

TEST(DenseBitsetTest, AndOrCombineWordWise) {
  DenseBitset a(100), b(100);
  a.Set(3);
  a.Set(70);
  a.Set(99);
  b.Set(70);
  b.Set(4);
  DenseBitset both = a;
  both.AndWith(b);
  EXPECT_EQ(both.Count(), 1u);
  EXPECT_TRUE(both.Test(70));
  DenseBitset either = a;
  either.OrWith(b);
  EXPECT_EQ(either.Count(), 4u);
  EXPECT_TRUE(either.Test(3));
  EXPECT_TRUE(either.Test(4));
}

TEST(DenseBitsetTest, ForEachSetBitVisitsAscending) {
  DenseBitset bits(200);
  const std::vector<size_t> expected = {1, 63, 64, 65, 130, 199};
  for (size_t i : expected) bits.Set(i);
  std::vector<size_t> seen;
  bits.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

// -- EventBitmapIndex -----------------------------------------------------

class EventBitmapIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/17, /*num_videos=*/10);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(EventBitmapIndexTest, VideoBitsMirrorB2Positivity) {
  const EventBitmapIndex index(model_, catalog_);
  ASSERT_EQ(index.num_videos(), model_.num_videos());
  ASSERT_EQ(index.num_events(), model_.vocabulary().size());
  for (size_t e = 0; e < index.num_events(); ++e) {
    for (size_t v = 0; v < index.num_videos(); ++v) {
      EXPECT_EQ(index.VideoHasEvent(static_cast<VideoId>(v),
                                    static_cast<EventId>(e)),
                model_.b2().at(v, e) > 0.0)
          << "video " << v << " event " << e;
    }
  }
}

TEST_F(EventBitmapIndexTest, AnnotatedStateBitsMirrorTheCatalog) {
  const EventBitmapIndex index(model_, catalog_);
  for (size_t v = 0; v < model_.num_videos(); ++v) {
    const LocalShotModel& local = model_.local(static_cast<VideoId>(v));
    for (size_t e = 0; e < index.num_events(); ++e) {
      const DenseBitset& states =
          index.AnnotatedStates(static_cast<VideoId>(v),
                                static_cast<EventId>(e));
      ASSERT_EQ(states.size(), local.num_states());
      for (size_t t = 0; t < local.num_states(); ++t) {
        EXPECT_EQ(states.Test(t),
                  catalog_.shot(local.states[t]).HasEvent(
                      static_cast<EventId>(e)))
            << "video " << v << " state " << t << " event " << e;
      }
    }
  }
}

TEST_F(EventBitmapIndexTest, StepContainmentMatchesScalarSemantics) {
  const EventBitmapIndex index(model_, catalog_);
  // OR over alternatives of AND over events, against a direct B2 check.
  PatternStep step;
  step.alternatives = {{2, 0}, {1}};
  const DenseBitset videos = index.VideosContainingStep(step);
  for (size_t v = 0; v < model_.num_videos(); ++v) {
    const bool expected = (model_.b2().at(v, 2) > 0.0 &&
                           model_.b2().at(v, 0) > 0.0) ||
                          model_.b2().at(v, 1) > 0.0;
    EXPECT_EQ(index.VideoContainsStep(static_cast<VideoId>(v), step), expected);
    EXPECT_EQ(videos.Test(v), expected);
  }
}

TEST_F(EventBitmapIndexTest, EmptyAlternativeIsTriviallySatisfied) {
  const EventBitmapIndex index(model_, catalog_);
  PatternStep step;
  step.alternatives = {{}};  // AND over zero events
  EXPECT_EQ(index.VideosContainingStep(step).Count(), model_.num_videos());
  DenseBitset states(model_.local(0).num_states());
  index.StatesAnnotatedForStep(0, step, &states);
  EXPECT_EQ(states.Count(), model_.local(0).num_states());
}

TEST_F(EventBitmapIndexTest, FreshnessTracksTheModelVersionCounter) {
  const EventBitmapIndex index(model_, catalog_);
  EXPECT_EQ(index.model_version(), model_.version());
  EXPECT_TRUE(index.FreshFor(model_));
  model_.BumpVersion();
  EXPECT_FALSE(index.FreshFor(model_));
  const EventBitmapIndex rebuilt(model_, catalog_);
  EXPECT_TRUE(rebuilt.FreshFor(model_));
}

// -- QueryPlan ------------------------------------------------------------

class QueryPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/17, /*num_videos=*/10);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(QueryPlanTest, StepSimilarityIsMemoizedPerWalk) {
  const EventBitmapIndex index(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  QueryPlan plan(model_, index, pattern, ScorerOptions{});
  plan.BeginVideoWalk();

  SimilarityScorer reference(model_, ScorerOptions{});
  const double expected = reference.StepSimilarity(0, pattern.steps[0]);

  const size_t before = plan.scorer().evaluations();
  const double first = plan.StepSimilarity(0, 0);
  EXPECT_EQ(first, expected);
  EXPECT_GT(plan.scorer().evaluations(), before);
  EXPECT_EQ(plan.memo_hits(), 0u);

  const size_t after_first = plan.scorer().evaluations();
  const double second = plan.StepSimilarity(0, 0);
  EXPECT_EQ(second, first);
  EXPECT_EQ(plan.scorer().evaluations(), after_first);  // served from memo
  EXPECT_EQ(plan.memo_hits(), 1u);

  // A different step is a different memo slot.
  plan.StepSimilarity(0, 1);
  EXPECT_GT(plan.scorer().evaluations(), after_first);
  EXPECT_EQ(plan.memo_hits(), 1u);
}

TEST_F(QueryPlanTest, BeginVideoWalkInvalidatesMemoAndCandidateCache) {
  const EventBitmapIndex index(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  QueryPlan plan(model_, index, pattern, ScorerOptions{});

  plan.BeginVideoWalk();
  plan.StepSimilarity(0, 0);
  const std::vector<int> states = plan.AnnotatedStates(0, 0);
  EXPECT_EQ(plan.candidate_reuse(), 0u);
  EXPECT_EQ(plan.AnnotatedStates(0, 0), states);
  EXPECT_EQ(plan.candidate_reuse(), 1u);

  // A new walk re-evaluates: the epoch bump empties both caches.
  plan.BeginVideoWalk();
  const size_t evals = plan.scorer().evaluations();
  plan.StepSimilarity(0, 0);
  EXPECT_GT(plan.scorer().evaluations(), evals);
  EXPECT_EQ(plan.memo_hits(), 0u);
  EXPECT_EQ(plan.AnnotatedStates(0, 0), states);
  EXPECT_EQ(plan.candidate_reuse(), 1u);  // recomputed, not reused
}

TEST_F(QueryPlanTest, AnnotatedStatesMatchACatalogScan) {
  const EventBitmapIndex index(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  QueryPlan plan(model_, index, pattern, ScorerOptions{});
  plan.BeginVideoWalk();
  for (size_t v = 0; v < model_.num_videos(); ++v) {
    const LocalShotModel& local = model_.local(static_cast<VideoId>(v));
    std::vector<int> expected;
    for (size_t t = 0; t < local.num_states(); ++t) {
      if (catalog_.shot(local.states[t]).HasEvent(2)) {
        expected.push_back(static_cast<int>(t));
      }
    }
    EXPECT_EQ(plan.AnnotatedStates(static_cast<VideoId>(v), 0), expected)
        << "video " << v;
  }
}

TEST_F(QueryPlanTest, PathArenaMaterializesHeadFirst) {
  const EventBitmapIndex index(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  QueryPlan plan(model_, index, pattern, ScorerOptions{});
  plan.BeginVideoWalk();
  const int a = plan.AddPathNode(-1, 0, 0.5);
  const int b = plan.AddPathNode(a, 1, 0.25);
  const int c = plan.AddPathNode(b, 2, 0.125);
  std::vector<ShotId> shots;
  std::vector<double> weights;
  plan.MaterializePath(c, &shots, &weights);
  ASSERT_EQ(shots.size(), 3u);
  EXPECT_EQ(shots[0], model_.ShotOfGlobalState(0));
  EXPECT_EQ(shots[1], model_.ShotOfGlobalState(1));
  EXPECT_EQ(shots[2], model_.ShotOfGlobalState(2));
  EXPECT_EQ(weights, (std::vector<double>{0.5, 0.25, 0.125}));
}

// -- Exact priorities (the cube-pruned frontier's oracle) -----------------

// Under default scorer options the flat priority table must mirror what
// the scorer would compute, bit for bit, without costing an evaluation —
// that equality is what lets SelectWinners skip cells unevaluated.
TEST_F(QueryPlanTest, ExactPrioritiesMirrorStepSimilarityBitForBit) {
  const EventBitmapIndex index(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  QueryPlan plan(model_, index, pattern, ScorerOptions{});
  ASSERT_TRUE(plan.exact_priorities());

  SimilarityScorer reference(model_, ScorerOptions{});
  const size_t evals_before = plan.scorer().evaluations();
  for (size_t s = 0; s < model_.num_global_states(); ++s) {
    for (size_t j = 0; j < pattern.size(); ++j) {
      EXPECT_EQ(plan.StepPriority(static_cast<int>(s), j),
                reference.StepSimilarity(static_cast<int>(s),
                                         pattern.steps[j]))
          << "state " << s << " step " << j;
    }
  }
  // Reading priorities never touches the plan's scorer.
  EXPECT_EQ(plan.scorer().evaluations(), evals_before);
}

// The precomputed per-(state, event) sims in the index are the inputs to
// that table; they must match a query-time scorer exactly as well.
TEST_F(QueryPlanTest, IndexEventSimilarityMatchesScorerBitForBit) {
  const EventBitmapIndex index(model_, catalog_);
  SimilarityScorer reference(model_, ScorerOptions{});
  ASSERT_TRUE(index.HasExactSims(ScorerOptions{}));
  for (size_t s = 0; s < model_.num_global_states(); ++s) {
    for (size_t e = 0; e < index.num_events(); ++e) {
      EXPECT_EQ(index.EventSimilarity(static_cast<int>(s),
                                      static_cast<EventId>(e)),
                reference.EventSimilarity(static_cast<int>(s),
                                          static_cast<EventId>(e)))
          << "state " << s << " event " << e;
    }
  }
}

// Options the precomputation did not cover must degrade to +infinity
// priorities (every frontier cell pops → unpruned search, same results).
TEST_F(QueryPlanTest, NonExactOptionsDegradeToInfinitePriorities) {
  const EventBitmapIndex index(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  ScorerOptions subset;
  subset.feature_subset = {0, 1, 2};
  EXPECT_FALSE(index.HasExactSims(subset));
  QueryPlan subset_plan(model_, index, pattern, subset);
  EXPECT_FALSE(subset_plan.exact_priorities());
  EXPECT_TRUE(std::isinf(subset_plan.StepPriority(0, 0)));

  ScorerOptions epsilon;
  epsilon.centroid_epsilon = 1e-6;
  EXPECT_FALSE(index.HasExactSims(epsilon));
  QueryPlan epsilon_plan(model_, index, pattern, epsilon);
  EXPECT_FALSE(epsilon_plan.exact_priorities());

  // Kernel choice is NOT an exactness concern: all kernels agree bitwise.
  ScorerOptions scalar;
  scalar.force_scalar_kernel = true;
  EXPECT_TRUE(index.HasExactSims(scalar));
  QueryPlan scalar_plan(model_, index, pattern, scalar);
  EXPECT_TRUE(scalar_plan.exact_priorities());
}

// Building the index with an explicitly scalar batch kernel must yield
// the exact bits of the runtime-selected kernel (the A/B bench leans on
// this: only build time may differ).
TEST_F(QueryPlanTest, IndexBitsAreKernelInvariant) {
  const EventBitmapIndex fast(model_, catalog_);
  const EventBitmapIndex scalar(model_, catalog_, Eq14Kernel::kScalar);
  for (size_t s = 0; s < model_.num_global_states(); ++s) {
    for (size_t e = 0; e < fast.num_events(); ++e) {
      EXPECT_EQ(fast.EventSimilarity(static_cast<int>(s),
                                     static_cast<EventId>(e)),
                scalar.EventSimilarity(static_cast<int>(s),
                                       static_cast<EventId>(e)))
          << "state " << s << " event " << e;
    }
  }
}

// -- Engine integration ---------------------------------------------------

TEST(EngineIndexTest, SharedIndexIsReusedUntilTheVersionMoves) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(3, 6);
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());

  const auto first = engine->SharedEventIndex();
  const auto second = engine->SharedEventIndex();
  EXPECT_EQ(first.get(), second.get());
  EXPECT_TRUE(first->FreshFor(engine->model()));

  // A version bump (what feedback training does) forces a rebuild; the
  // old instance stays alive for in-flight queries holding the shared_ptr.
  engine->mutable_model().BumpVersion();
  const auto rebuilt = engine->SharedEventIndex();
  EXPECT_NE(rebuilt.get(), first.get());
  EXPECT_TRUE(rebuilt->FreshFor(engine->model()));
  EXPECT_FALSE(first->FreshFor(engine->model()));
}

TEST(EngineIndexTest, QueriesStayCorrectAcrossAVersionBump) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(3, 6);
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto before = engine->Retrieve(pattern);
  ASSERT_TRUE(before.ok());
  engine->mutable_model().BumpVersion();  // no matrix change: same answers
  auto after = engine->Retrieve(pattern);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].shots, (*after)[i].shots);
    EXPECT_EQ((*before)[i].score, (*after)[i].score);
  }
}

}  // namespace
}  // namespace hmmm
