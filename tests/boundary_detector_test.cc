#include "shots/boundary_detector.h"

#include <gtest/gtest.h>

#include "media/soccer_generator.h"
#include "shots/segmenter.h"

namespace hmmm {
namespace {

std::vector<Frame> TwoSceneSequence() {
  std::vector<Frame> frames;
  for (int i = 0; i < 10; ++i) frames.emplace_back(8, 8, Rgb{40, 160, 40});
  for (int i = 0; i < 10; ++i) frames.emplace_back(8, 8, Rgb{150, 40, 40});
  return frames;
}

TEST(BoundaryDetectorTest, DetectsHardCut) {
  BoundaryDetector detector;
  const auto boundaries = detector.Detect(TwoSceneSequence());
  ASSERT_EQ(boundaries.size(), 1u);
  EXPECT_EQ(boundaries[0], 10);
}

TEST(BoundaryDetectorTest, NoCutInStaticSequence) {
  std::vector<Frame> frames(20, Frame(8, 8, Rgb{40, 160, 40}));
  BoundaryDetector detector;
  EXPECT_TRUE(detector.Detect(frames).empty());
}

TEST(BoundaryDetectorTest, ShortInputsHandled) {
  BoundaryDetector detector;
  EXPECT_TRUE(detector.Detect({}).empty());
  EXPECT_TRUE(detector.Detect({Frame(4, 4)}).empty());
}

TEST(BoundaryDetectorTest, MinShotLengthMergesCloseCuts) {
  // Three scenes with the middle one only 2 frames long.
  std::vector<Frame> frames;
  for (int i = 0; i < 8; ++i) frames.emplace_back(8, 8, Rgb{40, 160, 40});
  for (int i = 0; i < 2; ++i) frames.emplace_back(8, 8, Rgb{150, 40, 40});
  for (int i = 0; i < 8; ++i) frames.emplace_back(8, 8, Rgb{40, 40, 150});
  BoundaryDetectorOptions options;
  options.min_shot_length = 5;
  BoundaryDetector detector(options);
  const auto boundaries = detector.Detect(frames);
  ASSERT_EQ(boundaries.size(), 1u);  // the second cut is suppressed
  EXPECT_EQ(boundaries[0], 8);
}

TEST(BoundaryDetectorTest, EvaluationCountsMatches) {
  const auto eval =
      BoundaryDetector::Evaluate({10, 20, 31}, {10, 21, 40}, /*tolerance=*/1);
  EXPECT_EQ(eval.true_positives, 2);   // 10 exact, 20~21
  EXPECT_EQ(eval.false_positives, 1);  // 31
  EXPECT_EQ(eval.false_negatives, 1);  // 40
  EXPECT_NEAR(eval.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(eval.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(eval.f1, 2.0 / 3.0, 1e-12);
}

TEST(BoundaryDetectorTest, EvaluationEmptyCases) {
  const auto none = BoundaryDetector::Evaluate({}, {});
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  EXPECT_DOUBLE_EQ(none.recall, 0.0);
  const auto missed = BoundaryDetector::Evaluate({}, {5});
  EXPECT_EQ(missed.false_negatives, 1);
}

TEST(SegmenterTest, PartitionCoversAllFrames) {
  ShotSegmenter segmenter;
  const auto shots = segmenter.Segment(TwoSceneSequence());
  ASSERT_EQ(shots.size(), 2u);
  EXPECT_EQ(shots[0].begin_frame, 0);
  EXPECT_EQ(shots[0].end_frame, 10);
  EXPECT_EQ(shots[1].begin_frame, 10);
  EXPECT_EQ(shots[1].end_frame, 20);
}

TEST(SegmenterTest, EmptyInputGivesNoShots) {
  ShotSegmenter segmenter;
  EXPECT_TRUE(segmenter.Segment(std::vector<Frame>{}).empty());
}

TEST(SegmenterTest, SingleSceneIsOneShot) {
  ShotSegmenter segmenter;
  std::vector<Frame> frames(15, Frame(8, 8, Rgb{40, 160, 40}));
  const auto shots = segmenter.Segment(frames);
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0].length(), 15);
}

TEST(SegmenterTest, RecoversGeneratedShotsReasonably) {
  // On the synthetic soccer footage the histogram detector should find
  // most of the true cuts with decent precision.
  SoccerGeneratorConfig config;
  config.seed = 21;
  config.min_shots_per_video = 10;
  config.max_shots_per_video = 12;
  config.min_frames_per_shot = 12;
  config.max_frames_per_shot = 24;
  SoccerVideoGenerator generator(config);

  double f1_sum = 0.0;
  const int videos = 4;
  for (int v = 0; v < videos; ++v) {
    const SyntheticVideo video = generator.Generate(v);
    BoundaryDetector detector;
    const auto detected = detector.Detect(video.frames);
    const auto eval = BoundaryDetector::Evaluate(
        detected, video.TrueBoundaries(), /*tolerance=*/2);
    f1_sum += eval.f1;
  }
  EXPECT_GT(f1_sum / videos, 0.6);
}

}  // namespace
}  // namespace hmmm
