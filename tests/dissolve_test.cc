// Gradual-transition (dissolve) rendering and twin-comparison detection.

#include <gtest/gtest.h>

#include <algorithm>

#include "media/soccer_generator.h"
#include "shots/boundary_detector.h"

namespace hmmm {
namespace {

/// Frame with per-pixel dither so colour shifts move pixels across
/// histogram bins smoothly instead of all at once (uniform frames make
/// even tiny shifts look like hard cuts to a bin-quantized histogram).
Frame DitheredFrame(Rgb base, int w = 16, int h = 16) {
  Frame frame(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int dither = (x * 7 + y * 13) % 32;
      auto offset = [&](uint8_t v) {
        return static_cast<uint8_t>(std::min(255, v + dither));
      };
      frame.at(x, y) = Rgb{offset(base.r), offset(base.g), offset(base.b)};
    }
  }
  return frame;
}

/// Hand-built sequence: scene A, a linear D-frame dissolve, scene B.
std::vector<Frame> DissolveSequence(int scene_frames, int dissolve_frames) {
  const Rgb a{40, 160, 40};
  const Rgb b{150, 40, 40};
  std::vector<Frame> frames;
  for (int i = 0; i < scene_frames; ++i) frames.push_back(DitheredFrame(a));
  for (int i = 1; i <= dissolve_frames; ++i) {
    const double alpha = static_cast<double>(i) / (dissolve_frames + 1);
    frames.push_back(DitheredFrame(
        Rgb{static_cast<uint8_t>((1 - alpha) * a.r + alpha * b.r),
            static_cast<uint8_t>((1 - alpha) * a.g + alpha * b.g),
            static_cast<uint8_t>((1 - alpha) * a.b + alpha * b.b)}));
  }
  for (int i = 0; i < scene_frames; ++i) frames.push_back(DitheredFrame(b));
  return frames;
}

TEST(DissolveDetectionTest, TwinComparisonFindsGradualBoundary) {
  const auto frames = DissolveSequence(12, 24);
  BoundaryDetectorOptions options;
  options.detect_gradual = true;
  BoundaryDetector detector(options);
  const auto boundaries = detector.Detect(frames);
  ASSERT_EQ(boundaries.size(), 1u);
  // Boundary somewhere within the dissolve window (frames 12..36).
  EXPECT_GE(boundaries[0], 12);
  EXPECT_LE(boundaries[0], 36);
}

TEST(DissolveDetectionTest, CutOnlyDetectorMissesDissolve) {
  const auto frames = DissolveSequence(12, 24);
  BoundaryDetectorOptions options;
  options.detect_gradual = false;
  // Per-frame dissolve steps stay below the adaptive cut threshold.
  options.min_cut_distance = 0.6;
  BoundaryDetector detector(options);
  EXPECT_TRUE(detector.Detect(frames).empty());
}

TEST(DissolveDetectionTest, HardCutsStillDetectedWithGradualOn) {
  std::vector<Frame> frames;
  for (int i = 0; i < 10; ++i) frames.emplace_back(8, 8, Rgb{40, 160, 40});
  for (int i = 0; i < 10; ++i) frames.emplace_back(8, 8, Rgb{150, 40, 40});
  BoundaryDetector detector;
  const auto boundaries = detector.Detect(frames);
  ASSERT_EQ(boundaries.size(), 1u);
  EXPECT_EQ(boundaries[0], 10);
}

TEST(DissolveDetectionTest, SlowPanNotReportedAsTransition) {
  // A very slow colour drift over many frames: per-frame changes stay
  // below the low threshold, so nothing accumulates.
  std::vector<Frame> frames;
  for (int i = 0; i < 60; ++i) {
    const auto g = static_cast<uint8_t>(160 - i);
    frames.push_back(DitheredFrame(Rgb{40, g, 40}));
  }
  BoundaryDetectorOptions options;
  options.min_cut_distance = 0.6;
  BoundaryDetector detector(options);
  EXPECT_TRUE(detector.Detect(frames).empty());
}

TEST(DissolveGeneratorTest, DissolveFlagsHonoured) {
  SoccerGeneratorConfig config;
  config.seed = 77;
  config.min_shots_per_video = 12;
  config.max_shots_per_video = 16;
  config.dissolve_probability = 1.0;  // every boundary dissolves
  SoccerVideoGenerator generator(config);
  const SyntheticVideo video = generator.Generate(0);
  ASSERT_GT(video.shots.size(), 1u);
  EXPECT_FALSE(video.shots.front().dissolve_in);
  for (size_t s = 1; s < video.shots.size(); ++s) {
    EXPECT_TRUE(video.shots[s].dissolve_in);
  }
}

TEST(DissolveGeneratorTest, BlendedFramesAtBoundary) {
  SoccerGeneratorConfig config;
  config.seed = 78;
  config.min_shots_per_video = 6;
  config.max_shots_per_video = 6;
  config.min_frames_per_shot = 16;
  config.max_frames_per_shot = 20;
  config.dissolve_probability = 1.0;
  config.dissolve_frames = 8;
  SoccerVideoGenerator generator(config);
  const SyntheticVideo video = generator.Generate(0);

  // At a dissolve boundary, the frame-to-frame change right at the cut is
  // smaller than it would be for a hard cut: compare against the cut-only
  // variant of the same video.
  SoccerGeneratorConfig hard = config;
  hard.dissolve_probability = 0.0;
  const SyntheticVideo cut_video = SoccerVideoGenerator(hard).Generate(0);
  ASSERT_EQ(video.shots.size(), cut_video.shots.size());

  double dissolve_change = 0.0, cut_change = 0.0;
  int counted = 0;
  for (size_t s = 1; s < video.shots.size(); ++s) {
    const int b = video.shots[s].begin_frame;
    dissolve_change += PixelChangeFraction(
        video.frames[static_cast<size_t>(b - 1)],
        video.frames[static_cast<size_t>(b)]);
    cut_change += PixelChangeFraction(
        cut_video.frames[static_cast<size_t>(b - 1)],
        cut_video.frames[static_cast<size_t>(b)]);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(dissolve_change, cut_change);
}

TEST(DissolveGeneratorTest, GradualDetectorRecoversDissolvedBoundaries) {
  SoccerGeneratorConfig config;
  config.seed = 79;
  config.min_shots_per_video = 10;
  config.max_shots_per_video = 12;
  config.min_frames_per_shot = 16;
  config.max_frames_per_shot = 24;
  config.dissolve_probability = 0.5;
  SoccerVideoGenerator generator(config);

  double f1_gradual = 0.0, f1_cut_only = 0.0;
  const int videos = 4;
  for (int v = 0; v < videos; ++v) {
    const SyntheticVideo video = generator.Generate(v);
    BoundaryDetectorOptions with;
    with.detect_gradual = true;
    BoundaryDetectorOptions without;
    without.detect_gradual = false;
    const auto truth = video.TrueBoundaries();
    f1_gradual += BoundaryDetector::Evaluate(
                      BoundaryDetector(with).Detect(video.frames), truth, 4)
                      .f1;
    f1_cut_only += BoundaryDetector::Evaluate(
                       BoundaryDetector(without).Detect(video.frames), truth, 4)
                       .f1;
  }
  EXPECT_GE(f1_gradual + 1e-9, f1_cut_only);
  EXPECT_GT(f1_gradual / videos, 0.5);
}

}  // namespace
}  // namespace hmmm
