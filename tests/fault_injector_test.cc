#include "common/fault_injector.h"

#include <gtest/gtest.h>

namespace hmmm {
namespace {

// The FaultInjector class itself is always compiled (only the call-site
// macros are gated on HMMM_FAULT_INJECTION), so its trigger semantics are
// tier-1 testable in every build flavor. The injector is process-global:
// each test resets it on entry and exit.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectorTest, UnarmedPointNeverFiresButCountsHits) {
  FaultInjector& injector = FaultInjector::Instance();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(injector.ShouldFire("storage.read"));
  }
  EXPECT_EQ(injector.hits("storage.read"), 5u);
  EXPECT_EQ(injector.fires("storage.read"), 0u);
}

TEST_F(FaultInjectorTest, DefaultConfigIsArmedButInert) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Arm("storage.read", FaultPointConfig{});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.ShouldFire("storage.read"));
  }
  EXPECT_EQ(injector.fires("storage.read"), 0u);
}

TEST_F(FaultInjectorTest, AfterHitsFiresFromThatHitOnward) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 2;
  injector.Arm("storage.write", config);
  EXPECT_FALSE(injector.ShouldFire("storage.write"));  // hit 0
  EXPECT_FALSE(injector.ShouldFire("storage.write"));  // hit 1
  EXPECT_TRUE(injector.ShouldFire("storage.write"));   // hit 2
  EXPECT_TRUE(injector.ShouldFire("storage.write"));   // hit 3
  EXPECT_EQ(injector.fires("storage.write"), 2u);
}

TEST_F(FaultInjectorTest, AfterHitsZeroFiresImmediately) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 0;
  injector.Arm("storage.append", config);
  EXPECT_TRUE(injector.ShouldFire("storage.append"));
}

TEST_F(FaultInjectorTest, ArgThresholdComparesCallSiteArgument) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.arg_threshold = 6;
  injector.Arm("traversal.deadline_at_video", config);
  EXPECT_FALSE(injector.ShouldFire("traversal.deadline_at_video", 0));
  EXPECT_FALSE(injector.ShouldFire("traversal.deadline_at_video", 5));
  EXPECT_TRUE(injector.ShouldFire("traversal.deadline_at_video", 6));
  EXPECT_TRUE(injector.ShouldFire("traversal.deadline_at_video", 100));
  // A call site that passes no argument (-1) never matches a threshold.
  EXPECT_FALSE(injector.ShouldFire("traversal.deadline_at_video"));
}

TEST_F(FaultInjectorTest, MaxFiresModelsATransientError) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 0;
  config.max_fires = 1;
  injector.Arm("storage.read", config);
  EXPECT_TRUE(injector.ShouldFire("storage.read"));
  EXPECT_FALSE(injector.ShouldFire("storage.read"));
  EXPECT_FALSE(injector.ShouldFire("storage.read"));
  EXPECT_EQ(injector.fires("storage.read"), 1u);
}

TEST_F(FaultInjectorTest, ProbabilityOneAlwaysFiresZeroNever) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Seed(42);
  FaultPointConfig always;
  always.probability = 1.0;
  injector.Arm("threadpool.task", always);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(injector.ShouldFire("threadpool.task"));
  }
  FaultPointConfig never;
  never.probability = 0.0;
  injector.Arm("threadpool.task", never);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(injector.ShouldFire("threadpool.task"));
  }
}

TEST_F(FaultInjectorTest, SeededProbabilityScheduleReplays) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.probability = 0.5;

  auto run_schedule = [&] {
    injector.Reset();
    injector.Seed(7);
    injector.Arm("storage.read", config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.ShouldFire("storage.read"));
    }
    return fired;
  };

  const std::vector<bool> first = run_schedule();
  const std::vector<bool> second = run_schedule();
  EXPECT_EQ(first, second);
  // A fair coin over 64 draws lands strictly inside (0, 64) with
  // probability 1 - 2^-63; all-heads would mean the trigger is broken.
  const size_t fires = injector.fires("storage.read");
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FaultInjectorTest, ArmResetsCountersSoAfterHitsCountsFresh) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 1;
  injector.Arm("storage.read", config);
  EXPECT_FALSE(injector.ShouldFire("storage.read"));
  EXPECT_TRUE(injector.ShouldFire("storage.read"));
  // Re-arming starts the count over: the first post-arm hit is hit 0.
  injector.Arm("storage.read", config);
  EXPECT_FALSE(injector.ShouldFire("storage.read"));
  EXPECT_TRUE(injector.ShouldFire("storage.read"));
}

TEST_F(FaultInjectorTest, DisarmStopsFiringButKeepsHitCounters) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 0;
  injector.Arm("storage.read", config);
  EXPECT_TRUE(injector.ShouldFire("storage.read"));
  injector.Disarm("storage.read");
  EXPECT_FALSE(injector.ShouldFire("storage.read"));
  EXPECT_EQ(injector.hits("storage.read"), 2u);
  EXPECT_EQ(injector.fires("storage.read"), 1u);
}

TEST_F(FaultInjectorTest, ArmedWithPrefixMatchesSubsystemNamespaces) {
  FaultInjector& injector = FaultInjector::Instance();
  EXPECT_FALSE(injector.ArmedWithPrefix("traversal."));
  FaultPointConfig config;
  config.arg_threshold = 3;
  injector.Arm("traversal.walk_fault", config);
  EXPECT_TRUE(injector.ArmedWithPrefix("traversal."));
  EXPECT_TRUE(injector.ArmedWithPrefix("traversal.walk_fault"));
  EXPECT_FALSE(injector.ArmedWithPrefix("storage."));
  injector.Disarm("traversal.walk_fault");
  EXPECT_FALSE(injector.ArmedWithPrefix("traversal."));
}

TEST_F(FaultInjectorTest, SnapshotListsEveryPointSorted) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 0;
  injector.Arm("storage.write", config);
  EXPECT_FALSE(injector.ShouldFire("storage.read"));
  EXPECT_TRUE(injector.ShouldFire("storage.write"));

  const std::vector<FaultPointStats> snapshot = injector.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].point, "storage.read");
  EXPECT_EQ(snapshot[0].hits, 1u);
  EXPECT_EQ(snapshot[0].fires, 0u);
  EXPECT_FALSE(snapshot[0].armed);
  EXPECT_EQ(snapshot[1].point, "storage.write");
  EXPECT_EQ(snapshot[1].hits, 1u);
  EXPECT_EQ(snapshot[1].fires, 1u);
  EXPECT_TRUE(snapshot[1].armed);
}

TEST_F(FaultInjectorTest, ResetClearsPointsAndCounters) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 0;
  injector.Arm("storage.read", config);
  EXPECT_TRUE(injector.ShouldFire("storage.read"));
  injector.Reset();
  EXPECT_TRUE(injector.Snapshot().empty());
  EXPECT_EQ(injector.hits("storage.read"), 0u);
  EXPECT_FALSE(injector.ShouldFire("storage.read"));
}

TEST_F(FaultInjectorTest, TriggersComposeWithOr) {
  FaultInjector& injector = FaultInjector::Instance();
  FaultPointConfig config;
  config.after_hits = 3;
  config.arg_threshold = 10;
  injector.Arm("traversal.order_pick", config);
  // Fires early via the argument threshold...
  EXPECT_TRUE(injector.ShouldFire("traversal.order_pick", 10));  // hit 0
  // ...stays quiet when neither trigger matches...
  EXPECT_FALSE(injector.ShouldFire("traversal.order_pick", 1));  // hit 1
  EXPECT_FALSE(injector.ShouldFire("traversal.order_pick", 2));  // hit 2
  // ...and fires unconditionally once the hit count is reached.
  EXPECT_TRUE(injector.ShouldFire("traversal.order_pick", 1));  // hit 3
}

}  // namespace
}  // namespace hmmm
