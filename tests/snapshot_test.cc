#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/video_database.h"
#include "common/serialization.h"
#include "core/model_builder.h"
#include "observability/metrics_registry.h"
#include "snapshot/snapshot_format.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "test_util.h"

namespace hmmm {
namespace {

// The snapshot contract is byte-identity: a database served from mapped
// pages must be indistinguishable — raw-double scores included — from
// the heap-built database the snapshot froze.
void ExpectIdenticalResults(const std::vector<RetrievedPattern>& expected,
                            const std::vector<RetrievedPattern>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].shots, actual[i].shots) << "rank " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << "rank " << i;
    EXPECT_EQ(expected[i].video, actual[i].video) << "rank " << i;
    EXPECT_EQ(expected[i].edge_weights, actual[i].edge_weights)
        << "rank " << i;
    EXPECT_EQ(expected[i].crosses_videos, actual[i].crosses_videos)
        << "rank " << i;
  }
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/7, /*num_videos=*/6);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = std::move(model).value();
    path_ = testing::TempPath("snapshot_test.hmms");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  VideoCatalog catalog_;
  HierarchicalModel model_;
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripRebuildsCatalogExactly) {
  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_).ok());
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto rebuilt = (*reader)->BuildCatalog();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();

  ASSERT_EQ(rebuilt->num_videos(), catalog_.num_videos());
  ASSERT_EQ(rebuilt->num_shots(), catalog_.num_shots());
  EXPECT_EQ(rebuilt->num_features(), catalog_.num_features());
  ASSERT_EQ(rebuilt->vocabulary().size(), catalog_.vocabulary().size());
  for (size_t e = 0; e < catalog_.vocabulary().size(); ++e) {
    EXPECT_EQ(rebuilt->vocabulary().Name(static_cast<int>(e)),
              catalog_.vocabulary().Name(static_cast<int>(e)));
  }
  for (size_t v = 0; v < catalog_.num_videos(); ++v) {
    EXPECT_EQ(rebuilt->videos()[v].name, catalog_.videos()[v].name);
    EXPECT_EQ(rebuilt->videos()[v].shots, catalog_.videos()[v].shots);
  }
  for (size_t s = 0; s < catalog_.num_shots(); ++s) {
    const ShotRecord& a = catalog_.shots()[s];
    const ShotRecord& b = rebuilt->shots()[s];
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.video_id, a.video_id);
    EXPECT_EQ(b.index_in_video, a.index_in_video);
    EXPECT_EQ(b.begin_time, a.begin_time);
    EXPECT_EQ(b.end_time, a.end_time);
    EXPECT_EQ(b.events, a.events);
    EXPECT_EQ(rebuilt->raw_features_of(a.id), catalog_.raw_features_of(a.id));
  }
}

TEST_F(SnapshotTest, RoundTripRebuildsModelExactly) {
  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_).ok());
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto rebuilt = (*reader)->BuildModel();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();

  EXPECT_TRUE(rebuilt->b1() == model_.b1());
  EXPECT_TRUE(rebuilt->a2() == model_.a2());
  EXPECT_TRUE(rebuilt->b2() == model_.b2());
  EXPECT_TRUE(rebuilt->p12() == model_.p12());
  EXPECT_TRUE(rebuilt->b1_prime() == model_.b1_prime());
  EXPECT_EQ(rebuilt->pi2(), model_.pi2());
  ASSERT_EQ(rebuilt->locals().size(), model_.locals().size());
  for (size_t v = 0; v < model_.locals().size(); ++v) {
    EXPECT_EQ(rebuilt->locals()[v].video_id, model_.locals()[v].video_id);
    EXPECT_EQ(rebuilt->locals()[v].states, model_.locals()[v].states);
    EXPECT_EQ(rebuilt->locals()[v].pi1, model_.locals()[v].pi1);
    EXPECT_TRUE(rebuilt->locals()[v].a1 == model_.locals()[v].a1);
  }
}

TEST_F(SnapshotTest, MappedMatricesAreBorrowedAndAligned) {
  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_).ok());
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto model = (*reader)->BuildModel();
  ASSERT_TRUE(model.ok()) << model.status();
  auto catalog = (*reader)->BuildCatalog();
  ASSERT_TRUE(catalog.ok()) << catalog.status();

  const auto aligned = [](const Matrix& m) {
    return reinterpret_cast<uintptr_t>(m.ptr()) % kSnapshotAlignment == 0;
  };
  for (const Matrix* m : {&model->b1(), &model->a2(), &model->b2(),
                          &model->p12(), &model->b1_prime()}) {
    EXPECT_TRUE(m->borrowed());
    EXPECT_TRUE(aligned(*m));
  }
  for (const LocalShotModel& local : model->locals()) {
    EXPECT_TRUE(local.a1.borrowed());
    EXPECT_TRUE(aligned(local.a1));
  }
  // The BB1 feature table serves straight from the mapped pages too.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(catalog->RawFeatureRow(0)) %
                kSnapshotAlignment,
            0u);
}

TEST_F(SnapshotTest, HeaderCarriesGenerationVersionAndIndexFlag) {
  SnapshotWriteOptions options;
  options.generation = 41;
  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_, options).ok());
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ((*reader)->generation(), 41u);
  EXPECT_EQ((*reader)->frozen_model_version(), model_.version());
  EXPECT_TRUE((*reader)->has_event_index());
  EXPECT_FALSE((*reader)->sections().empty());
}

TEST_F(SnapshotTest, FrozenEventIndexAdoptsMappedSims) {
  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_).ok());
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto model = (*reader)->BuildModel();
  ASSERT_TRUE(model.ok());
  auto catalog = (*reader)->BuildCatalog();
  ASSERT_TRUE(catalog.ok());
  auto index = (*reader)->BuildEventIndex(*model, *catalog);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_TRUE(index->event_sims().borrowed());
  EXPECT_TRUE(index->FreshFor(*model));

  // Frozen sims must equal a from-scratch rebuild exactly.
  const EventBitmapIndex fresh(*model, *catalog);
  EXPECT_TRUE(index->event_sims() == fresh.event_sims());
}

TEST_F(SnapshotTest, SnapshotWithoutIndexStillOpens) {
  SnapshotWriteOptions options;
  options.include_event_index = false;
  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_, options).ok());
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_FALSE((*reader)->has_event_index());
  auto model = (*reader)->BuildModel();
  ASSERT_TRUE(model.ok());
  auto catalog = (*reader)->BuildCatalog();
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ((*reader)->BuildEventIndex(*model, *catalog).status().code(),
            StatusCode::kNotFound);

  auto db = VideoDatabase::OpenSnapshot(path_);
  ASSERT_TRUE(db.ok()) << db.status();
  auto results = db->Query("free_kick ; goal");
  EXPECT_TRUE(results.ok()) << results.status();
}

TEST_F(SnapshotTest, ImageIsDeterministicAndMatchesFile) {
  const std::string first = BuildSnapshotImage(model_, catalog_);
  const std::string second = BuildSnapshotImage(model_, catalog_);
  EXPECT_EQ(first, second);

  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_).ok());
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, first);
}

TEST_F(SnapshotTest, MappedRankingsMatchHeapAtEveryThreadCountAndKernel) {
  VideoDatabaseOptions base;
  auto heap = VideoDatabase::Create(VideoCatalog(catalog_), base);
  ASSERT_TRUE(heap.ok()) << heap.status();
  ASSERT_TRUE(heap->WriteSnapshot(path_).ok());

  const std::vector<std::string> queries = {"free_kick ; goal", "goal",
                                            "corner_kick ; goal"};
  for (int threads : {1, 2, 4}) {
    for (bool scalar : {false, true}) {
      VideoDatabaseOptions options;
      options.traversal.num_threads = threads;
      options.traversal.scorer.force_scalar_kernel = scalar;
      auto heap_db = VideoDatabase::Create(VideoCatalog(catalog_), options);
      ASSERT_TRUE(heap_db.ok()) << heap_db.status();
      auto mapped_db = VideoDatabase::OpenSnapshot(path_, options);
      ASSERT_TRUE(mapped_db.ok()) << mapped_db.status();
      for (const std::string& query : queries) {
        auto expected = heap_db->Query(query);
        ASSERT_TRUE(expected.ok()) << expected.status();
        auto actual = mapped_db->Query(query);
        ASSERT_TRUE(actual.ok()) << actual.status();
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " scalar=" + std::to_string(scalar) + " query=" + query);
        ExpectIdenticalResults(*expected, *actual);
      }
    }
  }
}

TEST_F(SnapshotTest, MappedQbeMatchesHeap) {
  auto heap = VideoDatabase::Create(VideoCatalog(catalog_));
  ASSERT_TRUE(heap.ok()) << heap.status();
  ASSERT_TRUE(heap->WriteSnapshot(path_).ok());
  auto mapped = VideoDatabase::OpenSnapshot(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  const std::vector<double> example = catalog_.raw_features_of(0);
  auto expected = heap->QueryByExample(example);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto actual = mapped->QueryByExample(example);
  ASSERT_TRUE(actual.ok()) << actual.status();
  ASSERT_EQ(expected->size(), actual->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*expected)[i].shot, (*actual)[i].shot);
    EXPECT_EQ((*expected)[i].similarity, (*actual)[i].similarity);
  }
}

TEST_F(SnapshotTest, TrainingCopiesOnWriteAndLeavesTheFileUntouched) {
  auto heap = VideoDatabase::Create(VideoCatalog(catalog_));
  ASSERT_TRUE(heap.ok()) << heap.status();
  ASSERT_TRUE(heap->WriteSnapshot(path_).ok());
  auto before = ReadFileToString(path_);
  ASSERT_TRUE(before.ok());

  auto db = VideoDatabase::OpenSnapshot(path_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->model().a2().borrowed());

  auto results = db->Query("free_kick ; goal");
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_FALSE(results->empty());
  ASSERT_TRUE(db->MarkPositive((*results)[0]).ok());
  auto trained = db->Train();
  ASSERT_TRUE(trained.ok()) << trained.status();
  EXPECT_TRUE(*trained);

  // Training mutated the model through copy-on-write; the mapped bytes —
  // and any other reader of the same snapshot — are untouched.
  EXPECT_FALSE(db->model().a2().borrowed());
  auto after = ReadFileToString(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);

  auto retrained_results = db->Query("free_kick ; goal");
  EXPECT_TRUE(retrained_results.ok()) << retrained_results.status();
}

TEST_F(SnapshotTest, PublishRepointsCurrentAtomically) {
  const std::string dir = testing::TempPath("snapshot_pub_dir");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  EXPECT_EQ(ResolveCurrentSnapshot(dir).status().code(),
            StatusCode::kNotFound);

  auto first = PublishSnapshot(model_, catalog_, dir, 1);
  ASSERT_TRUE(first.ok()) << first.status();
  auto resolved = ResolveCurrentSnapshot(dir);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, *first);

  auto second = PublishSnapshot(model_, catalog_, dir, 2);
  ASSERT_TRUE(second.ok()) << second.status();
  resolved = ResolveCurrentSnapshot(dir);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, *second);
  EXPECT_NE(*first, *second);
  // The superseded generation stays on disk for readers still mapping it.
  EXPECT_TRUE(std::filesystem::exists(*first));

  auto reader = SnapshotReader::Open(*resolved);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ((*reader)->generation(), 2u);
  std::filesystem::remove_all(dir);
}

TEST_F(SnapshotTest, OpenRecordsMetrics) {
  ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_,
                            SnapshotWriteOptions{.generation = 9})
                  .ok());
  MetricsRegistry registry;
  SnapshotOptions options;
  options.metrics = &registry;
  options.verify_section_crcs = true;
  auto reader = SnapshotReader::Open(path_, options);
  ASSERT_TRUE(reader.ok()) << reader.status();

  EXPECT_EQ(registry.GetCounter("hmmm_snapshot_opens_total")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("hmmm_snapshot_open_failures_total")->value(),
            0u);
  EXPECT_EQ(registry
                .GetHistogram("hmmm_snapshot_open_ms",
                              DefaultLatencyBucketsMs())
                ->count(),
            1u);
  EXPECT_EQ(registry.GetGauge("hmmm_snapshot_generation")->value(), 9.0);
  EXPECT_EQ(registry.GetGauge("hmmm_snapshot_mapped_bytes")->value(),
            static_cast<double>((*reader)->file_size()));

  auto missing = SnapshotReader::Open(path_ + ".does-not-exist", options);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(registry.GetCounter("hmmm_snapshot_opens_total")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("hmmm_snapshot_open_failures_total")->value(),
            1u);
}

TEST_F(SnapshotTest, FallbackPrefersSnapshotAndDegradesToBlobs) {
  const std::string catalog_path = testing::TempPath("snapfb.catalog");
  const std::string model_path = testing::TempPath("snapfb.model");
  auto db = VideoDatabase::Create(VideoCatalog(catalog_));
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Save(catalog_path, model_path).ok());
  ASSERT_TRUE(db->WriteSnapshot(path_).ok());

  // Healthy snapshot: the mmap path wins (model matrices stay borrowed).
  auto from_snapshot = VideoDatabase::OpenSnapshotWithFallback(
      path_, catalog_path, model_path);
  ASSERT_TRUE(from_snapshot.ok()) << from_snapshot.status();
  EXPECT_TRUE(from_snapshot->model().b1().borrowed());

  // Missing snapshot: the blob pair still boots the database.
  auto fallback = VideoDatabase::OpenSnapshotWithFallback(
      path_ + ".missing", catalog_path, model_path);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_FALSE(fallback->model().b1().borrowed());

  auto expected = from_snapshot->Query("free_kick ; goal");
  ASSERT_TRUE(expected.ok());
  auto actual = fallback->Query("free_kick ; goal");
  ASSERT_TRUE(actual.ok());
  ExpectIdenticalResults(*expected, *actual);

  std::remove(catalog_path.c_str());
  std::remove(model_path.c_str());
}

}  // namespace
}  // namespace hmmm
