// Equivalence oracle for the query-plan layer: a straight port of the
// pre-plan traversal (per-call B2 scans, per-shot catalog annotation
// checks, O(length) path copies, one un-memoized scorer) run serially.
// HmmmTraversal must reproduce its rankings, scores, edge weights and
// deterministic cost counters bit-for-bit at every thread count, with and
// without tracing — the query-plan layer is an optimization, never a
// semantic change.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/model_builder.h"
#include "observability/query_trace.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

struct RefPath {
  std::vector<int> states;
  std::vector<double> edge_weights;
  double last_weight = 0.0;
  double score_sum = 0.0;
  VideoId current_video = -1;
  bool crossed_video = false;
};

/// The seed algorithm, verbatim modulo tracing and parallelism: identical
/// floating-point expression order, identical candidate generation order,
/// identical pruning and tie-breaks.
class ReferenceTraversal {
 public:
  ReferenceTraversal(const HierarchicalModel& model,
                     const VideoCatalog& catalog, TraversalOptions options)
      : model_(model), catalog_(catalog), options_(std::move(options)) {}

  std::vector<RetrievedPattern> Retrieve(const TemporalPattern& pattern,
                                         RetrievalStats* stats) const {
    SimilarityScorer scorer(model_, options_.scorer);
    std::vector<VideoId> order = VideoOrder(pattern);
    if (options_.max_videos >= 0 &&
        order.size() > static_cast<size_t>(options_.max_videos)) {
      order.resize(static_cast<size_t>(options_.max_videos));
    }

    struct Candidate {
      RetrievedPattern pattern;
      size_t order_index = 0;
    };
    std::vector<Candidate> survivors;
    for (size_t i = 0; i < order.size(); ++i) {
      RetrievedPattern candidate;
      if (TraverseVideo(order[i], pattern, scorer, stats, &candidate)) {
        survivors.push_back({std::move(candidate), i});
      }
    }
    std::sort(survivors.begin(), survivors.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.pattern.score != b.pattern.score) {
                  return a.pattern.score > b.pattern.score;
                }
                return a.order_index < b.order_index;
              });
    const auto top_k = static_cast<size_t>(options_.max_results);
    if (survivors.size() > top_k) survivors.resize(top_k);
    std::vector<RetrievedPattern> results;
    for (Candidate& c : survivors) results.push_back(std::move(c.pattern));
    if (stats != nullptr) stats->sim_evaluations = scorer.evaluations();
    return results;
  }

  std::vector<VideoId> VideoOrder(const TemporalPattern& pattern) const {
    const size_t m = model_.num_videos();
    std::vector<VideoId> order;
    if (m == 0 || pattern.empty()) return order;
    std::vector<bool> visited(m, false);
    std::vector<VideoId> containing;
    for (size_t v = 0; v < m; ++v) {
      if (VideoContainsStep(static_cast<VideoId>(v), pattern.steps.front())) {
        containing.push_back(static_cast<VideoId>(v));
      }
    }
    VideoId previous = -1;
    for (size_t picked = 0; picked < containing.size(); ++picked) {
      VideoId best = -1;
      double best_score = -1.0;
      for (VideoId v : containing) {
        if (visited[static_cast<size_t>(v)]) continue;
        const double score =
            previous < 0 ? model_.pi2()[static_cast<size_t>(v)]
                         : model_.a2().at(static_cast<size_t>(previous),
                                          static_cast<size_t>(v));
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      if (best < 0) break;
      visited[static_cast<size_t>(best)] = true;
      order.push_back(best);
      previous = best;
    }
    std::vector<VideoId> rest;
    for (size_t v = 0; v < m; ++v) {
      if (!visited[v]) rest.push_back(static_cast<VideoId>(v));
    }
    std::stable_sort(rest.begin(), rest.end(), [&](VideoId a, VideoId b) {
      return model_.pi2()[static_cast<size_t>(a)] >
             model_.pi2()[static_cast<size_t>(b)];
    });
    order.insert(order.end(), rest.begin(), rest.end());
    return order;
  }

 private:
  bool VideoContainsStep(VideoId v, const PatternStep& step) const {
    for (const auto& alternative : step.alternatives) {
      bool all_present = true;
      for (EventId e : alternative) {
        if (model_.b2().at(static_cast<size_t>(v), static_cast<size_t>(e)) <=
            0.0) {
          all_present = false;
          break;
        }
      }
      if (all_present) return true;
    }
    return false;
  }

  bool ShotAnnotatedForStep(ShotId shot, const PatternStep& step) const {
    const ShotRecord& record = catalog_.shot(shot);
    for (const auto& alternative : step.alternatives) {
      bool all = true;
      for (EventId e : alternative) {
        if (!record.HasEvent(e)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  std::vector<int> CandidateStates(const LocalShotModel& local, int first,
                                   int last, const PatternStep& step,
                                   RetrievalStats* stats) const {
    const int n = std::min(static_cast<int>(local.num_states()), last + 1);
    std::vector<int> all;
    std::vector<int> annotated;
    for (int t = first; t < n; ++t) {
      all.push_back(t);
      if (options_.annotated_first &&
          ShotAnnotatedForStep(local.states[static_cast<size_t>(t)], step)) {
        annotated.push_back(t);
      }
    }
    if (!annotated.empty()) return annotated;
    if (stats != nullptr && options_.annotated_first && !all.empty()) {
      ++stats->annotated_fallbacks;
    }
    return all;
  }

  std::vector<RefPath> ExpandWithinVideo(const RefPath& path,
                                         const PatternStep& step,
                                         const SimilarityScorer& scorer,
                                         RetrievalStats* stats) const {
    std::vector<RefPath> expansions;
    const LocalShotModel& local = model_.local(path.current_video);
    const int n = static_cast<int>(local.num_states());
    if (n == 0) return expansions;
    const int current_global = path.states.back();
    const ShotId current_shot = model_.ShotOfGlobalState(current_global);
    int current_local = -1;
    for (int i = 0; i < n; ++i) {
      if (local.states[static_cast<size_t>(i)] == current_shot) {
        current_local = i;
        break;
      }
    }
    HMMM_CHECK(current_local >= 0);
    const int first_next =
        options_.allow_same_shot ? current_local : current_local + 1;
    const int last_next =
        step.max_gap >= 0 ? current_local + step.max_gap : n - 1;
    for (int t : CandidateStates(local, first_next, last_next, step, stats)) {
      const double transition = local.a1.at(static_cast<size_t>(current_local),
                                            static_cast<size_t>(t));
      if (transition <= 0.0) continue;
      const int next_global =
          model_.GlobalStateOf(local.states[static_cast<size_t>(t)]);
      const double sim = scorer.StepSimilarity(next_global, step);
      const double weight = path.last_weight * transition * sim;
      if (stats != nullptr) ++stats->states_visited;
      RefPath extended = path;
      extended.states.push_back(next_global);
      extended.edge_weights.push_back(weight);
      extended.last_weight = weight;
      extended.score_sum += weight;
      expansions.push_back(std::move(extended));
    }
    return expansions;
  }

  std::vector<RefPath> ExpandCrossVideo(const RefPath& path,
                                        const PatternStep& step,
                                        const SimilarityScorer& scorer,
                                        RetrievalStats* stats) const {
    std::vector<RefPath> expansions;
    std::vector<VideoId> candidates;
    for (size_t v = 0; v < model_.num_videos(); ++v) {
      const auto video = static_cast<VideoId>(v);
      if (video == path.current_video) continue;
      if (model_.local(video).num_states() == 0) continue;
      if (!VideoContainsStep(video, step)) continue;
      candidates.push_back(video);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](VideoId a, VideoId b) {
                       const auto from =
                           static_cast<size_t>(path.current_video);
                       return model_.a2().at(from, static_cast<size_t>(a)) >
                              model_.a2().at(from, static_cast<size_t>(b));
                     });
    if (candidates.size() > static_cast<size_t>(options_.beam_width)) {
      candidates.resize(static_cast<size_t>(options_.beam_width));
    }
    for (VideoId video : candidates) {
      const LocalShotModel& local = model_.local(video);
      const double hop = model_.a2().at(
          static_cast<size_t>(path.current_video), static_cast<size_t>(video));
      for (int ti : CandidateStates(
               local, 0, static_cast<int>(local.num_states()) - 1, step,
               stats)) {
        const auto t = static_cast<size_t>(ti);
        const int next_global = model_.GlobalStateOf(local.states[t]);
        const double sim = scorer.StepSimilarity(next_global, step);
        const double weight = path.last_weight * hop * local.pi1[t] * sim;
        if (stats != nullptr) ++stats->states_visited;
        RefPath extended = path;
        extended.states.push_back(next_global);
        extended.edge_weights.push_back(weight);
        extended.last_weight = weight;
        extended.score_sum += weight;
        extended.crossed_video = true;
        extended.current_video = video;
        expansions.push_back(std::move(extended));
      }
    }
    return expansions;
  }

  bool TraverseVideo(VideoId video, const TemporalPattern& pattern,
                     const SimilarityScorer& scorer, RetrievalStats* stats,
                     RetrievedPattern* out) const {
    const LocalShotModel& local = model_.local(video);
    if (local.num_states() == 0) return false;
    RetrievalStats video_stats;
    ++video_stats.videos_considered;
    const auto beam = static_cast<size_t>(options_.beam_width);
    std::vector<RefPath> beam_paths;
    for (int ii :
         CandidateStates(local, 0, static_cast<int>(local.num_states()) - 1,
                         pattern.steps.front(), &video_stats)) {
      const auto i = static_cast<size_t>(ii);
      const int global = model_.GlobalStateOf(local.states[i]);
      const double weight =
          local.pi1[i] * scorer.StepSimilarity(global, pattern.steps.front());
      ++video_stats.states_visited;
      RefPath path;
      path.states = {global};
      path.edge_weights = {weight};
      path.last_weight = weight;
      path.score_sum = weight;
      path.current_video = video;
      beam_paths.push_back(std::move(path));
    }
    std::stable_sort(beam_paths.begin(), beam_paths.end(),
                     [](const RefPath& a, const RefPath& b) {
                       return a.last_weight > b.last_weight;
                     });
    if (beam_paths.size() > beam) {
      video_stats.beam_pruned += beam_paths.size() - beam;
      beam_paths.resize(beam);
    }
    for (size_t j = 1; j < pattern.size() && !beam_paths.empty(); ++j) {
      std::vector<RefPath> expansions;
      for (const RefPath& path : beam_paths) {
        std::vector<RefPath> within =
            ExpandWithinVideo(path, pattern.steps[j], scorer, &video_stats);
        if (within.empty() && options_.cross_video &&
            pattern.steps[j].max_gap < 0) {
          within =
              ExpandCrossVideo(path, pattern.steps[j], scorer, &video_stats);
        }
        for (RefPath& p : within) expansions.push_back(std::move(p));
      }
      std::stable_sort(expansions.begin(), expansions.end(),
                       [](const RefPath& a, const RefPath& b) {
                         return a.last_weight > b.last_weight;
                       });
      if (expansions.size() > beam) {
        video_stats.beam_pruned += expansions.size() - beam;
        expansions.resize(beam);
      }
      beam_paths = std::move(expansions);
    }
    bool found = false;
    if (!beam_paths.empty()) {
      const RefPath* best = &beam_paths.front();
      for (const RefPath& p : beam_paths) {
        if (p.score_sum > best->score_sum) best = &p;
      }
      out->shots.clear();
      for (int state : best->states) {
        out->shots.push_back(model_.ShotOfGlobalState(state));
      }
      out->edge_weights = best->edge_weights;
      out->score = best->score_sum;
      out->video = video;
      out->crosses_videos = best->crossed_video;
      ++video_stats.candidates_scored;
      found = true;
    }
    if (stats != nullptr) {
      stats->videos_considered += video_stats.videos_considered;
      stats->states_visited += video_stats.states_visited;
      stats->candidates_scored += video_stats.candidates_scored;
      stats->beam_pruned += video_stats.beam_pruned;
      stats->annotated_fallbacks += video_stats.annotated_fallbacks;
    }
    return found;
  }

  const HierarchicalModel& model_;
  const VideoCatalog& catalog_;
  TraversalOptions options_;
};

void ExpectIdenticalResults(const std::vector<RetrievedPattern>& expected,
                            const std::vector<RetrievedPattern>& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].shots, actual[i].shots) << label << " rank " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " rank " << i;
    EXPECT_EQ(expected[i].edge_weights, actual[i].edge_weights)
        << label << " rank " << i;
    EXPECT_EQ(expected[i].video, actual[i].video) << label << " rank " << i;
    EXPECT_EQ(expected[i].crosses_videos, actual[i].crosses_videos)
        << label << " rank " << i;
  }
}

struct Workload {
  std::string name;
  TemporalPattern pattern;
  TraversalOptions options;
};

std::vector<Workload> Workloads() {
  std::vector<Workload> workloads;
  {
    Workload w;
    w.name = "two_step_greedy";
    w.pattern = TemporalPattern::FromEvents({2, 0});
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "three_step_beam4";
    w.pattern = TemporalPattern::FromEvents({2, 0, 1});
    w.options.beam_width = 4;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "gap_bounded_beam2";
    w.pattern = TemporalPattern::FromEvents({2, 0});
    w.pattern.steps[1].max_gap = 3;
    w.options.beam_width = 2;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "cross_video_beam2";
    w.pattern = TemporalPattern::FromEvents({1, 3, 0});
    w.options.beam_width = 2;
    w.options.cross_video = true;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "similarity_only_beam8";
    w.pattern = TemporalPattern::FromEvents({2, 0});
    w.options.beam_width = 8;
    w.options.annotated_first = false;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "compound_alternatives";
    PatternStep first;
    first.alternatives = {{2, 0}, {1}};
    PatternStep second;
    second.alternatives = {{0}};
    w.pattern.steps = {first, second};
    w.options.beam_width = 3;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "top3_of_many";
    w.pattern = TemporalPattern::FromEvents({0, 2});
    w.options.beam_width = 4;
    w.options.max_results = 3;
    workloads.push_back(std::move(w));
  }
  return workloads;
}

class ReferenceEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReferenceEquivalenceTest, PlanLayerIsByteIdenticalToTheNaiveWalk) {
  const VideoCatalog catalog =
      testing::GeneratedSoccerCatalog(GetParam(), /*num_videos=*/14);
  auto built = ModelBuilder(catalog).Build();
  ASSERT_TRUE(built.ok());
  const HierarchicalModel model = std::move(built).value();

  for (const Workload& workload : Workloads()) {
    const ReferenceTraversal reference(model, catalog, workload.options);
    RetrievalStats ref_stats;
    const std::vector<RetrievedPattern> expected =
        reference.Retrieve(workload.pattern, &ref_stats);

    for (int threads : {1, 2, 4, 8}) {
      for (bool traced : {false, true}) {
        const std::string label =
            workload.name + " threads=" + std::to_string(threads) +
            (traced ? " traced" : "");
        QueryTrace trace;
        TraversalOptions options = workload.options;
        options.num_threads = threads;
        options.trace = traced ? &trace : nullptr;
        HmmmTraversal traversal(model, catalog, options);
        RetrievalStats stats;
        auto results = traversal.Retrieve(workload.pattern, &stats);
        ASSERT_TRUE(results.ok()) << label;
        ExpectIdenticalResults(expected, *results, label);

        // Deterministic cost counters match the naive walk exactly...
        EXPECT_EQ(stats.videos_considered, ref_stats.videos_considered)
            << label;
        EXPECT_EQ(stats.states_visited, ref_stats.states_visited) << label;
        EXPECT_EQ(stats.candidates_scored, ref_stats.candidates_scored)
            << label;
        EXPECT_EQ(stats.beam_pruned, ref_stats.beam_pruned) << label;
        EXPECT_EQ(stats.annotated_fallbacks, ref_stats.annotated_fallbacks)
            << label;
        EXPECT_EQ(stats.truncated, ref_stats.truncated) << label;
        // ...while the evaluation effort only shrinks: the memo removes
        // work the naive walk duplicated, and the cube-pruned frontier
        // charges a query-time evaluation only to cells whose weight is
        // actually consumed (plus each video's Step-6 argmax), never to
        // the cells its precomputed priorities prove away.
        EXPECT_LE(stats.sim_evaluations, ref_stats.sim_evaluations) << label;
        // Every grid cell resolves to exactly one of paid (heap_pops) or
        // proved-away (grid_cells_skipped).
        EXPECT_EQ(stats.states_visited,
                  stats.heap_pops + stats.grid_cells_skipped)
            << label;
        if (workload.options.beam_width == 1) {
          // A beam-1 walk follows a single path, so each (state, step)
          // pair is paid at most once: the memo never fires.
          EXPECT_EQ(stats.sim_memo_hits, 0u) << label;
        }
      }
    }

    // The per-walk cache scope makes every counter — including memo hits
    // and scorer evaluations — thread-count-invariant: re-run at 1 and 8
    // threads and demand full stats equality.
    TraversalOptions serial_options = workload.options;
    HmmmTraversal serial(model, catalog, serial_options);
    RetrievalStats serial_stats;
    ASSERT_TRUE(serial.Retrieve(workload.pattern, &serial_stats).ok());
    TraversalOptions wide_options = workload.options;
    wide_options.num_threads = 8;
    HmmmTraversal wide(model, catalog, wide_options);
    RetrievalStats wide_stats;
    ASSERT_TRUE(wide.Retrieve(workload.pattern, &wide_stats).ok());
    EXPECT_EQ(serial_stats.sim_evaluations, wide_stats.sim_evaluations)
        << workload.name;
    EXPECT_EQ(serial_stats.sim_memo_hits, wide_stats.sim_memo_hits)
        << workload.name;
    EXPECT_EQ(serial_stats.candidate_list_reuse,
              wide_stats.candidate_list_reuse)
        << workload.name;
    EXPECT_EQ(serial_stats.heap_pops, wide_stats.heap_pops) << workload.name;
    EXPECT_EQ(serial_stats.grid_cells_skipped, wide_stats.grid_cells_skipped)
        << workload.name;
  }
}

// The tentpole's acceptance sweep: the cube-pruned best-first traversal
// against the reference breadth-first walk across beams {1, 2, 8, 16},
// thread counts {1, 2, 4, 8} and both Eq.-14 kernels (runtime pick vs.
// forced scalar). Rankings, scores and edge weights must be
// byte-identical in every cell of the grid; the new heap_pops /
// grid_cells_skipped counters must be invariant across thread counts and
// kernel choices (they are per-walk deterministic and kernels produce
// identical bits), and every visited grid cell must resolve to exactly
// one of the two.
TEST_P(ReferenceEquivalenceTest, CubePrunedSweepIsByteIdenticalEverywhere) {
  const VideoCatalog catalog =
      testing::GeneratedSoccerCatalog(GetParam(), /*num_videos=*/14);
  auto built = ModelBuilder(catalog).Build();
  ASSERT_TRUE(built.ok());
  const HierarchicalModel model = std::move(built).value();
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});

  for (int beam : {1, 2, 8, 16}) {
    TraversalOptions ref_options;
    ref_options.beam_width = beam;
    const ReferenceTraversal reference(model, catalog, ref_options);
    RetrievalStats ref_stats;
    const std::vector<RetrievedPattern> expected =
        reference.Retrieve(pattern, &ref_stats);

    bool have_first = false;
    size_t first_heap_pops = 0;
    size_t first_skipped = 0;
    size_t first_evaluations = 0;
    for (bool force_scalar : {false, true}) {
      for (int threads : {1, 2, 4, 8}) {
        const std::string label =
            "beam=" + std::to_string(beam) +
            " threads=" + std::to_string(threads) +
            (force_scalar ? " kernel=scalar" : " kernel=auto");
        TraversalOptions options;
        options.beam_width = beam;
        options.num_threads = threads;
        options.scorer.force_scalar_kernel = force_scalar;
        HmmmTraversal traversal(model, catalog, options);
        RetrievalStats stats;
        auto results = traversal.Retrieve(pattern, &stats);
        ASSERT_TRUE(results.ok()) << label;
        ExpectIdenticalResults(expected, *results, label);

        // Structural counters are pinned to the reference walk.
        EXPECT_EQ(stats.states_visited, ref_stats.states_visited) << label;
        EXPECT_EQ(stats.beam_pruned, ref_stats.beam_pruned) << label;
        EXPECT_LE(stats.sim_evaluations, ref_stats.sim_evaluations) << label;
        EXPECT_EQ(stats.states_visited,
                  stats.heap_pops + stats.grid_cells_skipped)
            << label;

        // The pay/skip split is identical in every sweep cell: thread
        // count cannot move it (per-walk determinism) and neither can the
        // kernel (bit-identical sims select bit-identical winners).
        if (!have_first) {
          first_heap_pops = stats.heap_pops;
          first_skipped = stats.grid_cells_skipped;
          first_evaluations = stats.sim_evaluations;
          have_first = true;
        }
        EXPECT_EQ(stats.heap_pops, first_heap_pops) << label;
        EXPECT_EQ(stats.grid_cells_skipped, first_skipped) << label;
        EXPECT_EQ(stats.sim_evaluations, first_evaluations) << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedModels, ReferenceEquivalenceTest,
                         ::testing::Values(3u, 11u, 29u, 47u));

TEST(ReferenceEquivalenceTest, VideoOrderMatchesTheNaiveScan) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(11, 10);
  auto built = ModelBuilder(catalog).Build();
  ASSERT_TRUE(built.ok());
  const HierarchicalModel model = std::move(built).value();
  const ReferenceTraversal reference(model, catalog, TraversalOptions{});
  HmmmTraversal traversal(model, catalog);
  for (EventId e : {0, 1, 2, 3}) {
    const auto pattern = TemporalPattern::FromEvents({e, 0});
    EXPECT_EQ(traversal.VideoOrder(pattern), reference.VideoOrder(pattern))
        << "event " << e;
  }
}

}  // namespace
}  // namespace hmmm
