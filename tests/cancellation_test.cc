#include "common/cancellation.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/category_level.h"
#include "core/model_builder.h"
#include "retrieval/engine.h"
#include "retrieval/three_level.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

TEST(CancellationTokenTest, StartsClearAndCancelIsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, DeadlineHelpers) {
  EXPECT_FALSE(DeadlineExpired(kNoDeadline));
  EXPECT_TRUE(DeadlineExpired(std::chrono::steady_clock::now() -
                              std::chrono::seconds(1)));
  const auto soon = DeadlineAfter(std::chrono::hours(1));
  EXPECT_FALSE(DeadlineExpired(soon));
  EXPECT_LT(soon, kNoDeadline);
}

/// Same exact-equality helpers as parallel_retrieval_test: anytime
/// results must be byte-identical, not merely similar.
void ExpectIdenticalResults(const std::vector<RetrievedPattern>& expected,
                            const std::vector<RetrievedPattern>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].shots, actual[i].shots) << "rank " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << "rank " << i;
    EXPECT_EQ(expected[i].video, actual[i].video) << "rank " << i;
    EXPECT_EQ(expected[i].edge_weights, actual[i].edge_weights)
        << "rank " << i;
    EXPECT_EQ(expected[i].crosses_videos, actual[i].crosses_videos)
        << "rank " << i;
  }
}

/// Compares the deterministic cost counters (degraded/videos_skipped are
/// asserted separately — the prefix reference is not itself degraded).
void ExpectIdenticalCostCounters(const RetrievalStats& expected,
                                 const RetrievalStats& actual) {
  EXPECT_EQ(expected.videos_considered, actual.videos_considered);
  EXPECT_EQ(expected.states_visited, actual.states_visited);
  EXPECT_EQ(expected.sim_evaluations, actual.sim_evaluations);
  EXPECT_EQ(expected.candidates_scored, actual.candidates_scored);
  EXPECT_EQ(expected.beam_pruned, actual.beam_pruned);
  EXPECT_EQ(expected.annotated_fallbacks, actual.annotated_fallbacks);
  EXPECT_EQ(expected.truncated, actual.truncated);
}

class CancellationRetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/11, /*num_videos=*/20);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  /// Serial, no-deadline retrieval restricted to `order` — the reference
  /// an anytime result must match once its completed prefix is known.
  std::vector<RetrievedPattern> PrefixReference(
      const TemporalPattern& pattern, const std::vector<VideoId>& order,
      RetrievalStats* stats) const {
    HmmmTraversal serial(model_, catalog_, TraversalOptions{});
    auto reference = serial.RetrieveWithVideoOrder(pattern, order, stats);
    EXPECT_TRUE(reference.ok());
    return reference.ok() ? *reference : std::vector<RetrievedPattern>{};
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(CancellationRetrievalTest,
       PreCancelledTokenDegradesToEmptyAtEveryThreadCount) {
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  CancellationToken token;
  token.Cancel();
  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.num_threads = threads;
    options.cancellation = &token;
    HmmmTraversal traversal(model_, catalog_, options);
    RetrievalStats stats;
    auto results = traversal.Retrieve(pattern, &stats);
    ASSERT_TRUE(results.ok()) << threads << " threads";
    EXPECT_TRUE(results->empty()) << threads << " threads";
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.videos_skipped, catalog_.num_videos());
    EXPECT_EQ(stats.videos_considered, 0u);
  }
}

TEST_F(CancellationRetrievalTest, ExpiredDeadlineDegradesLikeCancellation) {
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  TraversalOptions options;
  options.num_threads = 4;
  options.deadline = std::chrono::steady_clock::now() - milliseconds(1);
  HmmmTraversal traversal(model_, catalog_, options);
  RetrievalStats stats;
  auto results = traversal.Retrieve(pattern, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.videos_skipped, catalog_.num_videos());
}

TEST_F(CancellationRetrievalTest, FarDeadlineMatchesNoDeadlineByteForByte) {
  // A deadline that never fires still routes the fan-out through the
  // cancellable collection path; the ranking and every cost counter must
  // not notice.
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  HmmmTraversal plain(model_, catalog_, TraversalOptions{});
  RetrievalStats plain_stats;
  auto reference = plain.Retrieve(pattern, &plain_stats);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());

  CancellationToken unfired;
  for (int threads : {1, 2, 4, 8}) {
    TraversalOptions options;
    options.num_threads = threads;
    options.deadline = DeadlineAfter(std::chrono::hours(1));
    options.cancellation = &unfired;
    HmmmTraversal traversal(model_, catalog_, options);
    RetrievalStats stats;
    auto results = traversal.Retrieve(pattern, &stats);
    ASSERT_TRUE(results.ok()) << threads << " threads";
    ExpectIdenticalResults(*reference, *results);
    ExpectIdenticalCostCounters(plain_stats, stats);
    EXPECT_FALSE(stats.degraded);
    EXPECT_EQ(stats.videos_skipped, 0u);
  }
}

TEST_F(CancellationRetrievalTest,
       AnytimeResultEqualsSerialRetrievalOverCompletedPrefix) {
  // The degradation contract, asserted from the outside: whatever prefix
  // the deadline left completed, the anytime ranking is byte-identical
  // to an undisturbed retrieval over exactly that prefix. The cutoff
  // itself is timing-dependent; the equality is not.
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  HmmmTraversal plain(model_, catalog_, TraversalOptions{});
  const std::vector<VideoId> order = plain.VideoOrder(pattern);
  ASSERT_EQ(order.size(), catalog_.num_videos());

  for (const auto budget :
       {microseconds(0), microseconds(200), microseconds(1000)}) {
    TraversalOptions options;
    options.num_threads = 4;
    options.deadline = DeadlineAfter(budget);
    HmmmTraversal traversal(model_, catalog_, options);
    RetrievalStats stats;
    auto results = traversal.RetrieveWithVideoOrder(pattern, order, &stats);
    ASSERT_TRUE(results.ok());

    ASSERT_LE(stats.videos_skipped, order.size());
    const std::vector<VideoId> prefix(
        order.begin(), order.end() - static_cast<long>(stats.videos_skipped));
    RetrievalStats reference_stats;
    const auto reference = PrefixReference(pattern, prefix, &reference_stats);
    ExpectIdenticalResults(reference, *results);
    ExpectIdenticalCostCounters(reference_stats, stats);
    EXPECT_EQ(stats.degraded, stats.videos_skipped > 0);
  }
}

TEST_F(CancellationRetrievalTest, MidFlightCancelStillYieldsConsistentPrefix) {
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  HmmmTraversal plain(model_, catalog_, TraversalOptions{});
  const std::vector<VideoId> order = plain.VideoOrder(pattern);

  CancellationToken token;
  TraversalOptions options;
  options.num_threads = 4;
  options.cancellation = &token;
  HmmmTraversal traversal(model_, catalog_, options);

  std::thread canceller([&token] {
    std::this_thread::sleep_for(microseconds(300));
    token.Cancel();
  });
  RetrievalStats stats;
  auto results = traversal.RetrieveWithVideoOrder(pattern, order, &stats);
  canceller.join();
  ASSERT_TRUE(results.ok());

  ASSERT_LE(stats.videos_skipped, order.size());
  const std::vector<VideoId> prefix(
      order.begin(), order.end() - static_cast<long>(stats.videos_skipped));
  RetrievalStats reference_stats;
  const auto reference = PrefixReference(pattern, prefix, &reference_stats);
  ExpectIdenticalResults(reference, *results);
  ExpectIdenticalCostCounters(reference_stats, stats);
}

TEST_F(CancellationRetrievalTest, ThreeLevelHonorsCancellation) {
  auto categories = BuildCategoryLevel(model_, CategoryLevelOptions{});
  ASSERT_TRUE(categories.ok());
  const auto pattern = TemporalPattern::FromEvents({0});

  // Undisturbed three-level retrieval as the reference.
  TraversalOptions plain_options;
  ThreeLevelTraversal plain(model_, catalog_, *categories, plain_options);
  RetrievalStats plain_stats;
  auto reference = plain.Retrieve(pattern, &plain_stats);
  ASSERT_TRUE(reference.ok());
  EXPECT_FALSE(plain_stats.degraded);

  // Pre-cancelled: the cluster chaining stops before picking anything,
  // every would-be-visited video counts as skipped, and the result is
  // the (empty) anytime ranking, still OK.
  CancellationToken token;
  token.Cancel();
  TraversalOptions options;
  options.cancellation = &token;
  ThreeLevelTraversal pruned(model_, catalog_, *categories, options);
  RetrievalStats stats;
  auto results = pruned.Retrieve(pattern, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  EXPECT_TRUE(stats.degraded);
  EXPECT_GT(stats.videos_skipped, 0u);

  // A deadline that cannot fire changes nothing.
  TraversalOptions far;
  far.deadline = DeadlineAfter(std::chrono::hours(1));
  ThreeLevelTraversal relaxed(model_, catalog_, *categories, far);
  RetrievalStats far_stats;
  auto same = relaxed.Retrieve(pattern, &far_stats);
  ASSERT_TRUE(same.ok());
  ExpectIdenticalResults(*reference, *same);
  EXPECT_FALSE(far_stats.degraded);
}

class AdmissionControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/11, /*num_videos=*/20);
    auto engine = RetrievalEngine::Create(catalog_, /*builder_options=*/{},
                                          /*traversal_options=*/{},
                                          /*query_cache_entries=*/0);
    ASSERT_TRUE(engine.ok());
    engine_.emplace(std::move(engine).value());
  }

  VideoCatalog catalog_;
  std::optional<RetrievalEngine> engine_;
};

TEST_F(AdmissionControlTest, OptionsRoundTrip) {
  AdmissionOptions options;
  options.max_concurrent = 3;
  options.max_queued = 7;
  options.max_queue_wait = milliseconds(123);
  engine_->set_admission_options(options);
  const AdmissionOptions got = engine_->admission_options();
  EXPECT_EQ(got.max_concurrent, 3);
  EXPECT_EQ(got.max_queued, 7);
  EXPECT_EQ(got.max_queue_wait, milliseconds(123));
}

TEST_F(AdmissionControlTest, UnlimitedByDefault) {
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      auto results = engine_->Retrieve(pattern);
      if (!results.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(AdmissionControlTest, BoundedQueueAdmitsEveryoneWhoFits) {
  // One slot, a queue big enough for every contender and a generous
  // wait: serialized execution, but nobody is shed.
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 8;
  options.max_queue_wait = std::chrono::milliseconds(10000);
  engine_->set_admission_options(options);

  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int run = 0; run < 3; ++run) {
        auto results = engine_->Retrieve(pattern);
        if (!results.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(AdmissionControlTest, SaturationShedsLoadWithResourceExhausted) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 0;  // no parking: reject the moment we are busy
  options.max_queue_wait = milliseconds(0);
  engine_->set_admission_options(options);

  // Two threads querying back-to-back over one slot: every overlap sheds
  // the loser with kResourceExhausted. Rejections are counted from BOTH
  // sides because scheduling decides which side gets starved — on a
  // single core the thread that establishes its query cadence first
  // holds the slot through its whole timeslice, and the other side only
  // ever sees instant rejections (so a probe that counts its own
  // rejections alone is correct or dead-wrong depending on who won the
  // initial race).
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  std::atomic<bool> stop{false};
  std::atomic<int> rejections{0};
  std::atomic<bool> wrong_code{false};
  const auto contender = [&] {
    while (!stop.load()) {
      auto results = engine_->Retrieve(pattern);
      if (results.ok()) continue;
      if (results.status().code() == StatusCode::kResourceExhausted) {
        rejections.fetch_add(1);
        stop.store(true);
      } else {
        wrong_code.store(true);
        stop.store(true);
      }
    }
  };
  std::thread first(contender);
  std::thread second(contender);
  // Watchdog so a scheduling pathology fails the assertion below instead
  // of hanging the suite.
  for (int i = 0; i < 5000 && !stop.load(); ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  stop.store(true);
  first.join();
  second.join();
  EXPECT_FALSE(wrong_code.load());
  EXPECT_GT(rejections.load(), 0);
  EXPECT_NE(engine_->DumpMetricsPrometheus().find(
                "hmmm_admission_rejected_total"),
            std::string::npos);
}

class EngineDegradedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/11, /*num_videos=*/20);
  }

  VideoCatalog catalog_;
};

TEST_F(EngineDegradedTest, DegradedResultsAreNeverCached) {
  CancellationToken token;
  token.Cancel();
  TraversalOptions cancelled_options;
  cancelled_options.cancellation = &token;
  auto engine = RetrievalEngine::Create(catalog_, /*builder_options=*/{},
                                        cancelled_options,
                                        /*query_cache_entries=*/8);
  ASSERT_TRUE(engine.ok());
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  RetrievalStats stats;
  auto degraded = engine->Retrieve(pattern, &stats);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(stats.degraded);
  EXPECT_TRUE(degraded->empty());
  // The anytime prefix must not poison the cache.
  EXPECT_EQ(engine->cache_stats().entries, 0u);

  // Un-cancelled options: the full ranking is computed and cached.
  engine->set_traversal_options(TraversalOptions{});
  RetrievalStats full_stats;
  auto full = engine->Retrieve(pattern, &full_stats);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full_stats.degraded);
  EXPECT_FALSE(full->empty());
  EXPECT_EQ(engine->cache_stats().entries, 1u);

  // And the degraded query was counted.
  const std::string dump = engine->DumpMetricsPrometheus();
  EXPECT_NE(dump.find("hmmm_queries_degraded_total 1"), std::string::npos)
      << dump;
}

}  // namespace
}  // namespace hmmm
