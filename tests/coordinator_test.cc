#include "coordinator/coordinator_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/catalog_partition.h"
#include "api/video_database.h"
#include "client/query_client.h"
#include "coordinator/shard_router.h"
#include "server/query_server.h"
#include "server/shard_map.h"
#include "test_util.h"

namespace hmmm {
namespace {

using ::hmmm::testing::GeneratedSoccerCatalog;

// -- ShardBudgetMs --------------------------------------------------------

TEST(ShardBudgetTest, UnboundedPassesThrough) {
  CoordinatorOptions options;
  EXPECT_EQ(ShardBudgetMs(-1, options), -1);
}

TEST(ShardBudgetTest, ZeroStaysZero) {
  CoordinatorOptions options;
  EXPECT_EQ(ShardBudgetMs(0, options), 0);
}

TEST(ShardBudgetTest, SubtractsMergeReserve) {
  CoordinatorOptions options;
  options.merge_reserve_ms = 5;
  EXPECT_EQ(ShardBudgetMs(100, options), 95);
}

TEST(ShardBudgetTest, FlooredAtMinimum) {
  CoordinatorOptions options;
  options.merge_reserve_ms = 5;
  options.min_shard_budget_ms = 1;
  EXPECT_EQ(ShardBudgetMs(3, options), 1);
  EXPECT_EQ(ShardBudgetMs(5, options), 1);
  EXPECT_EQ(ShardBudgetMs(6, options), 1);
  EXPECT_EQ(ShardBudgetMs(7, options), 2);
}

// -- Merge determinism ----------------------------------------------------

RetrievedPattern Pattern(VideoId video, double score) {
  RetrievedPattern pattern;
  pattern.video = video;
  pattern.score = score;
  pattern.shots = {video * 10, video * 10 + 1};
  return pattern;
}

TEST(MergeRankedResultsTest, TotalOrderAcrossShards) {
  std::vector<std::vector<RetrievedPattern>> per_shard(2);
  per_shard[0] = {Pattern(0, 0.5), Pattern(1, 0.9)};
  per_shard[1] = {Pattern(2, 0.7), Pattern(3, 0.5)};
  const std::vector<RetrievedPattern> merged =
      MergeRankedResults(std::move(per_shard), 20);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].video, 1);
  EXPECT_EQ(merged[1].video, 2);
  // Exact score tie 0.5: global video order breaks it.
  EXPECT_EQ(merged[2].video, 0);
  EXPECT_EQ(merged[3].video, 3);
}

TEST(MergeRankedResultsTest, Truncates) {
  std::vector<std::vector<RetrievedPattern>> per_shard(1);
  per_shard[0] = {Pattern(0, 0.3), Pattern(1, 0.8), Pattern(2, 0.5)};
  const std::vector<RetrievedPattern> merged =
      MergeRankedResults(std::move(per_shard), 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].video, 1);
  EXPECT_EQ(merged[1].video, 2);
}

TEST(MergeRankedResultsTest, InvariantUnderShardSplit) {
  // Property: however the per-video candidates are split into shard
  // lists, the merge is the same — it only depends on the candidate set.
  std::vector<RetrievedPattern> all;
  for (VideoId v = 0; v < 12; ++v) {
    // Deliberate duplicate scores across videos to exercise tie-breaks.
    all.push_back(Pattern(v, (v % 4) * 0.25));
  }
  std::vector<std::vector<RetrievedPattern>> one_shard(1);
  one_shard[0] = all;
  const std::vector<RetrievedPattern> reference =
      MergeRankedResults(std::move(one_shard), 20);

  for (int num_shards : {2, 3, 4, 12}) {
    std::vector<std::vector<RetrievedPattern>> split(
        static_cast<size_t>(num_shards));
    for (size_t i = 0; i < all.size(); ++i) {
      split[i % static_cast<size_t>(num_shards)].push_back(all[i]);
    }
    const std::vector<RetrievedPattern> merged =
        MergeRankedResults(std::move(split), 20);
    ASSERT_EQ(merged.size(), reference.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].video, reference[i].video)
          << num_shards << " shards, rank " << i;
      EXPECT_EQ(merged[i].score, reference[i].score);
    }
  }
}

TEST(MergeQbeResultsTest, StableAcrossEqualSimilarities) {
  std::vector<std::vector<QbeResult>> per_shard(2);
  per_shard[0] = {{10, 0.9}, {11, 0.5}};
  per_shard[1] = {{20, 0.9}, {21, 0.5}};
  const std::vector<QbeResult> merged =
      MergeQbeResults(std::move(per_shard), 20);
  ASSERT_EQ(merged.size(), 4u);
  // Ties keep concatenation (= global state) order: shard 0 before 1.
  EXPECT_EQ(merged[0].shot, 10);
  EXPECT_EQ(merged[1].shot, 20);
  EXPECT_EQ(merged[2].shot, 11);
  EXPECT_EQ(merged[3].shot, 21);
}

// -- ShardRouter ----------------------------------------------------------

ShardMap RouterMap() {
  ShardMap map;
  map.total_videos = 3;
  map.total_shots = 5;
  ShardMapEntry a;
  a.endpoint = "127.0.0.1:9001";
  a.video_begin = 0;
  a.video_end = 2;
  a.shot_to_global = {0, 2, 4};
  ShardMapEntry b;
  b.endpoint = "127.0.0.1:9002";
  b.video_begin = 2;
  b.video_end = 3;
  b.shot_to_global = {1, 3};
  map.shards = {a, b};
  return map;
}

TEST(ShardRouterTest, RoutesVideosAndShots) {
  StatusOr<ShardRouter> router = ShardRouter::Create(RouterMap());
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  EXPECT_EQ(router->num_shards(), 2);
  EXPECT_EQ(router->ShardOfVideo(0), 0);
  EXPECT_EQ(router->ShardOfVideo(1), 0);
  EXPECT_EQ(router->ShardOfVideo(2), 1);
  EXPECT_EQ(router->ShardOfVideo(-1), -1);
  EXPECT_EQ(router->ShardOfVideo(3), -1);

  EXPECT_EQ(router->LocateShot(0), (std::pair<int, ShotId>{0, 0}));
  EXPECT_EQ(router->LocateShot(1), (std::pair<int, ShotId>{1, 0}));
  EXPECT_EQ(router->LocateShot(4), (std::pair<int, ShotId>{0, 2}));
  EXPECT_EQ(router->LocateShot(5), (std::pair<int, ShotId>{-1, -1}));

  EXPECT_EQ(router->ToGlobalVideo(1, 0), 2);
  EXPECT_EQ(router->ToLocalVideo(0, 1), 1);
  EXPECT_EQ(router->ToGlobalShot(0, 1), 2);
  EXPECT_EQ(router->ToGlobalShot(1, 1), 3);
  EXPECT_EQ(router->ToGlobalShot(1, 2), -1);
  EXPECT_EQ(router->VideosOwnedBy(0), 2u);
  EXPECT_EQ(router->VideosOwnedBy(1), 1u);
}

TEST(ShardRouterTest, RejectsInvalidMap) {
  ShardMap map = RouterMap();
  map.shards[1].video_begin = 0;  // overlap
  EXPECT_FALSE(ShardRouter::Create(std::move(map)).ok());
}

// -- Loopback scatter-gather ----------------------------------------------

/// A live sharded deployment over the loopback: the global archive, its
/// N-shard partition served by N real QueryServers, and the serving map
/// pointing at them.
struct Deployment {
  std::unique_ptr<VideoDatabase> global;
  std::vector<std::unique_ptr<VideoDatabase>> shard_dbs;
  std::vector<std::unique_ptr<QueryServer>> servers;
  ShardMap map;

  ~Deployment() {
    for (auto& server : servers) {
      if (server != nullptr) server->Shutdown();
    }
  }
};

std::unique_ptr<Deployment> MakeDeployment(int num_shards) {
  auto deployment = std::make_unique<Deployment>();
  StatusOr<VideoDatabase> global =
      VideoDatabase::Create(GeneratedSoccerCatalog(3, 8));
  HMMM_CHECK(global.ok());
  deployment->global =
      std::make_unique<VideoDatabase>(std::move(global).value());

  StatusOr<std::vector<CatalogShard>> shards = PartitionForServing(
      deployment->global->catalog(), deployment->global->model(), num_shards);
  HMMM_CHECK(shards.ok());
  deployment->map =
      ShardMapFromPartition(*shards, deployment->global->catalog());
  for (size_t s = 0; s < shards->size(); ++s) {
    CatalogShard& shard = (*shards)[s];
    StatusOr<VideoDatabase> db = VideoDatabase::CreateWithModel(
        std::move(shard.catalog), std::move(shard.model));
    HMMM_CHECK(db.ok());
    deployment->shard_dbs.push_back(
        std::make_unique<VideoDatabase>(std::move(db).value()));
    QueryServerOptions options;
    options.port = 0;
    auto server = std::make_unique<QueryServer>(
        deployment->shard_dbs.back().get(), options);
    HMMM_CHECK(server->Start().ok());
    deployment->map.shards[s].endpoint =
        "127.0.0.1:" + std::to_string(server->port());
    deployment->servers.push_back(std::move(server));
  }
  return deployment;
}

void ExpectSameRanking(const std::vector<RetrievedPattern>& actual,
                       const std::vector<RetrievedPattern>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].video, expected[i].video) << "rank " << i;
    EXPECT_EQ(actual[i].shots, expected[i].shots) << "rank " << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
    EXPECT_EQ(actual[i].edge_weights, expected[i].edge_weights)
        << "rank " << i;
  }
}

TEST(CoordinatorTest, ByteIdenticalToSingleProcessAcrossShardCounts) {
  const std::vector<std::string> queries = {"free_kick ; goal", "goal",
                                            "corner_kick ; goal"};
  for (int num_shards : {1, 2, 4}) {
    std::unique_ptr<Deployment> deployment = MakeDeployment(num_shards);
    StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
        CoordinatorService::Create(deployment->map);
    ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

    for (const std::string& query : queries) {
      StatusOr<std::vector<RetrievedPattern>> reference =
          deployment->global->Query(query);
      ASSERT_TRUE(reference.ok());

      TemporalQueryRequest request;
      request.text = query;
      StatusOr<TemporalQueryResponse> response =
          (*coordinator)->TemporalQuery(request, nullptr);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_FALSE(response->degraded);
      EXPECT_EQ(response->videos_skipped, 0u);
      ExpectSameRanking(response->results, *reference);
    }
  }
}

TEST(CoordinatorTest, QbeByteIdentical) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  QbeRequest request;
  request.features = testing::FeatureVector(
      deployment->global->catalog().num_features(), 0.1, {0, 2}, 0.9);
  StatusOr<std::vector<QbeResult>> reference =
      deployment->global->QueryByExample(request.features);
  ASSERT_TRUE(reference.ok());

  StatusOr<QbeResponse> response = (*coordinator)->QueryByExample(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->results.size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(response->results[i].shot, (*reference)[i].shot);
    EXPECT_EQ(response->results[i].similarity, (*reference)[i].similarity);
  }
}

TEST(CoordinatorTest, DeadShardDegradesInsteadOfFailing) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(3);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  // Kill shard 1 (owns 3 of the 8 videos).
  deployment->servers[1]->Shutdown();
  const size_t killed_share =
      (*coordinator)->router().VideosOwnedBy(1);

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  request.budget_ms = 5000;
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->videos_skipped, killed_share);
  // Survivors still answer: no result from shard 1's video range.
  EXPECT_FALSE(response->results.empty());
  for (const RetrievedPattern& result : response->results) {
    EXPECT_TRUE(result.video < 3 || result.video >= 6) << result.video;
  }
}

TEST(CoordinatorTest, AllShardsDeadIsDegradedEmptyNotError) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());
  for (auto& server : deployment->servers) server->Shutdown();

  TemporalQueryRequest request;
  request.text = "goal";
  request.budget_ms = 5000;
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->degraded);
  EXPECT_TRUE(response->results.empty());
  EXPECT_EQ(response->videos_skipped,
            static_cast<uint64_t>(deployment->map.total_videos));
}

TEST(CoordinatorTest, MalformedQueryIsAnErrorNotDegradation) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  TemporalQueryRequest request;
  request.text = "";  // parser: invalid argument
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);

  request.text = "definitely_not_an_event ; goal";  // parser: not found
  response = (*coordinator)->TemporalQuery(request, nullptr);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST(CoordinatorTest, StatsAggregateAcrossShards) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  request.want_stats = true;
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->has_stats);
  // Every video is considered by exactly one shard.
  RetrievalStats reference_stats;
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text, &reference_stats);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(response->stats.videos_considered,
            reference_stats.videos_considered);
  EXPECT_EQ(response->stats.candidates_scored,
            reference_stats.candidates_scored);
}

TEST(CoordinatorTest, MarkPositiveRoutesToOwningShard) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(3);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  TemporalQueryRequest query;
  query.text = "free_kick ; goal";
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(query, nullptr);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response->results.empty());

  // Pick a result owned by the last shard to prove non-trivial routing.
  const RetrievedPattern* picked = nullptr;
  for (const RetrievedPattern& result : response->results) {
    if ((*coordinator)->router().ShardOfVideo(result.video) == 2) {
      picked = &result;
      break;
    }
  }
  if (picked == nullptr) picked = &response->results.front();

  // Success proves the id remap: the owning shard's database only holds
  // its own (local) video/shot ids, so an untranslated global pattern
  // would be rejected as out of range.
  MarkPositiveRequest feedback;
  feedback.pattern = *picked;
  StatusOr<MarkPositiveResponse> marked =
      (*coordinator)->MarkPositive(feedback);
  ASSERT_TRUE(marked.ok()) << marked.status().ToString();

  MarkPositiveRequest bogus;
  bogus.pattern.video = 999;
  bogus.pattern.shots = {0};
  StatusOr<MarkPositiveResponse> rejected =
      (*coordinator)->MarkPositive(bogus);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNotFound);
}

TEST(CoordinatorTest, TrainBroadcastsAndHealthAggregates) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  StatusOr<TrainResponse> trained = (*coordinator)->Train();
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  StatusOr<HealthResponse> health = (*coordinator)->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->videos,
            static_cast<uint64_t>(deployment->map.total_videos));
  EXPECT_EQ(health->shots,
            static_cast<uint64_t>(deployment->map.total_shots));
}

TEST(CoordinatorTest, MetricsExposeCoordinatorFamilies) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  TemporalQueryRequest request;
  request.text = "goal";
  ASSERT_TRUE((*coordinator)->TemporalQuery(request, nullptr).ok());

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->prometheus_text.find("hmmm_coordinator_shards"),
            std::string::npos);
  EXPECT_NE(
      metrics->prometheus_text.find("hmmm_coordinator_shard_latency_ms"),
      std::string::npos);
  EXPECT_NE(metrics->prometheus_text.find("shard=\"1\""), std::string::npos);
}

TEST(CoordinatorTest, WireFrontEndServesMergedArchive) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorServer>> server =
      CoordinatorServer::Create(deployment->map);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->Start().ok());

  QueryClientOptions client_options;
  client_options.port = (*server)->port();
  QueryClient client(client_options);

  StatusOr<HealthResponse> health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->videos,
            static_cast<uint64_t>(deployment->map.total_videos));

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<TemporalQueryResponse> response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());
  ExpectSameRanking(response->results, *reference);

  (*server)->Shutdown();
}

TEST(CoordinatorTest, CreateRejectsBadEndpoints) {
  ShardMap map = RouterMap();
  map.shards[0].endpoint = "";
  EXPECT_FALSE(CoordinatorService::Create(map).ok());
  map = RouterMap();
  map.shards[1].endpoint = "localhost";  // no port
  EXPECT_FALSE(CoordinatorService::Create(map).ok());
  map = RouterMap();
  map.shards[1].endpoint = "localhost:99999";
  EXPECT_FALSE(CoordinatorService::Create(map).ok());
}

}  // namespace
}  // namespace hmmm
