#include "coordinator/circuit_breaker.h"

#include <gtest/gtest.h>

#include <chrono>

namespace hmmm {
namespace {

using State = CircuitBreaker::State;

/// All transitions are driven by injected time points, so the tests
/// never sleep: `At(ms)` is an absolute instant on a fake steady clock.
CircuitBreaker::TimePoint At(int64_t ms) {
  return CircuitBreaker::TimePoint{} + std::chrono::milliseconds(ms);
}

CircuitBreaker::Options SmallOptions() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.success_threshold = 2;
  options.open_cooldown = std::chrono::milliseconds(100);
  options.half_open_max_probes = 1;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker breaker{SmallOptions()};
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(At(0)));
  EXPECT_EQ(breaker.rejected_total(), 0u);
}

TEST(CircuitBreakerTest, TripsOpenAfterConsecutiveFailures) {
  CircuitBreaker breaker{SmallOptions()};
  breaker.RecordFailure(At(1));
  breaker.RecordFailure(At(2));
  EXPECT_EQ(breaker.state(), State::kClosed);
  breaker.RecordFailure(At(3));
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.opened_total(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker{SmallOptions()};
  breaker.RecordFailure(At(1));
  breaker.RecordFailure(At(2));
  breaker.RecordSuccess(At(3));  // streak broken
  breaker.RecordFailure(At(4));
  breaker.RecordFailure(At(5));
  EXPECT_EQ(breaker.state(), State::kClosed);
  breaker.RecordFailure(At(6));
  EXPECT_EQ(breaker.state(), State::kOpen);
}

TEST(CircuitBreakerTest, OpenRejectsUntilCooldownElapses) {
  CircuitBreaker breaker{SmallOptions()};
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(At(10));
  ASSERT_EQ(breaker.state(), State::kOpen);

  EXPECT_FALSE(breaker.AllowRequest(At(50)));
  EXPECT_FALSE(breaker.AllowRequest(At(109)));
  EXPECT_EQ(breaker.rejected_total(), 2u);

  // Cooldown elapsed: the next AllowRequest transitions to HalfOpen and
  // admits exactly one probe.
  EXPECT_TRUE(breaker.AllowRequest(At(110)));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_EQ(breaker.half_opened_total(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenLimitsConcurrentProbes) {
  CircuitBreaker breaker{SmallOptions()};
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(At(0));
  ASSERT_TRUE(breaker.AllowRequest(At(100)));  // probe slot taken

  // The slot is occupied until the probe resolves; further requests are
  // refused rather than piling onto a possibly-dead endpoint.
  EXPECT_FALSE(breaker.AllowRequest(At(101)));
  EXPECT_EQ(breaker.rejected_total(), 1u);

  breaker.RecordSuccess(At(102));  // releases the slot
  EXPECT_TRUE(breaker.AllowRequest(At(103)));
}

TEST(CircuitBreakerTest, HalfOpenClosesAfterSuccessThreshold) {
  CircuitBreaker breaker{SmallOptions()};
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(At(0));
  ASSERT_TRUE(breaker.AllowRequest(At(100)));
  breaker.RecordSuccess(At(101));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);  // needs 2 successes

  ASSERT_TRUE(breaker.AllowRequest(At(102)));
  breaker.RecordSuccess(At(103));
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_EQ(breaker.closed_total(), 1u);
  EXPECT_TRUE(breaker.AllowRequest(At(104)));
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker{SmallOptions()};
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(At(0));
  ASSERT_TRUE(breaker.AllowRequest(At(100)));
  breaker.RecordFailure(At(105));
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.opened_total(), 2u);

  // The cooldown restarts from the reopening failure, not the original
  // trip: 100ms after the At(105) failure, not after At(0).
  EXPECT_FALSE(breaker.AllowRequest(At(150)));
  EXPECT_TRUE(breaker.AllowRequest(At(205)));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
}

TEST(CircuitBreakerTest, FullRecoveryCycleCounters) {
  CircuitBreaker breaker{SmallOptions()};
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(At(0));
  EXPECT_FALSE(breaker.AllowRequest(At(1)));
  ASSERT_TRUE(breaker.AllowRequest(At(100)));
  breaker.RecordSuccess(At(101));
  ASSERT_TRUE(breaker.AllowRequest(At(102)));
  breaker.RecordSuccess(At(103));

  EXPECT_EQ(breaker.opened_total(), 1u);
  EXPECT_EQ(breaker.half_opened_total(), 1u);
  EXPECT_EQ(breaker.closed_total(), 1u);
  EXPECT_EQ(breaker.rejected_total(), 1u);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreaker::StateName(State::kClosed), "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(State::kOpen), "open");
  EXPECT_STREQ(CircuitBreaker::StateName(State::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace hmmm
