#include "observability/query_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/model_builder.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

TEST(QueryTraceTest, RecordsSpanTreeWithCounters) {
  QueryTrace trace;
  {
    ScopedSpan root(&trace, "root");
    // Explicit sort keys override insertion order among siblings.
    ScopedSpan late(&trace, "late", root.id(), /*sort_key=*/5);
    ScopedSpan early(&trace, "early", root.id(), /*sort_key=*/2);
    early.Counter("n", 7);
  }
  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[1].name, "early");
  EXPECT_EQ(spans[2].name, "late");
  for (const TraceSpan& span : spans) EXPECT_TRUE(span.finished);
  ASSERT_EQ(spans[1].counters.size(), 1u);
  EXPECT_EQ(spans[1].counters[0].first, "n");
  EXPECT_EQ(spans[1].counters[0].second, 7u);

  const std::string tree = trace.RenderTree();
  EXPECT_NE(tree.find("root"), std::string::npos);
  ASSERT_NE(tree.find("  early"), std::string::npos);
  ASSERT_NE(tree.find("  late"), std::string::npos);
  EXPECT_LT(tree.find("  early"), tree.find("  late"));

  const std::string jsonl = trace.RenderJsonl();
  EXPECT_NE(jsonl.find("\"name\":\"early\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"counters\":{\"n\":7}"), std::string::npos);
  // One line per span.
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
}

TEST(QueryTraceTest, RepeatedCounterNamesAccumulate) {
  // Documented contract: counter names are unique within a span and
  // values are additive, so shard-merge paths can tally into one entry.
  QueryTrace trace;
  const int id = trace.BeginSpan("merge");
  trace.AddCounter(id, "videos_skipped", 3);
  trace.AddCounter(id, "videos_skipped", 4);
  trace.AddCounter(id, "other", 1);
  trace.EndSpan(id);
  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].counters.size(), 2u);
  EXPECT_EQ(spans[0].counters[0].first, "videos_skipped");
  EXPECT_EQ(spans[0].counters[0].second, 7u);
  EXPECT_NE(trace.RenderJsonl().find("\"videos_skipped\":7"),
            std::string::npos);
}

TEST(QueryTraceTest, RepeatedAttributeNamesOverwrite) {
  QueryTrace trace;
  const int id = trace.BeginSpan("tagged");
  trace.AddAttribute(id, "shard", "0");
  trace.AddAttribute(id, "shard", "2");
  trace.AddAttribute(id, "endpoint", "127.0.0.1:9001");
  trace.EndSpan(id);
  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attributes.size(), 2u);
  EXPECT_EQ(spans[0].attributes[0].first, "shard");
  EXPECT_EQ(spans[0].attributes[0].second, "2");
  EXPECT_NE(trace.RenderJsonl().find("\"shard\":\"2\""), std::string::npos);
}

TEST(QueryTraceTest, ReparentRootsAdoptsOrphanPhases) {
  // The serving layer opens its per-request span, runs the traversal
  // (whose phase spans open as roots), then adopts them.
  QueryTrace trace;
  const int server = trace.BeginSpan("server_query");
  const int phase1 = trace.BeginSpan("step2_video_order");
  trace.EndSpan(phase1);
  const int phase2 = trace.BeginSpan("step8_9_merge_rank");
  trace.EndSpan(phase2);
  trace.ReparentRoots(server);
  trace.EndSpan(server);
  for (const TraceSpan& span : trace.Spans()) {
    if (span.id == server) {
      EXPECT_EQ(span.parent, -1);
    } else {
      EXPECT_EQ(span.parent, server);
    }
  }
  const std::string tree = trace.RenderTree();
  EXPECT_LT(tree.find("server_query"), tree.find("  step2_video_order"));
}

TEST(QueryTraceTest, FreeRenderersTreatUnknownParentsAsRoots) {
  std::vector<TraceSpan> spans;
  TraceSpan orphan;
  orphan.name = "adrift";
  orphan.id = 42;
  orphan.parent = 999;  // no such span in the forest
  orphan.finished = true;
  spans.push_back(orphan);
  TraceSpan child;
  child.name = "leaf";
  child.id = 43;
  child.parent = 42;
  child.finished = true;
  spans.push_back(child);
  const std::string tree = RenderSpanTree(spans);
  EXPECT_EQ(tree.rfind("adrift", 0), 0u);  // rendered at depth 0
  EXPECT_NE(tree.find("  leaf"), std::string::npos);
  const std::string jsonl = RenderSpansJsonl(spans);
  EXPECT_NE(jsonl.find("\"name\":\"adrift\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"depth\":1"), std::string::npos);
}

TEST(QueryTraceTest, StartOffsetsAreRelativeToTheFirstSpan) {
  QueryTrace trace;
  const int first = trace.BeginSpan("first");
  const int second = trace.BeginSpan("second");
  trace.EndSpan(second);
  trace.EndSpan(first);
  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].start_offset_ms, 0.0);
  EXPECT_GE(spans[1].start_offset_ms, 0.0);
}

TEST(QueryTraceTest, NullTraceScopedSpanIsANoOp) {
  ScopedSpan span(nullptr, "nothing");
  span.Counter("x", 1);
  span.End();
  EXPECT_EQ(span.id(), -1);
}

TEST(QueryTraceTest, ClearResetsTheTrace) {
  QueryTrace trace;
  { ScopedSpan span(&trace, "a"); }
  EXPECT_EQ(trace.Spans().size(), 1u);
  trace.Clear();
  EXPECT_TRUE(trace.Spans().empty());
  EXPECT_EQ(trace.RenderTree(), "");
}

// -- Traversal integration ------------------------------------------------

/// The comparable skeleton of a trace: per-span name + counters in
/// pre-order. Span ids, parents and wall times legitimately differ across
/// thread counts; names, structure and the deterministic counters must
/// not. The fan-out's "candidates" tally is excluded: each shard retains
/// its own top-K, so the pre-merge union varies with the shard count.
using SpanSkeleton =
    std::pair<std::string, std::vector<std::pair<std::string, uint64_t>>>;

std::vector<SpanSkeleton> Skeleton(const QueryTrace& trace) {
  std::vector<SpanSkeleton> out;
  for (const TraceSpan& span : trace.Spans()) {
    std::vector<std::pair<std::string, uint64_t>> counters;
    for (const auto& counter : span.counters) {
      if (span.name == "step7_video_fanout" &&
          counter.first == "candidates") {
        continue;
      }
      counters.push_back(counter);
    }
    out.emplace_back(span.name, std::move(counters));
  }
  return out;
}

class TracedRetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/11, /*num_videos=*/12);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(TracedRetrievalTest, SerialWalkProducesThePaperPhaseStructure) {
  QueryTrace trace;
  TraversalOptions options;
  options.trace = &trace;
  HmmmTraversal traversal(model_, catalog_, options);
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({2, 0}));
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());

  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_GE(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "step2_video_order");
  EXPECT_EQ(spans[1].name, "query_plan_build");
  EXPECT_EQ(spans[2].name, "step7_video_fanout");
  EXPECT_EQ(spans.back().name, "step8_9_merge_rank");

  // Every per-video span sits under the fan-out and owns a lattice-walk
  // child; videos that produced a candidate also score it (Eq. 15).
  size_t videos = 0, walks = 0, scores = 0;
  for (const TraceSpan& span : spans) {
    if (span.name.rfind("video:", 0) == 0) {
      ++videos;
      EXPECT_EQ(span.parent, spans[2].id);
    }
    walks += span.name == "steps3_5_walk" ? 1 : 0;
    scores += span.name == "step6_eq15_score" ? 1 : 0;
  }
  EXPECT_GT(videos, 0u);
  EXPECT_EQ(walks, videos);
  EXPECT_LE(scores, videos);
  EXPECT_GE(scores, results->size());
}

TEST_F(TracedRetrievalTest, SpanSkeletonIsIdenticalAcrossThreadCounts) {
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  QueryTrace serial_trace;
  TraversalOptions serial_options;
  serial_options.trace = &serial_trace;
  HmmmTraversal serial(model_, catalog_, serial_options);
  ASSERT_TRUE(serial.Retrieve(pattern).ok());
  const std::vector<SpanSkeleton> reference = Skeleton(serial_trace);
  ASSERT_FALSE(reference.empty());

  for (int threads : {2, 4}) {
    QueryTrace trace;
    TraversalOptions options;
    options.num_threads = threads;
    options.trace = &trace;
    HmmmTraversal parallel(model_, catalog_, options);
    ASSERT_TRUE(parallel.Retrieve(pattern).ok());
    EXPECT_EQ(Skeleton(trace), reference) << threads << " threads";
  }
}

TEST_F(TracedRetrievalTest, TracingOnAndOffRankIdentically) {
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  for (int threads : {1, 4}) {
    TraversalOptions plain_options;
    plain_options.num_threads = threads;
    HmmmTraversal plain(model_, catalog_, plain_options);
    auto reference = plain.Retrieve(pattern);
    ASSERT_TRUE(reference.ok());

    QueryTrace trace;
    TraversalOptions traced_options = plain_options;
    traced_options.trace = &trace;
    HmmmTraversal traced(model_, catalog_, traced_options);
    auto results = traced.Retrieve(pattern);
    ASSERT_TRUE(results.ok());

    ASSERT_EQ(reference->size(), results->size()) << threads << " threads";
    for (size_t i = 0; i < reference->size(); ++i) {
      EXPECT_EQ((*reference)[i].shots, (*results)[i].shots);
      EXPECT_EQ((*reference)[i].score, (*results)[i].score);
      EXPECT_EQ((*reference)[i].edge_weights, (*results)[i].edge_weights);
    }
  }
}

TEST_F(TracedRetrievalTest, TraceAccumulatesUntilCleared) {
  QueryTrace trace;
  TraversalOptions options;
  options.trace = &trace;
  HmmmTraversal traversal(model_, catalog_, options);
  const auto pattern = TemporalPattern::FromEvents({0});
  ASSERT_TRUE(traversal.Retrieve(pattern).ok());
  const size_t first = trace.Spans().size();
  ASSERT_TRUE(traversal.Retrieve(pattern).ok());
  EXPECT_EQ(trace.Spans().size(), 2 * first);
  trace.Clear();
  ASSERT_TRUE(traversal.Retrieve(pattern).ok());
  EXPECT_EQ(trace.Spans().size(), first);
}

}  // namespace
}  // namespace hmmm
