#include "storage/event_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hmmm {
namespace {

TEST(EventIndexTest, PostingsInTemporalOrder) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const EventIndex index(catalog);
  // goal (id 0): shot 2 (video a), shots 4 and 7 (video b).
  EXPECT_EQ(index.Lookup(0), (std::vector<ShotId>{2, 4, 7}));
  // free_kick (id 2): shots 0, 2, 6.
  EXPECT_EQ(index.Lookup(2), (std::vector<ShotId>{0, 2, 6}));
  // corner (id 1): shot 3 only.
  EXPECT_EQ(index.Lookup(1), (std::vector<ShotId>{3}));
}

TEST(EventIndexTest, UnusedEventEmpty) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const EventIndex index(catalog);
  EXPECT_TRUE(index.Lookup(6).empty());   // red_card never used
  EXPECT_TRUE(index.Lookup(-1).empty());  // out of range
  EXPECT_TRUE(index.Lookup(99).empty());
}

TEST(EventIndexTest, LookupInVideoFilters) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const EventIndex index(catalog);
  EXPECT_EQ(index.LookupInVideo(catalog, 1, 0), (std::vector<ShotId>{4, 7}));
  EXPECT_EQ(index.LookupInVideo(catalog, 0, 0), (std::vector<ShotId>{2}));
  EXPECT_TRUE(index.LookupInVideo(catalog, 1, 1).empty());
}

TEST(EventIndexTest, SizeCountsAllPostings) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const EventIndex index(catalog);
  EXPECT_EQ(index.size(), catalog.num_annotations());
  EXPECT_EQ(index.num_events(), catalog.vocabulary().size());
}

TEST(EventIndexTest, DefaultConstructedIsEmpty) {
  const EventIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Lookup(0).empty());
}

TEST(EventIndexTest, MatchesCatalogOnGeneratedCorpus) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(9, 5);
  const EventIndex index(catalog);
  EXPECT_EQ(index.size(), catalog.num_annotations());
  for (EventId e = 0; e < static_cast<EventId>(catalog.vocabulary().size());
       ++e) {
    for (ShotId sid : index.Lookup(e)) {
      EXPECT_TRUE(catalog.shot(sid).HasEvent(e));
    }
  }
}

}  // namespace
}  // namespace hmmm
