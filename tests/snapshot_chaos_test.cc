#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/video_database.h"
#include "common/fault_injector.h"
#include "core/model_builder.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "test_util.h"

// Chaos coverage for the mmap cold-start path: the snapshot.open /
// snapshot.map / snapshot.read probes fire as transient kIOError, and
// the serving stack's documented contract is degrade-to-blob-loader,
// never a crash. See chaos_test.cc for the suite conventions.
#ifdef HMMM_FAULT_INJECTION
#define SKIP_WITHOUT_FAULT_INJECTION() (void)0
#else
#define SKIP_WITHOUT_FAULT_INJECTION() \
  GTEST_SKIP() << "built without HMMM_FAULT_INJECTION"
#endif

namespace hmmm {
namespace {

class SnapshotChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/13, /*num_videos=*/5);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = std::move(model).value();
    path_ = testing::TempPath("snapshot_chaos.hmms");
    ASSERT_TRUE(WriteSnapshot(model_, catalog_, path_).ok());
  }
  void TearDown() override {
    FaultInjector::Instance().Reset();
    std::remove(path_.c_str());
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
  std::string path_;
};

TEST_F(SnapshotChaosTest, TransientOpenFaultIsAbsorbedByTheRetryLoop) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig transient;
  transient.after_hits = 0;
  transient.max_fires = 1;
  FaultInjector::Instance().Arm("snapshot.open", transient);
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(FaultInjector::Instance().fires("snapshot.open"), 1u);
}

TEST_F(SnapshotChaosTest, PersistentOpenFaultExhaustsTheBoundedRetry) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig persistent;
  persistent.after_hits = 0;
  FaultInjector::Instance().Arm("snapshot.open", persistent);
  auto reader = SnapshotReader::Open(path_);
  EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
  // Same attempt budget as the storage layer — bounded, no spinning.
  EXPECT_EQ(FaultInjector::Instance().hits("snapshot.open"), 3u);
}

TEST_F(SnapshotChaosTest, MapFaultIsTransientTooAndRetriesAsOneUnit) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig transient;
  transient.after_hits = 0;
  transient.max_fires = 1;
  FaultInjector::Instance().Arm("snapshot.map", transient);
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(FaultInjector::Instance().fires("snapshot.map"), 1u);
}

TEST_F(SnapshotChaosTest, ReadFaultDuringVerifiedOpenIsIOErrorNotDataLoss) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig persistent;
  persistent.after_hits = 0;
  FaultInjector::Instance().Arm("snapshot.read", persistent);
  SnapshotOptions options;
  options.verify_section_crcs = true;
  auto reader = SnapshotReader::Open(path_, options);
  // A flaky page-in is transient I/O, not corruption: callers may retry
  // or fall back; they must not quarantine the file.
  EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
}

TEST_F(SnapshotChaosTest, ReadFaultDuringBuildFailsCleanlyAndRecovers) {
  SKIP_WITHOUT_FAULT_INJECTION();
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status();

  FaultPointConfig transient;
  transient.after_hits = 0;
  transient.max_fires = 1;
  FaultInjector::Instance().Arm("snapshot.read", transient);
  EXPECT_EQ((*reader)->BuildCatalog().status().code(), StatusCode::kIOError);

  // The reader carries no poisoned state: the same call now succeeds.
  auto catalog = (*reader)->BuildCatalog();
  EXPECT_TRUE(catalog.ok()) << catalog.status();
}

TEST_F(SnapshotChaosTest, MapFailureDegradesToTheBlobLoaderNotACrash) {
  SKIP_WITHOUT_FAULT_INJECTION();
  const std::string catalog_path = testing::TempPath("snapchaos.catalog");
  const std::string model_path = testing::TempPath("snapchaos.model");
  auto heap = VideoDatabase::Create(VideoCatalog(catalog_));
  ASSERT_TRUE(heap.ok()) << heap.status();
  ASSERT_TRUE(heap->Save(catalog_path, model_path).ok());
  ASSERT_TRUE(heap->WriteSnapshot(path_).ok());

  FaultPointConfig persistent;
  persistent.after_hits = 0;
  FaultInjector::Instance().Arm("snapshot.map", persistent);
  auto db = VideoDatabase::OpenSnapshotWithFallback(path_, catalog_path,
                                                    model_path);
  ASSERT_TRUE(db.ok()) << db.status();
  FaultInjector::Instance().Reset();

  // The fallback database serves the same bytes the snapshot would have.
  auto expected = heap->Query("free_kick ; goal");
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto actual = db->Query("free_kick ; goal");
  ASSERT_TRUE(actual.ok()) << actual.status();
  ASSERT_EQ(expected->size(), actual->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*expected)[i].shots, (*actual)[i].shots);
    EXPECT_EQ((*expected)[i].score, (*actual)[i].score);
  }

  std::remove(catalog_path.c_str());
  std::remove(model_path.c_str());
}

TEST_F(SnapshotChaosTest, SnapshotOnlyOpenSurfacesTheErrorWithoutFallback) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultPointConfig persistent;
  persistent.after_hits = 0;
  FaultInjector::Instance().Arm("snapshot.open", persistent);
  auto db = VideoDatabase::OpenSnapshot(path_);
  EXPECT_EQ(db.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace hmmm
