// Cross-feature integration scenarios: combinations of the category
// level, gap-bounded queries, feedback-trained priors, QBE and the
// VideoDatabase facade that no single-module test exercises together.

#include <gtest/gtest.h>

#include "hmmm.h"
#include "retrieval/metrics.h"
#include "test_util.h"

namespace hmmm {
namespace {

TEST(IntegrationScenariosTest, TrainedPi2ReordersVideoScan) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());

  // Both videos contain "goal"; with uniform Pi2 video 0 is seeded first.
  HmmmTraversal traversal(*model, catalog);
  const auto pattern = TemporalPattern::FromEvents({0});
  EXPECT_EQ(traversal.VideoOrder(pattern).front(), 0);

  // Teach the model that video 1 is the preferred entry point.
  OfflineLearner learner;
  ASSERT_TRUE(learner.ApplyVideoPatterns(*model, {{{1}, 5.0}}).ok());
  HmmmTraversal retrained(*model, catalog);
  EXPECT_EQ(retrained.VideoOrder(pattern).front(), 1);
}

TEST(IntegrationScenariosTest, GapBoundedQueryThroughVideoDatabase) {
  auto db = VideoDatabase::Create(testing::GeneratedSoccerCatalog(91, 10));
  ASSERT_TRUE(db.ok());
  auto bounded = db->Query("free_kick ;<1 goal");
  auto unbounded = db->Query("free_kick ; goal");
  ASSERT_TRUE(bounded.ok());
  ASSERT_TRUE(unbounded.ok());
  // The bounded query never returns more distinct true occurrences.
  const auto pattern_b =
      *CompileQuery("free_kick ;<1 goal", db->catalog().vocabulary());
  const auto pattern_u =
      *CompileQuery("free_kick ; goal", db->catalog().vocabulary());
  EXPECT_LE(EnumerateTrueOccurrences(db->catalog(), pattern_b).size(),
            EnumerateTrueOccurrences(db->catalog(), pattern_u).size());
}

TEST(IntegrationScenariosTest, CategoryPrunedDatabaseAnswersGapQueries) {
  VideoDatabaseOptions options;
  options.enable_category_level = true;
  options.categories.num_clusters = 2;
  auto db = VideoDatabase::Create(testing::GeneratedSoccerCatalog(92, 12),
                                  options);
  ASSERT_TRUE(db.ok());
  ASSERT_NE(db->categories(), nullptr);
  RetrievalStats stats;
  auto results = db->Query("free_kick ;<2 goal", &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(stats.videos_considered, 0u);
}

TEST(IntegrationScenariosTest, QbeAgreesWithAnnotationsOnEasyCorpus) {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(93);
  config.num_videos = 8;
  config.min_shots_per_video = 40;
  config.max_shots_per_video = 60;
  config.event_shot_fraction = 0.3;
  config.feature_noise = 0.04;
  config.class_separation = 1.5;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  ASSERT_TRUE(catalog.ok());
  auto db = VideoDatabase::Create(std::move(catalog).value());
  ASSERT_TRUE(db.ok());

  // Pick a single-event goal shot and ask for more like it: the majority
  // of the top-5 should also carry "goal".
  ShotId probe = -1;
  for (const ShotRecord& shot : db->catalog().shots()) {
    if (shot.events == std::vector<EventId>{0}) {
      probe = shot.id;
      break;
    }
  }
  ASSERT_GE(probe, 0);
  QbeOptions qbe;
  qbe.max_results = 5;
  auto similar = db->MoreLikeShot(probe, qbe);
  ASSERT_TRUE(similar.ok());
  ASSERT_EQ(similar->size(), 5u);
  int goal_hits = 0;
  for (const QbeResult& r : *similar) {
    if (db->catalog().shot(r.shot).HasEvent(0)) ++goal_hits;
  }
  EXPECT_GE(goal_hits, 3);
}

TEST(IntegrationScenariosTest, FeedbackSurvivesSaveLoadCycle) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto db = VideoDatabase::Create(catalog);
  ASSERT_TRUE(db.ok());
  auto results = db->Query("free_kick ; goal");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  ASSERT_TRUE(db->MarkPositive(results->front()).ok());
  ASSERT_TRUE(db->Train().ok());
  const Matrix trained_a1 = db->model().local(results->front().video).a1;

  const std::string catalog_path = testing::TempPath("integ_feedback.cat");
  const std::string model_path = testing::TempPath("integ_feedback.hmmm");
  ASSERT_TRUE(db->Save(catalog_path, model_path).ok());
  auto reopened = VideoDatabase::Open(catalog_path, model_path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_LT(reopened->model()
                .local(results->front().video)
                .a1.MaxAbsDiff(trained_a1),
            1e-15);
  std::remove(catalog_path.c_str());
  std::remove(model_path.c_str());
}

TEST(IntegrationScenariosTest, AlternativeAndConjunctionAndGapTogether) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(94, 10);
  auto db = VideoDatabase::Create(catalog);
  ASSERT_TRUE(db.ok());
  const std::string query = "(corner_kick | free_kick) ;<3 goal ; foul";
  auto pattern = CompileQuery(query, catalog.vocabulary());
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern->steps[1].max_gap, 3);
  EXPECT_EQ(pattern->steps[2].max_gap, -1);
  auto results = db->Retrieve(*pattern);
  ASSERT_TRUE(results.ok());
  // Shape only: three-shot candidates, temporally ordered.
  for (const auto& r : *results) {
    ASSERT_EQ(r.shots.size(), 3u);
    EXPECT_LT(catalog.shot(r.shots[0]).begin_time,
              catalog.shot(r.shots[2]).begin_time + 1e-9);
  }
}

TEST(IntegrationScenariosTest, ExhaustiveAndTraversalAgreeUnderGaps) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(95, 8);
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  auto pattern = CompileQuery("free_kick ;<2 goal", catalog.vocabulary());
  ASSERT_TRUE(pattern.ok());

  ExhaustiveOptions gold_options;
  gold_options.max_results = 100000;
  ExhaustiveMatcher exhaustive(*model, catalog, gold_options);
  auto gold = exhaustive.Retrieve(*pattern);
  ASSERT_TRUE(gold.ok());

  TraversalOptions options;
  options.beam_width = 8;
  HmmmTraversal traversal(*model, catalog, options);
  auto fast = traversal.Retrieve(*pattern);
  ASSERT_TRUE(fast.ok());
  // Shared tuples score identically, and the gold top dominates.
  for (const auto& f : *fast) {
    for (const auto& g : *gold) {
      if (f.shots == g.shots) {
        EXPECT_NEAR(f.score, g.score, 1e-12);
      }
    }
  }
  if (!gold->empty() && !fast->empty()) {
    EXPECT_GE(gold->front().score + 1e-12, fast->front().score);
  }
}

}  // namespace
}  // namespace hmmm
