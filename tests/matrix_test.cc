#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace hmmm {
namespace {

TEST(MatrixTest, ConstructAndFill) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.at(r, c), 0.5);
  }
  m.Fill(1.25);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.25);
}

// The storage contract the SIMD Eq.-14 kernel relies on: the backing
// buffer is 32-byte aligned for every shape (so RowPtr(0) always is, and
// when cols is a multiple of four doubles EVERY row start is), and the
// alignment survives copies, moves, and FromRows construction.
TEST(MatrixTest, StorageIs32ByteAligned) {
  auto aligned32 = [](const double* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 32 == 0;
  };
  for (size_t rows : {1u, 2u, 5u, 17u}) {
    for (size_t cols : {1u, 3u, 4u, 8u, 20u, 21u}) {
      Matrix m(rows, cols, 1.0);
      EXPECT_TRUE(aligned32(m.ptr())) << rows << "x" << cols;
      EXPECT_TRUE(aligned32(m.RowPtr(0))) << rows << "x" << cols;
      if (cols % 4 == 0) {
        for (size_t r = 0; r < rows; ++r) {
          EXPECT_TRUE(aligned32(m.RowPtr(r))) << rows << "x" << cols << " row " << r;
        }
      }
    }
  }
  auto from_rows = *Matrix::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}});
  EXPECT_TRUE(aligned32(from_rows.RowPtr(1)));
  Matrix copy = from_rows;
  EXPECT_TRUE(aligned32(copy.RowPtr(1)));
  Matrix moved = std::move(copy);
  EXPECT_TRUE(aligned32(moved.RowPtr(1)));
}

TEST(MatrixTest, FromRowsAndEquality) {
  auto m = Matrix::FromRows({{1, 2}, {3, 4}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->at(1, 0), 3.0);
  auto same = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(*m == *same);
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  auto m = Matrix::FromRows({{1, 2}, {3}});
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixTest, IdentityIsRowStochastic) {
  const Matrix id = Matrix::Identity(4);
  EXPECT_TRUE(id.IsRowStochastic());
  EXPECT_DOUBLE_EQ(id.at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id.at(2, 1), 0.0);
}

TEST(MatrixTest, RowAccessors) {
  auto m = *Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_DOUBLE_EQ(m.RowSum(0), 6.0);
  ASSERT_TRUE(m.SetRow(0, {7, 8, 9}).ok());
  EXPECT_DOUBLE_EQ(m.at(0, 2), 9.0);
  EXPECT_FALSE(m.SetRow(0, {1}).ok());
  EXPECT_FALSE(m.SetRow(5, {1, 2, 3}).ok());
}

TEST(MatrixTest, NormalizeRowsMakesStochastic) {
  auto m = *Matrix::FromRows({{2, 2}, {1, 3}});
  m.NormalizeRows();
  EXPECT_TRUE(m.IsRowStochastic());
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.75);
}

TEST(MatrixTest, NormalizeRowsLeavesZeroRows) {
  auto m = *Matrix::FromRows({{0, 0}, {1, 1}});
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.5);
  EXPECT_TRUE(m.IsRowStochastic(1e-9, /*accept_zero_rows=*/true));
  EXPECT_FALSE(m.IsRowStochastic(1e-9, /*accept_zero_rows=*/false));
}

TEST(MatrixTest, RowArgMax) {
  auto m = *Matrix::FromRows({{1, 5, 3}, {9, 2, 9}});
  EXPECT_EQ(m.RowArgMax(0), 1);
  EXPECT_EQ(m.RowArgMax(1), 0);  // first of the tie
  EXPECT_EQ(Matrix().RowArgMax(0), -1);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  auto a = *Matrix::FromRows({{1, 2}, {3, 4}});
  auto b = *Matrix::FromRows({{5, 6}, {7, 8}});
  auto c = a.Multiply(b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c->at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c->at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c->at(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyShapeMismatch) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(MatrixTest, StochasticProductStaysStochastic) {
  auto a = *Matrix::FromRows({{0.3, 0.7}, {0.5, 0.5}});
  auto b = *Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  auto c = a.Multiply(b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsRowStochastic(1e-12));
}

TEST(MatrixTest, Transposed) {
  auto m = *Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  auto a = *Matrix::FromRows({{1, 2}, {3, 4}});
  auto b = *Matrix::FromRows({{1, 2.5}, {3, 4}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_TRUE(std::isinf(a.MaxAbsDiff(Matrix(1, 2))));
}

TEST(MatrixTest, ScaleMultipliesEverything) {
  auto m = *Matrix::FromRows({{1, 2}});
  m.Scale(3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 6.0);
}

TEST(MatrixTest, NegativeEntriesNotStochastic) {
  auto m = *Matrix::FromRows({{-0.5, 1.5}});
  EXPECT_FALSE(m.IsRowStochastic());
}

TEST(MatrixTest, ToStringRendersRows) {
  auto m = *Matrix::FromRows({{1, 2}});
  const std::string s = m.ToString(1);
  EXPECT_NE(s.find("1.0"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

// -- Borrowed (non-owning) storage mode -----------------------------------

TEST(MatrixTest, FromBorrowedReadsExternalMemory) {
  const double backing[6] = {1, 2, 3, 4, 5, 6};
  const Matrix m = Matrix::FromBorrowed(backing, 2, 3);
  EXPECT_TRUE(m.borrowed());
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.ptr(), backing);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
  EXPECT_EQ(m.Row(0), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(m.RowPtr(1), backing + 3);
}

TEST(MatrixTest, BorrowedEqualsOwnedWithSameValues) {
  const double backing[4] = {1, 2, 3, 4};
  const Matrix view = Matrix::FromBorrowed(backing, 2, 2);
  const Matrix owned = *Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(view == owned);
  EXPECT_TRUE(owned == view);
  EXPECT_DOUBLE_EQ(view.MaxAbsDiff(owned), 0.0);
}

TEST(MatrixTest, BorrowedCopyStaysBorrowedOwnedCopyIsDeep) {
  const double backing[2] = {7, 8};
  const Matrix view = Matrix::FromBorrowed(backing, 1, 2);
  const Matrix view_copy = view;
  EXPECT_TRUE(view_copy.borrowed());
  EXPECT_EQ(view_copy.ptr(), backing);

  Matrix owned = view;  // still borrowed
  owned.EnsureOwned();
  EXPECT_FALSE(owned.borrowed());
  EXPECT_NE(owned.ptr(), backing);
  EXPECT_DOUBLE_EQ(owned.at(0, 1), 8.0);
}

TEST(MatrixTest, MutatingABorrowedMatrixCopiesOnWrite) {
  double backing[4] = {1, 2, 3, 4};
  Matrix m = Matrix::FromBorrowed(backing, 2, 2);
  m.at(0, 0) = 99.0;  // non-const at() materializes an owned copy
  EXPECT_FALSE(m.borrowed());
  EXPECT_DOUBLE_EQ(m.at(0, 0), 99.0);
  EXPECT_DOUBLE_EQ(backing[0], 1.0) << "backing memory must stay untouched";

  Matrix scaled = Matrix::FromBorrowed(backing, 2, 2);
  scaled.Scale(2.0);
  EXPECT_FALSE(scaled.borrowed());
  EXPECT_DOUBLE_EQ(scaled.at(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(backing[3], 4.0);

  Matrix normalized = Matrix::FromBorrowed(backing, 2, 2);
  normalized.NormalizeRows();
  EXPECT_FALSE(normalized.borrowed());
  EXPECT_DOUBLE_EQ(normalized.at(0, 0) + normalized.at(0, 1), 1.0);

  Matrix filled = Matrix::FromBorrowed(backing, 2, 2);
  filled.Fill(0.5);
  EXPECT_FALSE(filled.borrowed());
  EXPECT_DOUBLE_EQ(filled.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(backing[2], 3.0);
}

TEST(MatrixTest, BorrowedMatrixSupportsDerivedOps) {
  const double backing[4] = {0.25, 0.75, 0.5, 0.5};
  const Matrix m = Matrix::FromBorrowed(backing, 2, 2);
  EXPECT_TRUE(m.IsRowStochastic());
  EXPECT_EQ(m.RowArgMax(0), 1);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 1.0);
  const Matrix t = m.Transposed();
  EXPECT_FALSE(t.borrowed());
  EXPECT_DOUBLE_EQ(t.at(1, 0), 0.75);
  const auto product = m.Multiply(Matrix::Identity(2));
  ASSERT_TRUE(product.ok());
  EXPECT_TRUE(*product == m);
}

TEST(MatrixTest, EmptyBorrowedMatrixIsOwned) {
  const Matrix m = Matrix::FromBorrowed(nullptr, 0, 0);
  EXPECT_FALSE(m.borrowed());
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace hmmm
