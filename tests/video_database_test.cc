#include "api/video_database.h"

#include <gtest/gtest.h>

#include "media/news_generator.h"
#include "retrieval/metrics.h"
#include "storage/model_io.h"
#include "test_util.h"

namespace hmmm {
namespace {

TEST(VideoDatabaseTest, CreateAndQuery) {
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(db.ok()) << db.status();
  auto results = db->Query("free_kick ; goal");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  const auto pattern =
      *CompileQuery("free_kick ; goal", db->catalog().vocabulary());
  EXPECT_TRUE(PatternMatchesAnnotations(db->catalog(),
                                        results->front().shots, pattern));
}

TEST(VideoDatabaseTest, CreateRejectsInvalidCatalog) {
  // A catalog is always valid through its own API; validate the check via
  // a mismatched Open instead (below). Create on an empty catalog works.
  auto db = VideoDatabase::Create(VideoCatalog(SoccerEvents(), 4));
  ASSERT_TRUE(db.ok());
  auto results = db->Query("goal");
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(VideoDatabaseTest, SaveOpenRoundTrip) {
  auto db = VideoDatabase::Create(testing::GeneratedSoccerCatalog(5, 6));
  ASSERT_TRUE(db.ok());
  auto expected = db->Query("goal");
  ASSERT_TRUE(expected.ok());

  const std::string catalog_path = testing::TempPath("vdb_test.cat");
  const std::string model_path = testing::TempPath("vdb_test.hmmm");
  ASSERT_TRUE(db->Save(catalog_path, model_path).ok());

  auto reopened = VideoDatabase::Open(catalog_path, model_path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto results = reopened->Query("goal");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), expected->size());
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ((*results)[i].shots, (*expected)[i].shots);
  }
  std::remove(catalog_path.c_str());
  std::remove(model_path.c_str());
}

TEST(VideoDatabaseTest, OpenRejectsMismatchedPair) {
  auto db_a = VideoDatabase::Create(testing::GeneratedSoccerCatalog(5, 6));
  auto db_b = VideoDatabase::Create(testing::GeneratedSoccerCatalog(6, 9));
  ASSERT_TRUE(db_a.ok());
  ASSERT_TRUE(db_b.ok());
  const std::string catalog_path = testing::TempPath("vdb_mismatch.cat");
  const std::string model_path = testing::TempPath("vdb_mismatch.hmmm");
  ASSERT_TRUE(SaveCatalog(db_a->catalog(), catalog_path).ok());
  ASSERT_TRUE(db_b->model().SaveToFile(model_path).ok());
  auto opened = VideoDatabase::Open(catalog_path, model_path);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
  std::remove(catalog_path.c_str());
  std::remove(model_path.c_str());
}

TEST(VideoDatabaseTest, FeedbackThresholdAutoTrains) {
  VideoDatabaseOptions options;
  options.feedback.retrain_threshold = 2;
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog(), options);
  ASSERT_TRUE(db.ok());
  auto results = db->Query("free_kick ; goal");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());

  EXPECT_EQ(db->training_rounds(), 0u);
  ASSERT_TRUE(db->MarkPositive(results->front()).ok());
  EXPECT_EQ(db->training_rounds(), 0u);  // below threshold
  ASSERT_TRUE(db->MarkPositive(results->front()).ok());
  EXPECT_EQ(db->training_rounds(), 1u);  // threshold reached
  EXPECT_TRUE(db->model().Validate().ok());
}

TEST(VideoDatabaseTest, ForceTrain) {
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(db.ok());
  auto results = db->Query("goal");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  ASSERT_TRUE(db->MarkPositive(results->front()).ok());
  auto trained = db->Train();
  ASSERT_TRUE(trained.ok());
  EXPECT_TRUE(*trained);
}

TEST(VideoDatabaseTest, QueryByExampleAndMoreLike) {
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(db.ok());
  std::vector<double> example(8, 0.1);
  example[0] = 0.9;  // goal-like
  auto qbe = db->QueryByExample(example);
  ASSERT_TRUE(qbe.ok());
  ASSERT_FALSE(qbe->empty());
  EXPECT_TRUE(db->catalog().shot(qbe->front().shot).HasEvent(0));

  auto similar = db->MoreLikeShot(4);
  ASSERT_TRUE(similar.ok());
  EXPECT_FALSE(similar->empty());
}

TEST(VideoDatabaseTest, CategoryLevelOptional) {
  auto plain = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->categories(), nullptr);

  VideoDatabaseOptions options;
  options.enable_category_level = true;
  options.categories.num_clusters = 2;
  auto layered = VideoDatabase::Create(testing::GeneratedSoccerCatalog(3, 8),
                                       options);
  ASSERT_TRUE(layered.ok());
  ASSERT_NE(layered->categories(), nullptr);
  EXPECT_EQ(layered->categories()->num_clusters(), 2u);
  auto results = layered->Query("goal");
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST(VideoDatabaseTest, RebuildCategories) {
  VideoDatabaseOptions options;
  options.enable_category_level = true;
  auto db = VideoDatabase::Create(testing::GeneratedSoccerCatalog(3, 8),
                                  options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->RebuildCategories().ok());
  EXPECT_NE(db->categories(), nullptr);
}

TEST(VideoDatabaseTest, ReplaceCatalogPreservesLearning) {
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(db.ok());
  auto results = db->Query("free_kick ; corner_kick");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  ASSERT_TRUE(db->MarkPositive(results->front()).ok());
  ASSERT_TRUE(db->Train().ok());
  const Matrix learned_a1 = db->model().local(0).a1;

  // Grow the archive by one video and swap it in.
  VideoCatalog grown = testing::SmallSoccerCatalog();
  const VideoId v2 = grown.AddVideo("video_c");
  ASSERT_TRUE(grown.AddShot(v2, 0.0, 3.0, {4},
                            testing::FeatureVector(8, 0.1, {4}, 0.9)).ok());
  ASSERT_TRUE(db->ReplaceCatalog(std::move(grown)).ok());

  EXPECT_EQ(db->catalog().num_videos(), 3u);
  EXPECT_EQ(db->model().num_videos(), 3u);
  EXPECT_LT(db->model().local(0).a1.MaxAbsDiff(learned_a1), 1e-12);
  // Queries (including against the new video's event) still work.
  auto goal_kick = db->Query("goal_kick");
  ASSERT_TRUE(goal_kick.ok());
  EXPECT_FALSE(goal_kick->empty());
}

TEST(VideoDatabaseTest, ReplaceCatalogInvalidatesCachedRankings) {
  // Regression test: a rebuilt model's version counter restarts at zero,
  // so the query cache's (signature, version) guard alone cannot tell a
  // swapped-in catalog from the one a cached ranking was computed under.
  // Without the explicit ClearQueryCache inside ReplaceCatalog, the query
  // below would replay the 2-video ranking against the 3-video archive.
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(db.ok());
  auto before = db->Query("goal");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(db->cache_stats().entries, 1u);

  VideoCatalog grown = testing::SmallSoccerCatalog();
  const VideoId v2 = grown.AddVideo("video_c");
  ASSERT_TRUE(grown.AddShot(v2, 0.0, 3.0, {0},
                            testing::FeatureVector(8, 0.1, {0}, 0.9)).ok());
  ASSERT_TRUE(db->ReplaceCatalog(std::move(grown)).ok());
  EXPECT_EQ(db->cache_stats().entries, 0u);

  auto after = db->Query("goal");
  ASSERT_TRUE(after.ok());
  // The new video's goal shot must show up — a stale cached ranking
  // cannot contain it.
  bool found_new_video = false;
  for (const RetrievedPattern& pattern : *after) {
    if (pattern.video == v2) found_new_video = true;
  }
  EXPECT_TRUE(found_new_video);
  EXPECT_GT(after->size(), before->size());
}

TEST(VideoDatabaseTest, TrainingClearsCachedRankings) {
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(db.ok());
  auto results = db->Query("free_kick ; goal");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ(db->cache_stats().entries, 1u);
  ASSERT_TRUE(db->MarkPositive(results->front()).ok());
  ASSERT_TRUE(db->Train().ok());
  // Retraining mutates the model in place; cached pre-training rankings
  // are gone.
  EXPECT_EQ(db->cache_stats().entries, 0u);

  // ClearQueryCache is also callable directly.
  ASSERT_TRUE(db->Query("free_kick ; goal").ok());
  EXPECT_EQ(db->cache_stats().entries, 1u);
  db->ClearQueryCache();
  EXPECT_EQ(db->cache_stats().entries, 0u);
}

TEST(VideoDatabaseTest, MoveSemantics) {
  auto db = VideoDatabase::Create(testing::SmallSoccerCatalog());
  ASSERT_TRUE(db.ok());
  VideoDatabase moved = std::move(db).value();
  auto results = moved.Query("goal");
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

}  // namespace
}  // namespace hmmm
