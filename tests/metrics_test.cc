#include "retrieval/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hmmm {
namespace {

RetrievedPattern MakeResult(std::vector<ShotId> shots, double score) {
  RetrievedPattern r;
  r.shots = std::move(shots);
  r.score = score;
  return r;
}

class MetricsTest : public ::testing::Test {
 protected:
  VideoCatalog catalog_ = testing::SmallSoccerCatalog();
  // free_kick (2) then goal (0).
  TemporalPattern pattern_ = TemporalPattern::FromEvents({2, 0});
};

TEST_F(MetricsTest, PatternMatchesAnnotationsExact) {
  EXPECT_TRUE(PatternMatchesAnnotations(catalog_, {0, 2}, pattern_));
  EXPECT_TRUE(PatternMatchesAnnotations(catalog_, {6, 7}, pattern_));
  EXPECT_FALSE(PatternMatchesAnnotations(catalog_, {3, 2}, pattern_));
  EXPECT_FALSE(PatternMatchesAnnotations(catalog_, {0}, pattern_));  // len
  EXPECT_FALSE(PatternMatchesAnnotations(catalog_, {0, 999}, pattern_));
}

TEST_F(MetricsTest, MatchesConjunctiveStep) {
  PatternStep step;
  step.alternatives = {{2, 0}};
  TemporalPattern compound;
  compound.steps.push_back(step);
  EXPECT_TRUE(PatternMatchesAnnotations(catalog_, {2}, compound));
  EXPECT_FALSE(PatternMatchesAnnotations(catalog_, {0}, compound));
}

TEST_F(MetricsTest, MatchesAlternatives) {
  PatternStep step;
  step.alternatives = {{1}, {0}};  // corner OR goal
  TemporalPattern either;
  either.steps.push_back(step);
  EXPECT_TRUE(PatternMatchesAnnotations(catalog_, {3}, either));
  EXPECT_TRUE(PatternMatchesAnnotations(catalog_, {4}, either));
  EXPECT_FALSE(PatternMatchesAnnotations(catalog_, {0}, either));
}

TEST_F(MetricsTest, EnumerateTrueOccurrences) {
  const auto occurrences = EnumerateTrueOccurrences(catalog_, pattern_);
  // Within video 0: fk shots {0, 2}, goal shots {2}: (0,2).
  // Within video 1: fk {6}, goal {4, 7}: (6,7).
  ASSERT_EQ(occurrences.size(), 2u);
  EXPECT_EQ(occurrences[0], (std::vector<ShotId>{0, 2}));
  EXPECT_EQ(occurrences[1], (std::vector<ShotId>{6, 7}));
}

TEST_F(MetricsTest, EnumerateRespectsCap) {
  const auto occurrences =
      EnumerateTrueOccurrences(catalog_, pattern_, /*max_count=*/1);
  EXPECT_EQ(occurrences.size(), 1u);
}

TEST_F(MetricsTest, EnumerateEmptyPattern) {
  EXPECT_TRUE(EnumerateTrueOccurrences(catalog_, TemporalPattern{}).empty());
}

TEST_F(MetricsTest, PerfectRankingScoresOne) {
  std::vector<RetrievedPattern> results = {MakeResult({0, 2}, 1.0),
                                           MakeResult({6, 7}, 0.9)};
  const auto metrics = EvaluateRanking(catalog_, pattern_, results, 2);
  EXPECT_DOUBLE_EQ(metrics.precision_at_k, 1.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.average_precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.ndcg, 1.0);
  EXPECT_EQ(metrics.relevant_retrieved, 2u);
  EXPECT_EQ(metrics.total_relevant, 2u);
}

TEST_F(MetricsTest, IrrelevantResultsScoreZero) {
  std::vector<RetrievedPattern> results = {MakeResult({3, 2}, 1.0)};
  const auto metrics = EvaluateRanking(catalog_, pattern_, results, 5);
  EXPECT_DOUBLE_EQ(metrics.precision_at_k, 0.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.0);
  EXPECT_DOUBLE_EQ(metrics.ndcg, 0.0);
}

TEST_F(MetricsTest, MixedRankingIntermediate) {
  // Relevant at ranks 1 and 3; irrelevant at rank 2.
  std::vector<RetrievedPattern> results = {MakeResult({0, 2}, 1.0),
                                           MakeResult({3, 2}, 0.8),
                                           MakeResult({6, 7}, 0.7)};
  const auto metrics = EvaluateRanking(catalog_, pattern_, results, 3);
  EXPECT_NEAR(metrics.precision_at_k, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  // AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(metrics.average_precision, (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_LT(metrics.ndcg, 1.0);
  EXPECT_GT(metrics.ndcg, 0.5);
}

TEST_F(MetricsTest, EmptyResultsHandled) {
  const auto metrics = EvaluateRanking(catalog_, pattern_, {}, 5);
  EXPECT_EQ(metrics.retrieved, 0u);
  EXPECT_DOUBLE_EQ(metrics.precision_at_k, 0.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.0);
}

TEST_F(MetricsTest, DuplicateRelevantCountedOnceForRecall) {
  std::vector<RetrievedPattern> results = {MakeResult({0, 2}, 1.0),
                                           MakeResult({0, 2}, 0.9)};
  const auto metrics = EvaluateRanking(catalog_, pattern_, results, 2);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.5);  // only one distinct occurrence
  EXPECT_EQ(metrics.relevant_retrieved, 2u);
}

TEST_F(MetricsTest, RetrievedPatternToString) {
  RetrievedPattern result = MakeResult({0, 2}, 0.125);
  result.video = 0;
  const std::string text = result.ToString(catalog_);
  EXPECT_NE(text.find("video_a"), std::string::npos);
  EXPECT_NE(text.find("free_kick"), std::string::npos);
  EXPECT_NE(text.find("0.125"), std::string::npos);
}

}  // namespace
}  // namespace hmmm
