// End-to-end distributed tracing over the loopback: cross-process trace
// assembly through a real coordinator fan-out, mixed wire-version
// compatibility (v1 client vs v2 server and the reverse), and the
// slow-query plane through the wire.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/catalog_partition.h"
#include "api/video_database.h"
#include "client/query_client.h"
#include "coordinator/coordinator_service.h"
#include "observability/trace_codec.h"
#include "server/query_server.h"
#include "server/shard_map.h"
#include "test_util.h"

namespace hmmm {
namespace {

using ::hmmm::testing::GeneratedSoccerCatalog;

// -- Shared deployment scaffolding ----------------------------------------

struct Deployment {
  std::unique_ptr<VideoDatabase> global;
  std::vector<std::unique_ptr<VideoDatabase>> shard_dbs;
  std::vector<std::unique_ptr<QueryServer>> servers;
  ShardMap map;

  ~Deployment() {
    for (auto& server : servers) {
      if (server != nullptr) server->Shutdown();
    }
  }
};

std::unique_ptr<Deployment> MakeDeployment(int num_shards) {
  auto deployment = std::make_unique<Deployment>();
  StatusOr<VideoDatabase> global =
      VideoDatabase::Create(GeneratedSoccerCatalog(3, 8));
  HMMM_CHECK(global.ok());
  deployment->global =
      std::make_unique<VideoDatabase>(std::move(global).value());

  StatusOr<std::vector<CatalogShard>> shards = PartitionForServing(
      deployment->global->catalog(), deployment->global->model(), num_shards);
  HMMM_CHECK(shards.ok());
  deployment->map =
      ShardMapFromPartition(*shards, deployment->global->catalog());
  for (size_t s = 0; s < shards->size(); ++s) {
    CatalogShard& shard = (*shards)[s];
    StatusOr<VideoDatabase> db = VideoDatabase::CreateWithModel(
        std::move(shard.catalog), std::move(shard.model));
    HMMM_CHECK(db.ok());
    deployment->shard_dbs.push_back(
        std::make_unique<VideoDatabase>(std::move(db).value()));
    QueryServerOptions options;
    options.port = 0;
    auto server = std::make_unique<QueryServer>(
        deployment->shard_dbs.back().get(), options);
    HMMM_CHECK(server->Start().ok());
    deployment->map.shards[s].endpoint =
        "127.0.0.1:" + std::to_string(server->port());
    deployment->servers.push_back(std::move(server));
  }
  return deployment;
}

void ExpectSameRanking(const std::vector<RetrievedPattern>& actual,
                       const std::vector<RetrievedPattern>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].video, expected[i].video) << "rank " << i;
    EXPECT_EQ(actual[i].shots, expected[i].shots) << "rank " << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
  }
}

// -- Trace-forest helpers -------------------------------------------------

const TraceSpan* FindById(const std::vector<TraceSpan>& spans, int id) {
  for (const TraceSpan& span : spans) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

std::string Attribute(const TraceSpan& span, const std::string& name) {
  for (const auto& [key, value] : span.attributes) {
    if (key == name) return value;
  }
  return "";
}

std::vector<const TraceSpan*> ChildrenOf(const std::vector<TraceSpan>& spans,
                                         int parent_id) {
  std::vector<const TraceSpan*> children;
  for (const TraceSpan& span : spans) {
    if (span.parent == parent_id) children.push_back(&span);
  }
  std::sort(children.begin(), children.end(),
            [](const TraceSpan* a, const TraceSpan* b) {
              return std::make_pair(a->sort_key, a->id) <
                     std::make_pair(b->sort_key, b->id);
            });
  return children;
}

/// The run-invariant shape of an assembled trace: pre-order (name, depth)
/// with siblings in their deterministic (sort_key, id) order. Span ids
/// and wall times legitimately differ between runs; this must not.
void SkeletonDfs(const std::vector<TraceSpan>& spans, int id, int depth,
                 std::vector<std::pair<std::string, int>>* out) {
  const TraceSpan* span = FindById(spans, id);
  HMMM_CHECK(span != nullptr);
  out->emplace_back(span->name, depth);
  for (const TraceSpan* child : ChildrenOf(spans, id)) {
    SkeletonDfs(spans, child->id, depth + 1, out);
  }
}

std::vector<std::pair<std::string, int>> Skeleton(
    const std::vector<TraceSpan>& spans) {
  std::vector<std::pair<std::string, int>> out;
  for (const TraceSpan& span : spans) {
    if (FindById(spans, span.parent) == nullptr) {
      SkeletonDfs(spans, span.id, 0, &out);
    }
  }
  return out;
}

// -- Cross-process trace assembly -----------------------------------------

TEST(DistributedTraceTest, AssembledTraceCoversEveryShard) {
  for (int num_shards : {1, 2, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    std::unique_ptr<Deployment> deployment = MakeDeployment(num_shards);
    StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
        CoordinatorService::Create(deployment->map);
    ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

    TemporalQueryRequest request;
    request.text = "free_kick ; goal";
    request.want_trace = true;
    StatusOr<TemporalQueryResponse> response =
        (*coordinator)->TemporalQuery(request, nullptr);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_FALSE(response->trace_blob.empty());

    StatusOr<std::vector<TraceSpan>> spans =
        DeserializeSpans(response->trace_blob);
    ASSERT_TRUE(spans.ok()) << spans.status().ToString();

    // One root: the coordinator's own request span.
    std::vector<const TraceSpan*> roots;
    for (const TraceSpan& span : *spans) {
      if (span.parent == -1) roots.push_back(&span);
    }
    ASSERT_EQ(roots.size(), 1u);
    const TraceSpan& root = *roots[0];
    EXPECT_EQ(root.name, "coordinator_query");
    EXPECT_TRUE(root.finished);
    const std::string trace_id = Attribute(root, "trace_id");
    EXPECT_EQ(trace_id.size(), 32u);

    // One fan-out span per shard, tagged with shard id and endpoint, in
    // shard order.
    const std::vector<const TraceSpan*> fanouts =
        ChildrenOf(*spans, root.id);
    ASSERT_EQ(fanouts.size(), static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      const TraceSpan& fanout = *fanouts[s];
      EXPECT_EQ(fanout.name, "shard_fanout");
      EXPECT_EQ(Attribute(fanout, "shard"), std::to_string(s));
      EXPECT_EQ(Attribute(fanout, "endpoint"),
                deployment->map.shards[s].endpoint);

      // Each fan-out adopts exactly its shard's grafted sub-trace: a
      // server_query span carrying the propagated trace id, over the
      // paper's Fig.-2 phase spans.
      const std::vector<const TraceSpan*> grafted =
          ChildrenOf(*spans, fanout.id);
      ASSERT_EQ(grafted.size(), 1u);
      EXPECT_EQ(grafted[0]->name, "server_query");
      EXPECT_EQ(Attribute(*grafted[0], "trace_id"), trace_id);

      std::vector<std::string> phase_names;
      for (const TraceSpan* phase : ChildrenOf(*spans, grafted[0]->id)) {
        phase_names.push_back(phase->name);
      }
      for (const char* phase :
           {"step2_video_order", "query_plan_build", "step7_video_fanout",
            "step8_9_merge_rank"}) {
        EXPECT_NE(std::find(phase_names.begin(), phase_names.end(), phase),
                  phase_names.end())
            << "shard " << s << " lacks phase " << phase;
      }
    }
  }
}

TEST(DistributedTraceTest, AssemblyIsDeterministicAcrossRuns) {
  // Each run boots a fresh deployment (new processes-worth of state, new
  // ports) from the same seeded catalog: the assembled trace's shape must
  // come out identical — ports, span ids and wall times are the only
  // degrees of freedom, and none of them are part of the skeleton.
  // (A fresh deployment also keeps the shard query caches cold: a repeat
  // query against a warm shard legitimately renders a cache_hit span.)
  std::vector<std::pair<std::string, int>> reference;
  for (int run = 0; run < 3; ++run) {
    std::unique_ptr<Deployment> deployment = MakeDeployment(2);
    StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
        CoordinatorService::Create(deployment->map);
    ASSERT_TRUE(coordinator.ok());

    TemporalQueryRequest request;
    request.text = "corner_kick ; goal";
    request.want_trace = true;
    StatusOr<TemporalQueryResponse> response =
        (*coordinator)->TemporalQuery(request, nullptr);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    StatusOr<std::vector<TraceSpan>> spans =
        DeserializeSpans(response->trace_blob);
    ASSERT_TRUE(spans.ok());
    const auto skeleton = Skeleton(*spans);
    ASSERT_FALSE(skeleton.empty());
    if (run == 0) {
      reference = skeleton;
    } else {
      EXPECT_EQ(skeleton, reference) << "run " << run;
    }
  }
}

TEST(DistributedTraceTest, RankingsByteIdenticalWithTracingOnAndOff) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  const auto reference = deployment->global->Query("free_kick ; goal");
  ASSERT_TRUE(reference.ok());

  for (bool want_trace : {false, true}) {
    TemporalQueryRequest request;
    request.text = "free_kick ; goal";
    request.want_trace = want_trace;
    StatusOr<TemporalQueryResponse> response =
        (*coordinator)->TemporalQuery(request, nullptr);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->trace_blob.empty(), !want_trace);
    ExpectSameRanking(response->results, *reference);
  }
}

// -- Mixed wire versions --------------------------------------------------

TEST(MixedVersionTest, V1ClientGetsUntracedServiceFromV2Server) {
  auto db = VideoDatabase::Create(GeneratedSoccerCatalog());
  ASSERT_TRUE(db.ok());
  QueryServer server(&db.value());
  ASSERT_TRUE(server.Start().ok());

  const auto reference = db->Query("free_kick ; goal");
  ASSERT_TRUE(reference.ok());

  QueryClientOptions options;
  options.port = server.port();
  options.protocol_version = 1;  // emulate an old client
  QueryClient client(options);

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  request.want_trace = true;
  StatusOr<TemporalQueryResponse> response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ExpectSameRanking(response->results, *reference);
  // v1 responses carry the legacy JSONL rendering but no v2 span blob.
  EXPECT_FALSE(response->trace_jsonl.empty());
  EXPECT_TRUE(response->trace_blob.empty());
  EXPECT_EQ(client.peer_version(), 1u);
  EXPECT_EQ(client.retries_performed(), 0u);
}

TEST(MixedVersionTest, V2ClientDowngradesAgainstV1Server) {
  auto db = VideoDatabase::Create(GeneratedSoccerCatalog());
  ASSERT_TRUE(db.ok());
  QueryServerOptions server_options;
  server_options.protocol_version = 1;  // emulate an old server
  QueryServer server(&db.value(), server_options);
  ASSERT_TRUE(server.Start().ok());

  const auto reference = db->Query("corner_kick ; goal");
  ASSERT_TRUE(reference.ok());

  QueryClientOptions options;
  options.port = server.port();
  QueryClient client(options);
  EXPECT_EQ(client.peer_version(), kWireProtocolVersion);

  TemporalQueryRequest request;
  request.text = "corner_kick ; goal";
  request.want_trace = true;
  StatusOr<TemporalQueryResponse> response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ExpectSameRanking(response->results, *reference);
  EXPECT_FALSE(response->trace_jsonl.empty());
  EXPECT_TRUE(response->trace_blob.empty());
  // The typed kUnsupportedVersion answer downgraded the client to the
  // floor version, sticky for its lifetime, costing exactly one retry.
  EXPECT_EQ(client.peer_version(), 1u);
  EXPECT_EQ(client.retries_performed(), 1u);

  // Subsequent calls speak v1 directly — no further downgrade dance.
  StatusOr<TemporalQueryResponse> again = client.TemporalQuery(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(client.retries_performed(), 1u);
}

// -- Slow-query plane over the wire ---------------------------------------

TEST(SlowQueryWireTest, DumpSlowQueriesRoundTripsThroughTheServer) {
  auto db = VideoDatabase::Create(GeneratedSoccerCatalog());
  ASSERT_TRUE(db.ok());
  QueryServiceOptions service_options;
  service_options.slow_query_threshold_ms = 0.0;  // capture everything
  VideoDatabaseService service(&db.value(), service_options);
  QueryServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  QueryClientOptions options;
  options.port = server.port();
  QueryClient client(options);

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  request.want_trace = true;
  StatusOr<TemporalQueryResponse> response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The captured entry correlates with the trace: the dump carries the
  // same 32-hex trace id the returned trace's root span was tagged with.
  StatusOr<std::vector<TraceSpan>> spans =
      DeserializeSpans(response->trace_blob);
  ASSERT_TRUE(spans.ok());
  ASSERT_FALSE(spans->empty());
  const std::string trace_id = Attribute((*spans)[0], "trace_id");
  ASSERT_EQ(trace_id.size(), 32u);

  StatusOr<DumpSlowQueriesResponse> dump = client.DumpSlowQueries();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_NE(dump->jsonl.find("\"pattern\":\"free_kick ; goal\""),
            std::string::npos)
      << dump->jsonl;
  EXPECT_NE(dump->jsonl.find(trace_id), std::string::npos) << dump->jsonl;
}

// -- Sampling boundaries at the service layer -----------------------------

TEST(SamplingTest, AlwaysOnSamplerTracesUnrequestedQueries) {
  auto db = VideoDatabase::Create(GeneratedSoccerCatalog());
  ASSERT_TRUE(db.ok());
  QueryServiceOptions service_options;
  service_options.trace_sample_rate = 1.0;
  service_options.slow_query_threshold_ms = 0.0;
  VideoDatabaseService service(&db.value(), service_options);

  TemporalQueryRequest request;
  request.text = "goal";
  StatusOr<TemporalQueryResponse> response =
      service.TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok());
  // Head-sampled but not requested: the caller gets no trace bytes, yet
  // the tail sink (slow-query log) captured the minted trace id.
  EXPECT_TRUE(response->trace_blob.empty());
  EXPECT_TRUE(response->trace_jsonl.empty());
  const std::string jsonl = service.slow_query_log().DumpJsonl();
  ASSERT_NE(jsonl.find("\"trace_id\":\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"trace_id\":\"\""), std::string::npos) << jsonl;
}

TEST(SamplingTest, ZeroRateLeavesUnrequestedQueriesUntraced) {
  auto db = VideoDatabase::Create(GeneratedSoccerCatalog());
  ASSERT_TRUE(db.ok());
  QueryServiceOptions service_options;
  service_options.trace_sample_rate = 0.0;
  service_options.slow_query_threshold_ms = 0.0;
  VideoDatabaseService service(&db.value(), service_options);

  TemporalQueryRequest request;
  request.text = "goal";
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.TemporalQuery(request, nullptr).ok());
  }
  const std::string jsonl = service.slow_query_log().DumpJsonl();
  ASSERT_FALSE(jsonl.empty());
  // Every captured entry's trace_id is the empty string.
  constexpr const char kField[] = "\"trace_id\":\"";
  constexpr size_t kFieldLen = sizeof(kField) - 1;
  size_t entries = 0;
  for (size_t pos = jsonl.find(kField); pos != std::string::npos;
       pos = jsonl.find(kField, pos + 1)) {
    ++entries;
    ASSERT_LT(pos + kFieldLen, jsonl.size());
    EXPECT_EQ(jsonl[pos + kFieldLen], '"')
        << "sampled without a request at " << pos;
  }
  EXPECT_EQ(entries, 5u);
}

TEST(SamplingTest, DegradedQueriesAreCapturedRegardlessOfThreshold) {
  auto db = VideoDatabase::Create(GeneratedSoccerCatalog());
  ASSERT_TRUE(db.ok());
  QueryServiceOptions service_options;
  service_options.slow_query_threshold_ms = 1e9;  // nothing is "slow"
  VideoDatabaseService service(&db.value(), service_options);

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  request.budget_ms = 0;  // degrade immediately
  StatusOr<TemporalQueryResponse> response =
      service.TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->degraded);
  const std::string jsonl = service.slow_query_log().DumpJsonl();
  EXPECT_NE(jsonl.find("\"reason\":\"degraded\""), std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"degraded\":true"), std::string::npos);
}

// -- Fleet metrics through the coordinator --------------------------------

TEST(FleetMetricsTest, CoordinatorExpositionCarriesShardLabeledSeries) {
  std::unique_ptr<Deployment> deployment = MakeDeployment(2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map);
  ASSERT_TRUE(coordinator.ok());

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  ASSERT_TRUE((*coordinator)->TemporalQuery(request, nullptr).ok());

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // Coordinator-own families first, then every shard's snapshot with a
  // shard label.
  EXPECT_NE(metrics->prometheus_text.find("hmmm_coordinator_fanouts_total"),
            std::string::npos);
  // hmmm_server_* families only exist inside the shard processes, so
  // their presence with shard/replica labels proves the fleet
  // aggregation.
  for (const char* series :
       {"hmmm_server_connections_total{shard=\"0\",replica=\"0\"}",
        "hmmm_server_connections_total{shard=\"1\",replica=\"0\"}"}) {
    EXPECT_NE(metrics->prometheus_text.find(series), std::string::npos)
        << "missing series " << series << "\n"
        << metrics->prometheus_text;
  }
  // json_snapshot stays coordinator-local: loadable, and free of the
  // shards' server-side families.
  MetricsRegistry probe;
  EXPECT_TRUE(probe.LoadSnapshotJson(metrics->json_snapshot).ok());
  EXPECT_EQ(metrics->json_snapshot.find("hmmm_server_connections_total"),
            std::string::npos);
}

}  // namespace
}  // namespace hmmm
