#include "observability/trace_codec.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "observability/query_trace.h"
#include "observability/sliding_window.h"
#include "observability/slow_query_log.h"

namespace hmmm {
namespace {

TraceSpan MakeSpan(const char* name, int id, int parent, double start_ms,
                   double elapsed_ms) {
  TraceSpan span;
  span.name = name;
  span.id = id;
  span.parent = parent;
  span.sort_key = id;
  span.start_offset_ms = start_ms;
  span.elapsed_ms = elapsed_ms;
  span.finished = true;
  return span;
}

// -- TraceContext ---------------------------------------------------------

TEST(TraceContextTest, MintedIdsAreNonZeroAndDistinct) {
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int i = 0; i < 100; ++i) {
    const TraceContext context = MintTraceContext();
    EXPECT_TRUE(context.has_trace_id());
    seen.insert({context.trace_id_hi, context.trace_id_lo});
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_FALSE(TraceContext{}.has_trace_id());
}

TEST(TraceContextTest, HexRenderingIs32Digits) {
  EXPECT_EQ(TraceIdHex(0, 1), "00000000000000000000000000000001");
  EXPECT_EQ(TraceIdHex(0x0123456789abcdefull, 0xfedcba9876543210ull),
            "0123456789abcdeffedcba9876543210");
}

// -- Span blob codec ------------------------------------------------------

TEST(SpanCodecTest, RoundTripsEveryField) {
  std::vector<TraceSpan> spans;
  spans.push_back(MakeSpan("server_query", 0, -1, 0.0, 12.5));
  spans.push_back(MakeSpan("step7_video_fanout", 1, 0, 0.25, 10.0));
  spans[1].sort_key = 42;
  spans[1].counters = {{"videos", 8}, {"candidates", 31}};
  spans[1].attributes = {{"shard", "2"}, {"endpoint", "127.0.0.1:9001"}};
  spans.push_back(MakeSpan("unfinished", 2, 0, 1.0, 0.0));
  spans[2].finished = false;

  const std::string blob = SerializeSpans(spans);
  const auto decoded = DeserializeSpans(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ((*decoded)[i].name, spans[i].name);
    EXPECT_EQ((*decoded)[i].id, spans[i].id);
    EXPECT_EQ((*decoded)[i].parent, spans[i].parent);
    EXPECT_EQ((*decoded)[i].sort_key, spans[i].sort_key);
    EXPECT_DOUBLE_EQ((*decoded)[i].start_offset_ms,
                     spans[i].start_offset_ms);
    EXPECT_DOUBLE_EQ((*decoded)[i].elapsed_ms, spans[i].elapsed_ms);
    EXPECT_EQ((*decoded)[i].finished, spans[i].finished);
    EXPECT_EQ((*decoded)[i].counters, spans[i].counters);
    EXPECT_EQ((*decoded)[i].attributes, spans[i].attributes);
  }
}

TEST(SpanCodecTest, EmptyForestRoundTrips) {
  const auto decoded = DeserializeSpans(SerializeSpans({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SpanCodecTest, EveryTruncationIsRejected) {
  std::vector<TraceSpan> spans;
  spans.push_back(MakeSpan("a", 0, -1, 0.0, 1.0));
  spans[0].counters = {{"n", 1}};
  spans[0].attributes = {{"k", "v"}};
  const std::string blob = SerializeSpans(spans);
  for (size_t n = 0; n < blob.size(); ++n) {
    const auto decoded = DeserializeSpans(blob.substr(0, n));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << n;
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(SpanCodecTest, HostileCountsCannotForceHugeAllocations) {
  // A blob whose leading count claims billions of spans must fail fast
  // with kDataLoss instead of attempting the allocation. Layout: version
  // byte, then a varint span count — craft one of ~2^34.
  const std::string hostile("\x01\xff\xff\xff\xff\x7f", 6);
  const auto decoded = DeserializeSpans(hostile);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(decoded.status().ToString().find("count"), std::string::npos);

  // Unknown blob version is rejected up front.
  std::string wrong_version = SerializeSpans({MakeSpan("a", 0, -1, 0, 1)});
  wrong_version[0] = '\x09';
  EXPECT_FALSE(DeserializeSpans(wrong_version).ok());

  // Trailing garbage after a well-formed forest is data loss, not
  // silently ignored.
  std::string trailing = SerializeSpans({MakeSpan("a", 0, -1, 0, 1)});
  trailing += "junk";
  EXPECT_FALSE(DeserializeSpans(trailing).ok());
}

TEST(SpanCodecTest, GraftRemapsIdsAndShiftsOffsets) {
  // Coordinator-side forest: root (id 0) with one fan-out span (id 1).
  std::vector<TraceSpan> dest;
  dest.push_back(MakeSpan("coordinator_query", 0, -1, 0.0, 20.0));
  dest.push_back(MakeSpan("shard_fanout", 1, 0, 2.0, 15.0));

  // Shard-side forest deliberately reuses ids 0/1 — grafting must remap.
  std::vector<TraceSpan> sub;
  sub.push_back(MakeSpan("server_query", 0, -1, 0.0, 14.0));
  sub.push_back(MakeSpan("step2_video_order", 1, 0, 0.5, 1.0));

  GraftSpans(&dest, /*parent_id=*/1, sub, /*base_offset_ms=*/2.0);
  ASSERT_EQ(dest.size(), 4u);
  const TraceSpan& grafted_root = dest[2];
  const TraceSpan& grafted_child = dest[3];
  EXPECT_EQ(grafted_root.name, "server_query");
  EXPECT_EQ(grafted_root.parent, 1);
  EXPECT_NE(grafted_root.id, 0);
  EXPECT_NE(grafted_root.id, 1);
  EXPECT_EQ(grafted_child.parent, grafted_root.id);
  EXPECT_DOUBLE_EQ(grafted_root.start_offset_ms, 2.0);
  EXPECT_DOUBLE_EQ(grafted_child.start_offset_ms, 2.5);
}

TEST(SpanCodecTest, GraftingTwoShardsKeepsForestsDisjoint) {
  std::vector<TraceSpan> dest;
  dest.push_back(MakeSpan("coordinator_query", 0, -1, 0.0, 20.0));
  dest.push_back(MakeSpan("shard_fanout", 1, 0, 1.0, 9.0));
  dest.push_back(MakeSpan("shard_fanout", 2, 0, 1.0, 8.0));
  for (int shard = 0; shard < 2; ++shard) {
    std::vector<TraceSpan> sub;
    sub.push_back(MakeSpan("server_query", 0, -1, 0.0, 7.0));
    GraftSpans(&dest, /*parent_id=*/1 + shard, sub, 1.0);
  }
  std::set<int> ids;
  for (const TraceSpan& span : dest) ids.insert(span.id);
  EXPECT_EQ(ids.size(), dest.size()) << "duplicate span ids after graft";
  EXPECT_EQ(dest[3].parent, 1);
  EXPECT_EQ(dest[4].parent, 2);
}

// -- TraceSampler ---------------------------------------------------------

TEST(TraceSamplerTest, RateZeroNeverSamples) {
  TraceSampler sampler(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(sampler.Decide());
}

TEST(TraceSamplerTest, RateOneAlwaysSamples) {
  TraceSampler sampler(1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(sampler.Decide());
}

TEST(TraceSamplerTest, FractionalRateIsExactOverManyCalls) {
  TraceSampler sampler(0.25);
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) sampled += sampler.Decide() ? 1 : 0;
  EXPECT_EQ(sampled, 250);
  // Negative and >1 rates clamp to the boundaries.
  TraceSampler never(-0.5);
  EXPECT_FALSE(never.Decide());
  TraceSampler always(7.0);
  EXPECT_TRUE(always.Decide());
}

TEST(TraceSamplerTest, ConcurrentDecisionsPreserveTheBudget) {
  TraceSampler sampler(0.5);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<int> counts(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sampler, &counts, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counts[t] += sampler.Decide() ? 1 : 0;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, kThreads * kPerThread / 2);
}

// -- SlowQueryLog ---------------------------------------------------------

SlowQueryEntry MakeEntry(const char* pattern, double total_ms) {
  SlowQueryEntry entry;
  entry.unix_ms = 1700000000000;
  entry.reason = "slow";
  entry.pattern = pattern;
  entry.total_ms = total_ms;
  return entry;
}

TEST(SlowQueryLogTest, RingEvictsOldestAndCountsDrops) {
  SlowQueryLog log(2);
  log.Add(MakeEntry("first", 100));
  log.Add(MakeEntry("second", 200));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
  log.Add(MakeEntry("third", 300));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  const std::string jsonl = log.DumpJsonl();
  EXPECT_EQ(jsonl.find("first"), std::string::npos);
  ASSERT_NE(jsonl.find("second"), std::string::npos);
  ASSERT_NE(jsonl.find("third"), std::string::npos);
  // Oldest first.
  EXPECT_LT(jsonl.find("second"), jsonl.find("third"));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.DumpJsonl(), "");
}

TEST(SlowQueryLogTest, JsonlCarriesEveryField) {
  SlowQueryLog log(4);
  SlowQueryEntry entry;
  entry.unix_ms = 1700000000123;
  entry.reason = "degraded";
  entry.pattern = "corner_kick then \"goal\"";
  entry.trace_id = "0123456789abcdeffedcba9876543210";
  entry.total_ms = 312.5;
  entry.budget_ms = 250.0;
  entry.degraded = true;
  entry.videos_skipped = 9;
  entry.shard_latency_ms = {{0, 12.5}, {2, 300.0}};
  entry.shard_errors = {{1, "DEADLINE_EXCEEDED"}};
  log.Add(std::move(entry));
  const std::string jsonl = log.DumpJsonl();
  EXPECT_NE(jsonl.find("\"ts_ms\":1700000000123"), std::string::npos);
  EXPECT_NE(jsonl.find("\"reason\":\"degraded\""), std::string::npos);
  // The pattern's embedded quotes are JSON-escaped.
  EXPECT_NE(jsonl.find("corner_kick then \\\"goal\\\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace_id\":\"0123456789abcdef"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"videos_skipped\":9"), std::string::npos);
  EXPECT_NE(jsonl.find("\"shard_errors\":{\"1\":\"DEADLINE_EXCEEDED\"}"),
            std::string::npos)
      << jsonl;
}

TEST(SlowQueryLogTest, AddStampsMissingWallClock) {
  SlowQueryLog log(1);
  SlowQueryEntry entry;
  entry.reason = "slow";
  log.Add(std::move(entry));
  const std::string jsonl = log.DumpJsonl();
  EXPECT_EQ(jsonl.find("\"ts_ms\":0,"), std::string::npos) << jsonl;
}

// -- SlidingWindowHistogram -----------------------------------------------

TEST(SlidingWindowTest, QuantilesOverOneSlice) {
  SlidingWindowHistogram histogram({1.0, 5.0, 25.0, 100.0});
  for (int i = 0; i < 90; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 9; ++i) histogram.Observe(20.0);
  histogram.Observe(600.0);
  EXPECT_EQ(histogram.WindowCount(), 100u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 25.0);
  // The p999 observation lives in the overflow bucket, which reports the
  // window max instead of a fake bound.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.999), 600.0);
}

TEST(SlidingWindowTest, OldSlicesAgeOutOfTheWindow) {
  SlidingWindowHistogram histogram({10.0}, /*num_slices=*/2);
  histogram.Observe(500.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 500.0);
  histogram.RotateForTesting();
  // Still inside the 2-slice window.
  EXPECT_EQ(histogram.WindowCount(), 1u);
  histogram.RotateForTesting();
  EXPECT_EQ(histogram.WindowCount(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0);
  histogram.Observe(1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 10.0);
}

}  // namespace
}  // namespace hmmm
