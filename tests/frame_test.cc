#include "media/frame.h"

#include <gtest/gtest.h>

#include "shots/histogram.h"

namespace hmmm {
namespace {

Frame GreenFrame(int w, int h) { return Frame(w, h, Rgb{40, 160, 40}); }

TEST(FrameTest, ConstructionAndAccess) {
  Frame f(4, 3, Rgb{1, 2, 3});
  EXPECT_EQ(f.width(), 4);
  EXPECT_EQ(f.height(), 3);
  EXPECT_EQ(f.pixel_count(), 12u);
  EXPECT_EQ(f.at(3, 2), (Rgb{1, 2, 3}));
  f.at(0, 0) = Rgb{9, 9, 9};
  EXPECT_EQ(f.at(0, 0).r, 9);
}

TEST(FrameTest, FillRectClips) {
  Frame f(4, 4, Rgb{0, 0, 0});
  f.FillRect(-2, -2, 2, 10, Rgb{255, 0, 0});
  EXPECT_EQ(f.at(0, 0).r, 255);
  EXPECT_EQ(f.at(1, 3).r, 255);
  EXPECT_EQ(f.at(2, 0).r, 0);
}

TEST(FrameTest, LuminanceWeights) {
  EXPECT_NEAR(Frame::Luminance(Rgb{255, 255, 255}), 255.0, 1e-9);
  EXPECT_NEAR(Frame::Luminance(Rgb{0, 0, 0}), 0.0, 1e-9);
  EXPECT_GT(Frame::Luminance(Rgb{0, 200, 0}), Frame::Luminance(Rgb{200, 0, 0}));
}

TEST(GrassRatioTest, FullGrassIsOne) {
  EXPECT_DOUBLE_EQ(GrassRatio(GreenFrame(8, 8)), 1.0);
}

TEST(GrassRatioTest, NoGrassIsZero) {
  EXPECT_DOUBLE_EQ(GrassRatio(Frame(8, 8, Rgb{120, 120, 140})), 0.0);
  EXPECT_DOUBLE_EQ(GrassRatio(Frame()), 0.0);
}

TEST(GrassRatioTest, HalfGrass) {
  Frame f(4, 4, Rgb{120, 120, 140});
  f.FillRect(0, 2, 4, 4, Rgb{40, 160, 40});
  EXPECT_DOUBLE_EQ(GrassRatio(f), 0.5);
}

TEST(PixelChangeTest, IdenticalFramesZero) {
  const Frame f = GreenFrame(6, 6);
  EXPECT_DOUBLE_EQ(PixelChangeFraction(f, f), 0.0);
}

TEST(PixelChangeTest, FullChangeIsOne) {
  EXPECT_DOUBLE_EQ(
      PixelChangeFraction(Frame(4, 4, Rgb{0, 0, 0}), Frame(4, 4, Rgb{255, 255, 255})),
      1.0);
}

TEST(PixelChangeTest, ThresholdSuppressesSmallNoise) {
  const Frame a(4, 4, Rgb{100, 100, 100});
  const Frame b(4, 4, Rgb{105, 105, 105});
  EXPECT_DOUBLE_EQ(PixelChangeFraction(a, b, /*threshold=*/16), 0.0);
  EXPECT_DOUBLE_EQ(PixelChangeFraction(a, b, /*threshold=*/2), 1.0);
}

TEST(PixelChangeTest, SizeMismatchReturnsZero) {
  EXPECT_DOUBLE_EQ(PixelChangeFraction(Frame(4, 4), Frame(5, 4)), 0.0);
}

TEST(ColorHistogramTest, NormalizedPerChannel) {
  const auto h = ColorHistogram::FromFrame(GreenFrame(8, 8));
  double sum = 0.0;
  for (int i = 0; i < ColorHistogram::kTotalBins; ++i) sum += h.bin(i);
  EXPECT_NEAR(sum, 3.0, 1e-12);  // one unit mass per channel
}

TEST(ColorHistogramTest, IdenticalFramesZeroDistance) {
  const auto a = ColorHistogram::FromFrame(GreenFrame(8, 8));
  const auto b = ColorHistogram::FromFrame(GreenFrame(8, 8));
  EXPECT_DOUBLE_EQ(a.L1Distance(b), 0.0);
  EXPECT_NEAR(a.Intersection(b), 3.0, 1e-12);
}

TEST(ColorHistogramTest, DisjointColorsMaxDistance) {
  const auto a = ColorHistogram::FromFrame(Frame(8, 8, Rgb{0, 0, 0}));
  const auto b = ColorHistogram::FromFrame(Frame(8, 8, Rgb{255, 255, 255}));
  EXPECT_NEAR(a.L1Distance(b), 6.0, 1e-12);
  EXPECT_NEAR(a.Intersection(b), 0.0, 1e-12);
}

TEST(ColorHistogramTest, EmptyFrameAllZero) {
  const auto h = ColorHistogram::FromFrame(Frame());
  for (int i = 0; i < ColorHistogram::kTotalBins; ++i) {
    EXPECT_DOUBLE_EQ(h.bin(i), 0.0);
  }
}

}  // namespace
}  // namespace hmmm
