#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialization.h"
#include "core/model_builder.h"
#include "storage/catalog_journal.h"
#include "storage/model_io.h"
#include "storage/record_log.h"
#include "test_util.h"

namespace hmmm {
namespace {

// Corruption corpus over every on-disk artefact: bit flips, truncated
// tails, bad magics and zero-length files must surface as the documented
// status codes (or recover, for the WAL's torn tail) — never as a crash,
// a hang, or silently wrong data.

std::string FreshPath(const std::string& name) {
  const std::string path = testing::TempPath(name);
  std::remove(path.c_str());
  return path;
}

size_t FileSize(const std::string& path) {
  return static_cast<size_t>(std::filesystem::file_size(path));
}

class RecordLogRecoveryTest : public ::testing::Test {
 protected:
  /// Writes a clean three-record log and returns its path.
  std::string WriteCleanLog(const std::string& name) {
    const std::string path = FreshPath(name);
    auto writer = RecordLogWriter::Open(path);
    EXPECT_TRUE(writer.ok());
    EXPECT_TRUE(writer->Append("alpha record").ok());
    EXPECT_TRUE(writer->Append("beta record").ok());
    EXPECT_TRUE(writer->Append("gamma record").ok());
    EXPECT_TRUE(writer->Close().ok());
    return path;
  }
};

TEST_F(RecordLogRecoveryTest, CleanLogIsLeftUntouched) {
  const std::string path = WriteCleanLog("recovery_clean.log");
  const size_t size_before = FileSize(path);
  auto contents = RecoverRecordLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->dropped_tail_bytes, 0u);
  EXPECT_EQ(FileSize(path), size_before);
  std::remove(path.c_str());
}

TEST_F(RecordLogRecoveryTest, TornTailIsPhysicallyTruncated) {
  const std::string path = WriteCleanLog("recovery_torn.log");
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const std::string torn = full->substr(0, full->size() - 5);
  ASSERT_TRUE(WriteFile(path, torn).ok());

  auto contents = RecoverRecordLog(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->records.size(), 2u);
  EXPECT_GT(contents->dropped_tail_bytes, 0u);
  // The tail is gone from disk, not just skipped in memory.
  EXPECT_EQ(FileSize(path), torn.size() - contents->dropped_tail_bytes);
  // A second recovery sees a clean log.
  auto again = RecoverRecordLog(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->dropped_tail_bytes, 0u);
  std::remove(path.c_str());
}

TEST_F(RecordLogRecoveryTest, AppendAfterRecoveryLandsOnFrameBoundary) {
  // The regression RecoverRecordLog exists for: append after a torn tail
  // WITHOUT truncation would land behind the garbage bytes and turn a
  // recoverable tail into unrecoverable mid-file corruption.
  const std::string path = WriteCleanLog("recovery_append.log");
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(WriteFile(path, full->substr(0, full->size() - 5)).ok());

  ASSERT_TRUE(RecoverRecordLog(path).ok());
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("delta record").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0], "alpha record");
  EXPECT_EQ(contents->records[1], "beta record");
  EXPECT_EQ(contents->records[2], "delta record");
  EXPECT_EQ(contents->dropped_tail_bytes, 0u);
  std::remove(path.c_str());
}

TEST_F(RecordLogRecoveryTest, ZeroLengthLogIsEmptyNotAnError) {
  const std::string path = FreshPath("recovery_empty.log");
  ASSERT_TRUE(WriteFile(path, "").ok());
  auto contents = RecoverRecordLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(contents->dropped_tail_bytes, 0u);
  std::remove(path.c_str());
}

TEST_F(RecordLogRecoveryTest, MissingLogIsNotFound) {
  EXPECT_EQ(RecoverRecordLog("/nonexistent/dir/wal.log").status().code(),
            StatusCode::kNotFound);
}

TEST_F(RecordLogRecoveryTest, MidFileBitFlipIsDataLossAndNotTruncated) {
  const std::string path = WriteCleanLog("recovery_flip.log");
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string corrupted = *full;
  corrupted[7] ^= 0x40;  // inside the first record
  ASSERT_TRUE(WriteFile(path, corrupted).ok());
  const size_t size_before = FileSize(path);

  // Recovery must refuse to "fix" mid-file corruption by truncating away
  // good records behind it.
  auto contents = RecoverRecordLog(path);
  EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(FileSize(path), size_before);
  std::remove(path.c_str());
}

TEST_F(RecordLogRecoveryTest, JournalSurvivesCrashRecoverAppendCycle) {
  const std::string path = FreshPath("journal_crash_cycle.wal");
  {
    auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
    ASSERT_TRUE(journal.ok()) << journal.status();
    auto v0 = journal->AppendVideo("match");
    ASSERT_TRUE(v0.ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 0.0, 4.0, {2}, {0.9, 0.1}).ok());
    ASSERT_TRUE(journal->AppendShot(*v0, 4.0, 9.0, {0}, {0.1, 0.9}).ok());
    ASSERT_TRUE(journal->Flush().ok());
  }
  // Crash mid-append: tear the final frame.
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(WriteFile(path, full->substr(0, full->size() - 3)).ok());

  // Open #1 recovers (drops the torn shot) and keeps ingesting.
  {
    auto journal = CatalogJournal::Open(path, SoccerEvents(), 2);
    ASSERT_TRUE(journal.ok()) << journal.status();
    EXPECT_GT(journal->recovered_tail_bytes(), 0u);
    EXPECT_EQ(journal->catalog().num_shots(), 1u);
    ASSERT_TRUE(journal->AppendShot(0, 4.0, 7.0, {1}, {0.5, 0.5}).ok());
    ASSERT_TRUE(journal->Flush().ok());
  }
  // Open #2: the post-crash append replays cleanly — nothing torn left.
  auto reopened = CatalogJournal::Open(path, SoccerEvents(), 2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->recovered_tail_bytes(), 0u);
  EXPECT_EQ(reopened->catalog().num_shots(), 2u);
  EXPECT_EQ(reopened->catalog().shot(1).events, (std::vector<EventId>{1}));
  EXPECT_TRUE(reopened->catalog().Validate().ok());
  std::remove(path.c_str());
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(SnapshotCorruptionTest, CatalogBitFlipIsDataLoss) {
  const std::string path = FreshPath("catalog_flip.bin");
  ASSERT_TRUE(SaveCatalog(catalog_, path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  // Flip one payload bit at several offsets; the CRC must catch each.
  for (const size_t offset : {size_t{24}, full->size() / 2, full->size() - 1}) {
    std::string corrupted = *full;
    corrupted[offset] ^= 0x01;
    ASSERT_TRUE(WriteFile(path, corrupted).ok());
    auto loaded = LoadCatalog(path);
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "offset " << offset << ": " << loaded.status();
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotCorruptionTest, CatalogBadMagicIsDataLoss) {
  const std::string path = FreshPath("catalog_magic.bin");
  ASSERT_TRUE(SaveCatalog(catalog_, path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string wrong = *full;
  wrong[0] ^= 0xFF;  // first magic byte
  ASSERT_TRUE(WriteFile(path, wrong).ok());
  auto loaded = LoadCatalog(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST_F(SnapshotCorruptionTest, CatalogTruncationAndZeroLengthRejected) {
  const std::string path = FreshPath("catalog_trunc.bin");
  ASSERT_TRUE(SaveCatalog(catalog_, path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  for (const size_t keep : {size_t{0}, size_t{3}, full->size() / 2}) {
    ASSERT_TRUE(WriteFile(path, full->substr(0, keep)).ok());
    auto loaded = LoadCatalog(path);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_NE(loaded.status().code(), StatusCode::kNotFound);
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotCorruptionTest, ModelBitFlipIsDataLoss) {
  const std::string path = FreshPath("model_flip.bin");
  ASSERT_TRUE(model_.SaveToFile(path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string corrupted = *full;
  corrupted[full->size() / 2] ^= 0x10;
  ASSERT_TRUE(WriteFile(path, corrupted).ok());
  auto loaded = HierarchicalModel::LoadFromFile(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST_F(SnapshotCorruptionTest, ModelWrongMagicIsDataLossNotCrash) {
  const std::string path = FreshPath("model_magic.bin");
  // A catalog file is a well-formed checksummed blob with the WRONG
  // magic for a model: the reader must identify the mismatch instead of
  // deserializing garbage.
  ASSERT_TRUE(SaveCatalog(catalog_, path).ok());
  auto loaded = HierarchicalModel::LoadFromFile(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST_F(SnapshotCorruptionTest, MissingSnapshotsAreNotFound) {
  EXPECT_EQ(LoadCatalog("/nonexistent/dir/catalog.bin").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      HierarchicalModel::LoadFromFile("/nonexistent/dir/model.bin").status()
          .code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace hmmm
