#include "retrieval/traversal.h"

#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "query/translator.h"
#include "retrieval/metrics.h"
#include "test_util.h"

namespace hmmm {
namespace {

class TraversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(TraversalTest, RejectsEmptyAndMalformedPatterns) {
  HmmmTraversal traversal(model_, catalog_);
  EXPECT_FALSE(traversal.Retrieve(TemporalPattern{}).ok());
  TemporalPattern bad;
  bad.steps.emplace_back();  // step without alternatives
  EXPECT_FALSE(traversal.Retrieve(bad).ok());
  TemporalPattern unknown = TemporalPattern::FromEvents({99});
  EXPECT_FALSE(traversal.Retrieve(unknown).ok());
}

TEST_F(TraversalTest, SingleEventQueryFindsAnnotatedShot) {
  HmmmTraversal traversal(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({1});  // corner_kick
  auto results = traversal.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // Best result should be the single corner_kick shot (ShotId 3).
  EXPECT_EQ(results->front().shots, (std::vector<ShotId>{3}));
}

TEST_F(TraversalTest, TwoStepPatternRespectsTemporalOrder) {
  HmmmTraversal traversal(model_, catalog_);
  // free_kick (2) then goal (0).
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto results = traversal.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  for (const RetrievedPattern& result : *results) {
    ASSERT_EQ(result.shots.size(), 2u);
    const ShotRecord& first = catalog_.shot(result.shots[0]);
    const ShotRecord& second = catalog_.shot(result.shots[1]);
    EXPECT_EQ(first.video_id, second.video_id);
    EXPECT_LT(first.index_in_video, second.index_in_video);
  }
  // The top result should actually satisfy the annotations.
  EXPECT_TRUE(
      PatternMatchesAnnotations(catalog_, results->front().shots, pattern));
}

TEST_F(TraversalTest, OneCandidatePerVideo) {
  HmmmTraversal traversal(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({0});  // goal, both videos
  auto results = traversal.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);  // Step 7: one candidate per video
  EXPECT_NE((*results)[0].video, (*results)[1].video);
}

TEST_F(TraversalTest, ScoreIsSumOfEdgeWeights) {
  HmmmTraversal traversal(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto results = traversal.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  for (const RetrievedPattern& result : *results) {
    double sum = 0.0;
    for (double w : result.edge_weights) sum += w;
    EXPECT_NEAR(result.score, sum, 1e-12);
    EXPECT_EQ(result.edge_weights.size(), result.shots.size());
  }
}

TEST_F(TraversalTest, ResultsSortedByScore) {
  HmmmTraversal traversal(model_, catalog_);
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({0}));
  ASSERT_TRUE(results.ok());
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_GE((*results)[i - 1].score, (*results)[i].score);
  }
}

TEST_F(TraversalTest, MaxResultsTruncates) {
  TraversalOptions options;
  options.max_results = 1;
  HmmmTraversal traversal(model_, catalog_, options);
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({0}));
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST_F(TraversalTest, MaxVideosLimitsSearch) {
  TraversalOptions options;
  options.max_videos = 1;
  HmmmTraversal traversal(model_, catalog_, options);
  RetrievalStats stats;
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({0}), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(stats.videos_considered, 1u);
  EXPECT_LE(results->size(), 1u);
}

TEST_F(TraversalTest, Statspopulated) {
  HmmmTraversal traversal(model_, catalog_);
  RetrievalStats stats;
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({2, 0}), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(stats.videos_considered, 0u);
  EXPECT_GT(stats.states_visited, 0u);
  EXPECT_GT(stats.sim_evaluations, 0u);
  EXPECT_EQ(stats.candidates_scored, results->size());
}

TEST_F(TraversalTest, VideoOrderPrefersContainingVideos) {
  HmmmTraversal traversal(model_, catalog_);
  // corner_kick only exists in video 0.
  const auto order = traversal.VideoOrder(TemporalPattern::FromEvents({1}));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST_F(TraversalTest, BeamWidthOneIsGreedy) {
  // With beam 1 the traversal picks, at each hop, the argmax of
  // A1 * sim. On this catalog querying free_kick->goal in video 0 the
  // greedy path from shot 0 goes to shot 2 (the free_kick+goal shot).
  TraversalOptions options;
  options.beam_width = 1;
  HmmmTraversal traversal(model_, catalog_, options);
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({2, 0}));
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // Video 0's candidate must be the greedy path: from the free_kick shot
  // the argmax of A1 * sim leads to the free_kick+goal shot.
  const RetrievedPattern* video0 = nullptr;
  for (const auto& r : *results) {
    if (r.video == 0) video0 = &r;
  }
  ASSERT_NE(video0, nullptr);
  EXPECT_EQ(video0->shots, (std::vector<ShotId>{0, 2}));
}

TEST_F(TraversalTest, WiderBeamNeverWorseTopScore) {
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  TraversalOptions narrow;
  narrow.beam_width = 1;
  TraversalOptions wide;
  wide.beam_width = 8;
  auto narrow_results =
      HmmmTraversal(model_, catalog_, narrow).Retrieve(pattern);
  auto wide_results = HmmmTraversal(model_, catalog_, wide).Retrieve(pattern);
  ASSERT_TRUE(narrow_results.ok());
  ASSERT_TRUE(wide_results.ok());
  ASSERT_FALSE(narrow_results->empty());
  ASSERT_FALSE(wide_results->empty());
  EXPECT_GE(wide_results->front().score + 1e-12,
            narrow_results->front().score);
}

TEST_F(TraversalTest, PatternLongerThanVideoFails) {
  // 5 steps but each video has at most 3 annotated shots.
  HmmmTraversal traversal(model_, catalog_);
  auto results =
      traversal.Retrieve(TemporalPattern::FromEvents({0, 0, 0, 0, 0}));
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_F(TraversalTest, CrossVideoExtendsWhenEnabled) {
  TraversalOptions options;
  options.cross_video = true;
  HmmmTraversal traversal(model_, catalog_, options);
  // 4 goals in a row exist nowhere within one video; cross-video can
  // stitch goal shots across videos... with only 3 goals total it still
  // fails, but a goal;goal;goal pattern can span video_b(2 goals) + a
  // cross into video_a's goal shot (but video_a's goal is shot 2 which is
  // annotated goal too). Check 3-goal query returns something.
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({0, 0, 0}));
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  bool any_cross = false;
  for (const auto& r : *results) any_cross |= r.crosses_videos;
  EXPECT_TRUE(any_cross);
}

TEST_F(TraversalTest, WithoutCrossVideoNoSpanningPatterns) {
  HmmmTraversal traversal(model_, catalog_);
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({0, 0, 0}));
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    EXPECT_FALSE(r.crosses_videos);
  }
}

TEST_F(TraversalTest, AllowSameShotServesConsecutiveSteps) {
  TraversalOptions options;
  options.allow_same_shot = true;
  HmmmTraversal traversal(model_, catalog_, options);
  // free_kick then goal can be served by the single free_kick+goal shot
  // (state self-transition A1(1,1) = 0.5 in video 0).
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({2, 0}));
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  for (const auto& r : *results) {
    ASSERT_EQ(r.shots.size(), 2u);
    EXPECT_LE(catalog_.shot(r.shots[0]).index_in_video,
              catalog_.shot(r.shots[1]).index_in_video);
  }
}

TEST_F(TraversalTest, AnnotatedFirstRestrictsToAnnotatedShots) {
  // With the Step-3 rule on (default), a query for corner_kick only
  // considers the one corner-annotated shot even though other shots are
  // "similar".
  HmmmTraversal traversal(model_, catalog_);
  RetrievalStats stats;
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({1}), &stats);
  ASSERT_TRUE(results.ok());
  // Video 0 contributes its corner shot; video 1 has no corner-annotated
  // shot, so it falls back to similarity over all 3 states: 1 + 3 = 4.
  EXPECT_EQ(stats.states_visited, 4u);
}

TEST_F(TraversalTest, SimilarityOnlyModeConsidersAllStates) {
  TraversalOptions options;
  options.annotated_first = false;
  HmmmTraversal traversal(model_, catalog_, options);
  RetrievalStats stats;
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({1}), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(stats.states_visited, 6u);  // all states of both videos
}

TEST_F(TraversalTest, AnnotatedFirstImprovesTopRelevance) {
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  TraversalOptions annotated;
  annotated.annotated_first = true;
  TraversalOptions similarity;
  similarity.annotated_first = false;
  auto with = HmmmTraversal(model_, catalog_, annotated).Retrieve(pattern);
  auto without =
      HmmmTraversal(model_, catalog_, similarity).Retrieve(pattern);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  const auto m_with = EvaluateRanking(catalog_, pattern, *with, 5);
  const auto m_without = EvaluateRanking(catalog_, pattern, *without, 5);
  EXPECT_GE(m_with.precision_at_k + 1e-12, m_without.precision_at_k);
}

TEST_F(TraversalTest, GeneratedCorpusFindsRelevantResults) {
  // An easier corpus (well-separated classes, dense events) plus learned
  // feature weights: the ranked list must contain annotation-exact hits.
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(41);
  config.num_videos = 10;
  config.min_shots_per_video = 40;
  config.max_shots_per_video = 60;
  config.event_shot_fraction = 0.4;
  config.feature_noise = 0.04;
  config.class_separation = 1.5;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  ASSERT_TRUE(catalog.ok());

  ModelBuilderOptions builder_options;
  builder_options.learn_feature_weights = true;
  auto model = ModelBuilder(*catalog, builder_options).Build();
  ASSERT_TRUE(model.ok());
  TraversalOptions options;
  options.beam_width = 4;
  options.max_results = 10;
  HmmmTraversal traversal(*model, *catalog, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});  // fk -> goal
  auto results = traversal.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  ASSERT_FALSE(EnumerateTrueOccurrences(*catalog, pattern).empty());
  const auto metrics = EvaluateRanking(*catalog, pattern, *results, 10);
  EXPECT_GT(metrics.relevant_retrieved, 0u);
}

}  // namespace
}  // namespace hmmm
