#include "events/knn.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "events/decision_tree.h"
#include "events/training.h"

namespace hmmm {
namespace {

LabeledDataset TwoBlobDataset(int per_class, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < per_class; ++i) {
    rows.push_back({rng.NextGaussian(0.2, 0.05), rng.NextGaussian(0.2, 0.05)});
    labels.push_back(0);
    rows.push_back({rng.NextGaussian(0.8, 0.05), rng.NextGaussian(0.8, 0.05)});
    labels.push_back(1);
  }
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows(rows);
  dataset.labels = std::move(labels);
  return dataset;
}

TEST(KnnTest, RejectsBadInputs) {
  KnnClassifier knn;
  EXPECT_FALSE(knn.Train(LabeledDataset{}).ok());
  EXPECT_FALSE(knn.Predict({1.0}).ok());  // untrained
  LabeledDataset bad;
  bad.features = Matrix(2, 2);
  bad.labels = {0};
  EXPECT_FALSE(knn.Train(bad).ok());
  KnnOptions zero_k;
  zero_k.k = 0;
  KnnClassifier bad_k(zero_k);
  EXPECT_FALSE(bad_k.Train(TwoBlobDataset(5)).ok());
}

TEST(KnnTest, ClassifiesSeparableBlobs) {
  KnnClassifier knn;
  ASSERT_TRUE(knn.Train(TwoBlobDataset(30)).ok());
  EXPECT_TRUE(knn.trained());
  EXPECT_EQ(*knn.Predict({0.18, 0.22}), 0);
  EXPECT_EQ(*knn.Predict({0.82, 0.78}), 1);
}

TEST(KnnTest, ExactNeighborDominatesWithDistanceWeights) {
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows({{0.0}, {0.5}, {0.6}, {0.7}});
  dataset.labels = {0, 1, 1, 1};
  KnnOptions options;
  options.k = 4;
  options.distance_weighted = true;
  KnnClassifier knn(options);
  ASSERT_TRUE(knn.Train(dataset).ok());
  // Query exactly on the class-0 example: its 1/(d+eps) weight dwarfs the
  // three class-1 votes.
  EXPECT_EQ(*knn.Predict({0.0}), 0);
}

TEST(KnnTest, UniformVotesUseMajority) {
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows({{0.0}, {0.5}, {0.6}, {0.7}});
  dataset.labels = {0, 1, 1, 1};
  KnnOptions options;
  options.k = 4;
  options.distance_weighted = false;
  KnnClassifier knn(options);
  ASSERT_TRUE(knn.Train(dataset).ok());
  EXPECT_EQ(*knn.Predict({0.0}), 1);  // 3 vs 1 majority
}

TEST(KnnTest, KLargerThanDatasetClamped) {
  KnnOptions options;
  options.k = 100;
  KnnClassifier knn(options);
  ASSERT_TRUE(knn.Train(TwoBlobDataset(3)).ok());
  auto predicted = knn.Predict({0.2, 0.2});
  ASSERT_TRUE(predicted.ok());
}

TEST(KnnTest, PredictProbaSumsToOne) {
  KnnClassifier knn;
  ASSERT_TRUE(knn.Train(TwoBlobDataset(20)).ok());
  auto proba = knn.PredictProba({0.5, 0.5});
  ASSERT_TRUE(proba.ok());
  double sum = 0.0;
  for (double p : *proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(proba->size(), knn.classes().size());
}

TEST(KnnTest, BackgroundLabelSupported) {
  LabeledDataset dataset = TwoBlobDataset(10);
  for (int& label : dataset.labels) {
    if (label == 0) label = kBackgroundLabel;
  }
  KnnClassifier knn;
  ASSERT_TRUE(knn.Train(dataset).ok());
  EXPECT_EQ(*knn.Predict({0.2, 0.2}), kBackgroundLabel);
  EXPECT_EQ(knn.classes().front(), kBackgroundLabel);
}

TEST(KnnTest, WidthMismatchRejected) {
  KnnClassifier knn;
  ASSERT_TRUE(knn.Train(TwoBlobDataset(5)).ok());
  EXPECT_FALSE(knn.Predict({1.0}).ok());
  EXPECT_FALSE(knn.Predict({1.0, 2.0, 3.0}).ok());
}

TEST(KnnTest, ComparableAccuracyToDecisionTree) {
  const LabeledDataset dataset = TwoBlobDataset(60, 11);
  Rng rng(4);
  auto split = SplitDataset(dataset, 0.3, rng);
  ASSERT_TRUE(split.ok());

  KnnClassifier knn;
  ASSERT_TRUE(knn.Train(split->train).ok());
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(split->train).ok());

  size_t knn_correct = 0, tree_correct = 0;
  for (size_t i = 0; i < split->test.size(); ++i) {
    const auto row = split->test.features.Row(i);
    if (*knn.Predict(row) == split->test.labels[i]) ++knn_correct;
    if (*tree.Predict(row) == split->test.labels[i]) ++tree_correct;
  }
  const double n = static_cast<double>(split->test.size());
  EXPECT_GT(knn_correct / n, 0.9);
  EXPECT_GT(tree_correct / n, 0.9);
}

}  // namespace
}  // namespace hmmm
