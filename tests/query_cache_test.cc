#include "retrieval/query_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/model_builder.h"
#include "feedback/trainer.h"
#include "retrieval/engine.h"
#include "test_util.h"

namespace hmmm {
namespace {

RetrievedPattern MakeResult(double score, ShotId shot) {
  RetrievedPattern result;
  result.shots = {shot};
  result.edge_weights = {score};
  result.score = score;
  result.video = 0;
  return result;
}

TEST(PatternSignatureTest, EncodesStepsGapsAndAlternatives) {
  const auto linear = TemporalPattern::FromEvents({2, 0});
  const auto reversed = TemporalPattern::FromEvents({0, 2});
  EXPECT_NE(PatternSignature(linear), PatternSignature(reversed));
  EXPECT_EQ(PatternSignature(linear),
            PatternSignature(TemporalPattern::FromEvents({2, 0})));

  // A gap bound changes the signature.
  TemporalPattern gapped = TemporalPattern::FromEvents({2, 0});
  gapped.steps[1].max_gap = 2;
  EXPECT_NE(PatternSignature(gapped), PatternSignature(linear));

  // Conjunction vs alternatives vs separate steps are all distinct.
  TemporalPattern conjunction;
  conjunction.steps.push_back(PatternStep{{{0, 1}}, -1});
  TemporalPattern alternatives;
  alternatives.steps.push_back(PatternStep{{{0}, {1}}, -1});
  TemporalPattern sequence = TemporalPattern::FromEvents({0, 1});
  EXPECT_NE(PatternSignature(conjunction), PatternSignature(alternatives));
  EXPECT_NE(PatternSignature(conjunction), PatternSignature(sequence));
  EXPECT_NE(PatternSignature(alternatives), PatternSignature(sequence));
}

TEST(QueryCacheTest, HitReturnsInsertedRanking) {
  QueryCache cache(4);
  cache.Insert("a", 0, {MakeResult(0.5, 3)});
  std::vector<RetrievedPattern> results;
  ASSERT_TRUE(cache.Lookup("a", 0, &results));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].score, 0.5);
  EXPECT_EQ(results[0].shots, (std::vector<ShotId>{3}));
  EXPECT_FALSE(cache.Lookup("b", 0, &results));
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCache cache(2);
  cache.Insert("a", 0, {MakeResult(0.1, 1)});
  cache.Insert("b", 0, {MakeResult(0.2, 2)});
  std::vector<RetrievedPattern> results;
  // Touch "a" so "b" becomes the eviction victim.
  ASSERT_TRUE(cache.Lookup("a", 0, &results));
  cache.Insert("c", 0, {MakeResult(0.3, 3)});
  EXPECT_TRUE(cache.Lookup("a", 0, &results));
  EXPECT_FALSE(cache.Lookup("b", 0, &results));
  EXPECT_TRUE(cache.Lookup("c", 0, &results));
}

TEST(QueryCacheTest, ReinsertRefreshesEntry) {
  QueryCache cache(2);
  cache.Insert("a", 0, {MakeResult(0.1, 1)});
  cache.Insert("a", 0, {MakeResult(0.9, 9)});
  std::vector<RetrievedPattern> results;
  ASSERT_TRUE(cache.Lookup("a", 0, &results));
  EXPECT_DOUBLE_EQ(results[0].score, 0.9);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(QueryCacheTest, VersionChangeFlushesEverything) {
  QueryCache cache(4);
  cache.Insert("a", 0, {MakeResult(0.1, 1)});
  cache.Insert("b", 0, {MakeResult(0.2, 2)});
  std::vector<RetrievedPattern> results;
  EXPECT_FALSE(cache.Lookup("a", 1, &results));  // stale: flushed
  EXPECT_EQ(cache.stats().entries, 0u);
  // Entries inserted under the new version are served normally.
  cache.Insert("a", 1, {MakeResult(0.3, 3)});
  EXPECT_TRUE(cache.Lookup("a", 1, &results));
  EXPECT_DOUBLE_EQ(results[0].score, 0.3);
}

TEST(QueryCacheTest, ClearDropsEntriesButKeepsCounters) {
  QueryCache cache(4);
  cache.Insert("a", 0, {MakeResult(0.1, 1)});
  std::vector<RetrievedPattern> results;
  ASSERT_TRUE(cache.Lookup("a", 0, &results));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("a", 0, &results));
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(QueryCacheTest, HitReplaysStoredRetrievalStats) {
  QueryCache cache(4);
  RetrievalStats recorded;
  recorded.videos_considered = 3;
  recorded.states_visited = 40;
  recorded.sim_evaluations = 25;
  recorded.candidates_scored = 7;
  recorded.beam_pruned = 5;
  recorded.annotated_fallbacks = 1;
  cache.Insert("a", 0, {MakeResult(0.5, 3)}, recorded);

  // Stats accumulate on top of whatever the caller already tallied.
  RetrievalStats replayed;
  replayed.sim_evaluations = 10;
  std::vector<RetrievedPattern> results;
  ASSERT_TRUE(cache.Lookup("a", 0, &results, &replayed));
  EXPECT_EQ(replayed.videos_considered, 3u);
  EXPECT_EQ(replayed.states_visited, 40u);
  EXPECT_EQ(replayed.sim_evaluations, 35u);
  EXPECT_EQ(replayed.candidates_scored, 7u);
  EXPECT_EQ(replayed.beam_pruned, 5u);
  EXPECT_EQ(replayed.annotated_fallbacks, 1u);

  // A null stats pointer stays supported.
  ASSERT_TRUE(cache.Lookup("a", 0, &results));
}

TEST(QueryCacheTest, CountsEvictionsAndInvalidations) {
  QueryCache cache(2);
  cache.Insert("a", 0, {MakeResult(0.1, 1)});
  cache.Insert("b", 0, {MakeResult(0.2, 2)});
  cache.Insert("c", 0, {MakeResult(0.3, 3)});  // evicts "a"
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);

  std::vector<RetrievedPattern> results;
  EXPECT_FALSE(cache.Lookup("b", 1, &results));  // version bump: flush
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.Clear();
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(QueryCacheTest, AttachedMetricsMirrorTheCounters) {
  MetricsRegistry registry;
  QueryCache cache(2);
  cache.AttachMetrics(&registry, "cache_");
  std::vector<RetrievedPattern> results;
  EXPECT_FALSE(cache.Lookup("a", 0, &results));
  cache.Insert("a", 0, {MakeResult(0.1, 1)});
  ASSERT_TRUE(cache.Lookup("a", 0, &results));
  cache.Insert("b", 0, {MakeResult(0.2, 2)});
  cache.Insert("c", 0, {MakeResult(0.3, 3)});  // evicts
  cache.Clear();                               // invalidates

  EXPECT_EQ(registry.GetCounter("cache_hits_total", "")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("cache_misses_total", "")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("cache_evictions_total", "")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("cache_invalidations_total", "")->value(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("cache_entries", "")->value(), 0.0);
}

// -- Engine integration ---------------------------------------------------

TEST(SingleFlightTest, LeaderComputesAndWaitersAreCoalesced) {
  QueryCache cache(4);
  std::vector<RetrievedPattern> results;
  // Nobody in flight: this caller becomes the leader.
  ASSERT_EQ(cache.LookupOrCompute("k", 0, &results),
            QueryCache::LookupOutcome::kCompute);

  // A stampede of identical queries parks behind the leader.
  constexpr int kWaiters = 6;
  std::atomic<int> hits{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&cache, &hits] {
      std::vector<RetrievedPattern> waiter_results;
      RetrievalStats waiter_stats;
      if (cache.LookupOrCompute("k", 0, &waiter_results, &waiter_stats) ==
          QueryCache::LookupOutcome::kHit) {
        hits.fetch_add(1);
        EXPECT_EQ(waiter_results.size(), 1u);
        EXPECT_EQ(waiter_stats.videos_considered, 9u);
      }
    });
  }
  // Release the leader only after every waiter is provably parked, so
  // the coalesced count is deterministic.
  while (cache.stats().coalesced < kWaiters) {
    std::this_thread::yield();
  }
  RetrievalStats computed;
  computed.videos_considered = 9;
  cache.Insert("k", 0, {MakeResult(0.7, 5)}, computed);
  cache.FinishCompute("k");
  for (auto& t : waiters) t.join();

  EXPECT_EQ(hits.load(), kWaiters);
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.coalesced, static_cast<size_t>(kWaiters));
  // One compute for the whole stampede.
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SingleFlightTest, FailedLeaderPromotesAWaiter) {
  QueryCache cache(4);
  std::vector<RetrievedPattern> results;
  ASSERT_EQ(cache.LookupOrCompute("k", 0, &results),
            QueryCache::LookupOutcome::kCompute);

  std::atomic<int> computes{0};
  std::thread waiter([&cache, &computes] {
    std::vector<RetrievedPattern> waiter_results;
    if (cache.LookupOrCompute("k", 0, &waiter_results) ==
        QueryCache::LookupOutcome::kCompute) {
      computes.fetch_add(1);
      cache.Insert("k", 0, {MakeResult(0.4, 2)});
      cache.FinishCompute("k");
    }
  });
  while (cache.stats().coalesced < 1) {
    std::this_thread::yield();
  }
  // The leader fails (or computed something uncacheable, e.g. a degraded
  // anytime result): it finishes WITHOUT inserting. The waiter must be
  // promoted to leader rather than stranded or served nothing.
  cache.FinishCompute("k");
  waiter.join();
  EXPECT_EQ(computes.load(), 1);
  // The promoted leader's entry is served to later callers.
  ASSERT_TRUE(cache.Lookup("k", 0, &results));
  EXPECT_DOUBLE_EQ(results[0].score, 0.4);
}

TEST(SingleFlightTest, FinishComputeIsIdempotentForUnknownKeys) {
  QueryCache cache(4);
  cache.FinishCompute("never-started");  // must not crash or wedge
  std::vector<RetrievedPattern> results;
  EXPECT_EQ(cache.LookupOrCompute("never-started", 0, &results),
            QueryCache::LookupOutcome::kCompute);
  cache.FinishCompute("never-started");
}

TEST(SingleFlightTest, DistinctKeysComputeIndependently) {
  QueryCache cache(4);
  std::vector<RetrievedPattern> results;
  ASSERT_EQ(cache.LookupOrCompute("a", 0, &results),
            QueryCache::LookupOutcome::kCompute);
  // A different key is not blocked by "a"'s in-flight compute.
  ASSERT_EQ(cache.LookupOrCompute("b", 0, &results),
            QueryCache::LookupOutcome::kCompute);
  cache.FinishCompute("a");
  cache.FinishCompute("b");
  EXPECT_EQ(cache.stats().coalesced, 0u);
}

TEST(SingleFlightTest, EngineStampedeCostsOneTraversal) {
  const VideoCatalog catalog =
      testing::GeneratedSoccerCatalog(/*seed=*/5, /*num_videos=*/10);
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  constexpr int kCallers = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&] {
      auto results = engine->Retrieve(pattern);
      if (!results.ok() || results->empty()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const QueryCacheStats stats = engine->cache_stats();
  // Exactly one caller computed; everyone else was a cache hit (either
  // coalesced behind the leader or served after it finished).
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<size_t>(kCallers - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EngineCacheTest, SecondIdenticalQueryIsServedFromCache) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  auto first = engine->Query("free_kick ; goal");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine->cache_stats().hits, 0u);
  auto second = engine->Query("free_kick ; goal");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].shots, (*second)[i].shots);
    EXPECT_EQ((*first)[i].score, (*second)[i].score);
  }
}

TEST(EngineCacheTest, StatsRequestsAreServedFromCacheWithReplayedStats) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  RetrievalStats computed;
  ASSERT_TRUE(engine->Query("goal", &computed).ok());
  EXPECT_GT(computed.sim_evaluations, 0u);  // the traversal actually ran
  EXPECT_EQ(engine->cache_stats().hits, 0u);

  // The second identical query hits the cache AND still reports the full
  // cost accounting of the traversal that produced the entry.
  RetrievalStats replayed;
  ASSERT_TRUE(engine->Query("goal", &replayed).ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  EXPECT_EQ(replayed.videos_considered, computed.videos_considered);
  EXPECT_EQ(replayed.states_visited, computed.states_visited);
  EXPECT_EQ(replayed.sim_evaluations, computed.sim_evaluations);
  EXPECT_EQ(replayed.candidates_scored, computed.candidates_scored);
  EXPECT_EQ(replayed.beam_pruned, computed.beam_pruned);
  EXPECT_EQ(replayed.annotated_fallbacks, computed.annotated_fallbacks);
}

TEST(EngineCacheTest, QueryMetricsCountHitsAndLatency) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Query("goal").ok());
  ASSERT_TRUE(engine->Query("goal").ok());

  MetricsRegistry& registry = engine->metrics_registry();
  EXPECT_EQ(registry.GetCounter("hmmm_queries_total", "")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("hmmm_query_cache_hits_total", "")->value(),
            1u);
  EXPECT_EQ(registry.GetCounter("hmmm_query_cache_misses_total", "")->value(),
            1u);
  EXPECT_EQ(
      registry
          .GetHistogram("hmmm_query_latency_ms", DefaultLatencyBucketsMs(), "")
          ->count(),
      2u);

  // Both dump formats include the query counter and the latency series.
  const std::string prometheus = engine->DumpMetricsPrometheus();
  EXPECT_NE(prometheus.find("hmmm_queries_total 2"), std::string::npos);
  EXPECT_NE(prometheus.find("hmmm_query_latency_ms_count 2"),
            std::string::npos);
  EXPECT_NE(prometheus.find("hmmm_pool_workers"), std::string::npos);
  const std::string json = engine->DumpMetricsJson();
  EXPECT_NE(json.find("\"hmmm_queries_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"hmmm_query_latency_ms\""), std::string::npos);
}

TEST(EngineCacheTest, FeedbackTrainingInvalidatesCachedResults) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  auto before = engine->Query("free_kick ; goal");
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->empty());
  ASSERT_TRUE(engine->Query("free_kick ; goal").ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);

  // One feedback round rewrites A1/Pi1/A2/Pi2 and bumps the version.
  const uint64_t version_before = engine->model().version();
  FeedbackTrainer trainer(catalog);
  ASSERT_TRUE(trainer.MarkPositive(engine->model(), before->front()).ok());
  auto trained = trainer.MaybeTrain(engine->mutable_model(), /*force=*/true);
  ASSERT_TRUE(trained.ok());
  ASSERT_TRUE(trained.value());
  EXPECT_GT(engine->model().version(), version_before);

  // The next identical query misses (flush) and recomputes under the
  // trained model; a repeat then hits again.
  const size_t misses_before = engine->cache_stats().misses;
  auto after = engine->Query("free_kick ; goal");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(engine->cache_stats().hits, 1u);
  EXPECT_GT(engine->cache_stats().misses, misses_before);
  ASSERT_TRUE(engine->Query("free_kick ; goal").ok());
  EXPECT_EQ(engine->cache_stats().hits, 2u);

  // The recomputed ranking matches a from-scratch traversal of the
  // trained model.
  HmmmTraversal traversal(engine->model(), catalog);
  const auto pattern =
      *CompileQuery("free_kick ; goal", catalog.vocabulary());
  auto fresh = traversal.Retrieve(pattern);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(after->size(), fresh->size());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_EQ((*after)[i].shots, (*fresh)[i].shots);
    EXPECT_EQ((*after)[i].score, (*fresh)[i].score);
  }
}

TEST(EngineCacheTest, SetTraversalOptionsClearsCache) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Query("goal").ok());
  EXPECT_EQ(engine->cache_stats().entries, 1u);
  TraversalOptions options = engine->traversal_options();
  options.max_results = 1;
  engine->set_traversal_options(options);
  EXPECT_EQ(engine->cache_stats().entries, 0u);
  auto results = engine->Query("goal");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(EngineCacheTest, ZeroEntriesDisablesCaching) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog, {}, {},
                                        /*query_cache_entries=*/0);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Query("goal").ok());
  ASSERT_TRUE(engine->Query("goal").ok());
  const QueryCacheStats stats = engine->cache_stats();
  EXPECT_EQ(stats.capacity, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

}  // namespace
}  // namespace hmmm
