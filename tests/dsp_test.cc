#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/fft.h"
#include "dsp/filterbank.h"
#include "dsp/stats.h"
#include "dsp/window.h"

namespace hmmm::dsp {
namespace {

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_FALSE(Fft(data).ok());
  std::vector<std::complex<double>> empty;
  EXPECT_FALSE(Fft(empty).ok());
}

TEST(FftTest, DcSignal) {
  std::vector<std::complex<double>> data(8, {1.0, 0.0});
  ASSERT_TRUE(Fft(data).ok());
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (size_t i = 1; i < 8; ++i) EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
}

TEST(FftTest, PureToneLandsInCorrectBin) {
  const size_t n = 64;
  std::vector<std::complex<double>> data(n);
  const int bin = 5;
  for (size_t i = 0; i < n; ++i) {
    data[i] = std::cos(2.0 * M_PI * bin * static_cast<double>(i) / n);
  }
  ASSERT_TRUE(Fft(data).ok());
  // A real cosine splits its energy between bins k and n-k.
  EXPECT_NEAR(std::abs(data[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[bin + 2]), 0.0, 1e-9);
}

TEST(FftTest, ForwardInverseRoundTrip) {
  const size_t n = 32;
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {std::sin(0.3 * static_cast<double>(i)),
               std::cos(0.7 * static_cast<double>(i))};
  }
  const auto original = data;
  ASSERT_TRUE(Fft(data).ok());
  ASSERT_TRUE(Fft(data, /*inverse=*/true).ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real() / n, original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag() / n, original[i].imag(), 1e-10);
  }
}

TEST(FftTest, ParsevalHolds) {
  const size_t n = 128;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = std::sin(0.1 * static_cast<double>(i) * i);
    data[i] = v;
    time_energy += v * v;
  }
  ASSERT_TRUE(Fft(data).ok());
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8);
}

TEST(FftTest, RealFftZeroPads) {
  std::vector<double> signal(10, 1.0);
  auto spectrum = RealFft(signal);
  ASSERT_TRUE(spectrum.ok());
  EXPECT_EQ(spectrum->size(), 16u);
}

TEST(FftTest, MagnitudeSpectrumOneSided) {
  std::vector<double> signal(64, 0.0);
  signal[0] = 1.0;  // impulse: flat spectrum
  auto mags = MagnitudeSpectrum(signal);
  ASSERT_TRUE(mags.ok());
  EXPECT_EQ(mags->size(), 33u);
  for (double m : *mags) EXPECT_NEAR(m, 1.0, 1e-12);
}

TEST(WindowTest, HannEndpointsAndPeak) {
  const auto w = HannWindow(9);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[8], 0.0, 1e-12);
  EXPECT_NEAR(w[4], 1.0, 1e-12);
}

TEST(WindowTest, HammingEndpoints) {
  const auto w = HammingWindow(11);
  EXPECT_NEAR(w[0], 0.08, 1e-12);
  EXPECT_NEAR(w[10], 0.08, 1e-12);
  EXPECT_NEAR(w[5], 1.0, 1e-12);
}

TEST(WindowTest, TrivialLengths) {
  EXPECT_EQ(HannWindow(0).size(), 0u);
  EXPECT_EQ(HannWindow(1), std::vector<double>{1.0});
}

TEST(WindowTest, ApplyWindowMultiplies) {
  std::vector<double> frame = {2.0, 2.0, 2.0};
  ApplyWindow(frame, {0.5, 1.0, 0.0});
  EXPECT_EQ(frame, (std::vector<double>{1.0, 2.0, 0.0}));
}

TEST(WindowTest, FrameSignalCountsAndContents) {
  std::vector<double> signal(10);
  for (size_t i = 0; i < 10; ++i) signal[i] = static_cast<double>(i);
  const auto frames = FrameSignal(signal, 4, 2);
  ASSERT_EQ(frames.size(), 4u);  // starts at 0, 2, 4, 6
  EXPECT_EQ(frames[0], (std::vector<double>{0, 1, 2, 3}));
  EXPECT_EQ(frames[3], (std::vector<double>{6, 7, 8, 9}));
}

TEST(WindowTest, FrameSignalShortInput) {
  EXPECT_TRUE(FrameSignal({1.0, 2.0}, 4, 2).empty());
  EXPECT_TRUE(FrameSignal({}, 4, 2).empty());
}

TEST(FilterbankTest, DefaultBandsCoverSpectrum) {
  const auto bands = DefaultSubBands();
  ASSERT_EQ(bands.size(), 4u);
  EXPECT_DOUBLE_EQ(bands.front().low_fraction, 0.0);
  EXPECT_DOUBLE_EQ(bands.back().high_fraction, 1.0);
}

TEST(FilterbankTest, LowToneEnergizesLowBand) {
  // 2-cycle (very low frequency) tone in a 256-sample frame.
  std::vector<double> frame(256);
  for (size_t i = 0; i < frame.size(); ++i) {
    frame[i] = std::sin(2.0 * M_PI * 2.0 * static_cast<double>(i) / 256.0);
  }
  auto rms = SubBandRms(frame, DefaultSubBands());
  ASSERT_TRUE(rms.ok());
  EXPECT_GT((*rms)[0], 10.0 * (*rms)[2]);
}

TEST(FilterbankTest, HighToneEnergizesHighBand) {
  std::vector<double> frame(256);
  for (size_t i = 0; i < frame.size(); ++i) {
    frame[i] = std::sin(2.0 * M_PI * 100.0 * static_cast<double>(i) / 256.0);
  }
  auto rms = SubBandRms(frame, DefaultSubBands());
  ASSERT_TRUE(rms.ok());
  EXPECT_GT((*rms)[3], 10.0 * (*rms)[0]);
}

TEST(FilterbankTest, MalformedBandRejected) {
  std::vector<double> frame(64, 1.0);
  EXPECT_FALSE(SubBandRms(frame, {{0.5, 0.5}}).ok());
  EXPECT_FALSE(SubBandRms(frame, {{-0.1, 0.5}}).ok());
  EXPECT_FALSE(SubBandRms(frame, {}).ok());
}

TEST(FilterbankTest, FrameRms) {
  EXPECT_DOUBLE_EQ(FrameRms({3.0, -3.0, 3.0, -3.0}), 3.0);
  EXPECT_DOUBLE_EQ(FrameRms({}), 0.0);
}

TEST(FilterbankTest, SpectralFluxZeroForIdentical) {
  std::vector<double> spec = {1.0, 2.0, 3.0};
  auto flux = SpectralFlux(spec, spec);
  ASSERT_TRUE(flux.ok());
  EXPECT_DOUBLE_EQ(*flux, 0.0);
}

TEST(FilterbankTest, SpectralFluxGrowsWithChange) {
  std::vector<double> a = {1.0, 1.0, 1.0, 1.0};
  std::vector<double> b = {1.1, 1.1, 1.1, 1.1};
  std::vector<double> c = {2.0, 2.0, 2.0, 2.0};
  EXPECT_LT(*SpectralFlux(a, b), *SpectralFlux(a, c));
  EXPECT_FALSE(SpectralFlux(a, {1.0}).ok());
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(static_cast<double>(i));
    all.Add(v);
    (i < 20 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatsHelpersTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(StatsHelpersTest, Differences) {
  EXPECT_EQ(Differences({1, 4, 2}), (std::vector<double>{3, -2}));
  EXPECT_TRUE(Differences({1}).empty());
}

TEST(StatsHelpersTest, DynamicRange) {
  EXPECT_DOUBLE_EQ(DynamicRange({1, 2, 4}), 0.75);
  EXPECT_DOUBLE_EQ(DynamicRange({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(DynamicRange({}), 0.0);
}

TEST(StatsHelpersTest, LowRate) {
  // mean = 2.5; threshold 1.25; one of four values below.
  EXPECT_DOUBLE_EQ(LowRate({1, 2, 3, 4}, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(LowRate({}, 0.5), 0.0);
}

}  // namespace
}  // namespace hmmm::dsp
