#ifndef HMMM_TESTS_TEST_UTIL_H_
#define HMMM_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "media/event_types.h"
#include "media/feature_level_generator.h"
#include "storage/catalog.h"

namespace hmmm::testing {

/// Feature vector helper: `base` everywhere except `hot` positions set to
/// `hot_value`.
inline std::vector<double> FeatureVector(int num_features, double base,
                                         const std::vector<int>& hot = {},
                                         double hot_value = 1.0) {
  std::vector<double> v(static_cast<size_t>(num_features), base);
  for (int h : hot) v[static_cast<size_t>(h)] = hot_value;
  return v;
}

/// A tiny deterministic hand-built catalog for core/retrieval tests:
/// 2 videos x a handful of shots with soccer annotations whose features
/// are well separated per event (feature e is "hot" for event e).
///
/// video 0 shots (annotated): free_kick | free_kick+goal | corner_kick
///   (the exact Section-4.2.1.1 example: NE = 1, 2, 1)
/// video 1 shots (annotated): goal | free_kick | goal
/// plus one un-annotated background shot per video.
inline VideoCatalog SmallSoccerCatalog() {
  EventVocabulary vocab = SoccerEvents();
  const int k = 8;  // one feature per event id
  VideoCatalog catalog(vocab, k);
  const EventId goal = 0, corner = 1, free_kick = 2;

  auto features_for = [&](const std::vector<EventId>& events) {
    std::vector<double> v(static_cast<size_t>(k), 0.1);
    for (EventId e : events) v[static_cast<size_t>(e)] = 0.9;
    return v;
  };

  const VideoId v0 = catalog.AddVideo("video_a");
  HMMM_CHECK(catalog.AddShot(v0, 0.0, 5.0, {free_kick},
                             features_for({free_kick})).ok());
  HMMM_CHECK(catalog.AddShot(v0, 5.0, 9.0, {}, features_for({})).ok());
  HMMM_CHECK(catalog.AddShot(v0, 9.0, 15.0, {free_kick, goal},
                             features_for({free_kick, goal})).ok());
  HMMM_CHECK(catalog.AddShot(v0, 15.0, 21.0, {corner},
                             features_for({corner})).ok());

  const VideoId v1 = catalog.AddVideo("video_b");
  HMMM_CHECK(catalog.AddShot(v1, 0.0, 4.0, {goal}, features_for({goal})).ok());
  HMMM_CHECK(catalog.AddShot(v1, 4.0, 7.0, {}, features_for({})).ok());
  HMMM_CHECK(catalog.AddShot(v1, 7.0, 12.0, {free_kick},
                             features_for({free_kick})).ok());
  HMMM_CHECK(catalog.AddShot(v1, 12.0, 18.0, {goal},
                             features_for({goal})).ok());

  HMMM_CHECK(catalog.Validate().ok());
  return catalog;
}

/// A mid-size generated soccer corpus for integration-style tests.
inline VideoCatalog GeneratedSoccerCatalog(uint64_t seed = 3,
                                           int num_videos = 8) {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(seed);
  config.num_videos = num_videos;
  config.min_shots_per_video = 40;
  config.max_shots_per_video = 70;
  config.event_shot_fraction = 0.25;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  HMMM_CHECK(catalog.ok());
  return std::move(catalog).value();
}

/// Temp-file path helper (unique per test invocation).
inline std::string TempPath(const std::string& name) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

}  // namespace hmmm::testing

#endif  // HMMM_TESTS_TEST_UTIL_H_
