#include "retrieval/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

namespace hmmm {
namespace {

// Mirrors the traversal's candidate ordering: score descending, ties
// broken by ascending arrival order (video order / generation). A strict
// total order as TopKHeap requires.
struct Entry {
  double score = 0.0;
  int order = 0;
};

struct BetterEntry {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.order < b.order;
  }
};

// Same order, but counts invocations so tests can pin down how many
// comparisons a Push costs on each path.
struct CountingBetter {
  size_t* calls;
  bool operator()(const Entry& a, const Entry& b) const {
    ++*calls;
    return BetterEntry{}(a, b);
  }
};

std::vector<Entry> Sorted(const TopKHeap<Entry, BetterEntry>& heap) {
  std::vector<Entry> out = heap.entries();
  std::sort(out.begin(), out.end(), BetterEntry{});
  return out;
}

TEST(TopKHeapTest, KeepsBestKInOrder) {
  TopKHeap<Entry, BetterEntry> heap(3);
  for (int i = 0; i < 8; ++i) {
    heap.Push(Entry{static_cast<double>(i % 5), i});
  }
  const std::vector<Entry> got = Sorted(heap);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].score, 4.0);
  EXPECT_EQ(got[0].order, 4);
  EXPECT_EQ(got[1].score, 3.0);
  EXPECT_EQ(got[1].order, 3);
  EXPECT_EQ(got[2].score, 2.0);
  EXPECT_EQ(got[2].order, 2);
}

// The boundary the traversal's determinism rides on: an element whose
// score TIES the retained worst but whose video order is LARGER must be
// rejected — it does not beat the incumbent under the total order, so
// evicting it would change the ranking relative to the serial walk.
TEST(TopKHeapTest, TieWithHigherOrderIsRejectedWithoutEviction) {
  TopKHeap<Entry, BetterEntry> heap(2);
  heap.Push(Entry{5.0, 0});
  heap.Push(Entry{1.0, 1});
  ASSERT_TRUE(heap.full());
  ASSERT_EQ(heap.worst().score, 1.0);
  ASSERT_EQ(heap.worst().order, 1);

  heap.Push(Entry{1.0, 7});  // same score, later order: loses the tie
  const std::vector<Entry> got = Sorted(heap);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].score, 1.0);
  EXPECT_EQ(got[1].order, 1);  // incumbent survived
}

// ...and the mirror image: a tie with a SMALLER order beats the
// incumbent and must evict it.
TEST(TopKHeapTest, TieWithLowerOrderEvictsIncumbent) {
  TopKHeap<Entry, BetterEntry> heap(2);
  heap.Push(Entry{5.0, 3});
  heap.Push(Entry{1.0, 9});
  ASSERT_TRUE(heap.full());

  heap.Push(Entry{1.0, 2});  // same score, earlier order: wins the tie
  const std::vector<Entry> got = Sorted(heap);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].score, 1.0);
  EXPECT_EQ(got[1].order, 2);  // newcomer replaced order 9
}

// The early-reject path's contract: a push that loses to the current
// worst costs exactly ONE comparison (the former pop_heap + push_heap
// round trip re-compared the loser against elements it had already
// lost to).
TEST(TopKHeapTest, EarlyRejectCostsExactlyOneComparison) {
  size_t calls = 0;
  TopKHeap<Entry, CountingBetter> heap(4, CountingBetter{&calls});
  for (int i = 0; i < 4; ++i) {
    heap.Push(Entry{10.0 + i, i});
  }
  ASSERT_TRUE(heap.full());

  calls = 0;
  heap.Push(Entry{1.0, 100});  // clear loser
  EXPECT_EQ(calls, 1u);

  calls = 0;
  heap.Push(Entry{10.0, 100});  // ties the worst, later order: still 1
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(heap.worst().order, 0);
}

// A winning push on a full heap replaces the front with one sift-down,
// never growing past capacity, and the surviving set matches a from-
// scratch sort of everything pushed.
TEST(TopKHeapTest, ReplaceTopMatchesFullSort) {
  constexpr size_t kCapacity = 5;
  TopKHeap<Entry, BetterEntry> heap(kCapacity);
  std::vector<Entry> all;
  // Deterministic pseudo-random-ish sequence with repeated scores so
  // ties exercise the order tiebreak.
  for (int i = 0; i < 64; ++i) {
    Entry e{static_cast<double>((i * 7) % 11), i};
    all.push_back(e);
    heap.Push(e);
    EXPECT_LE(heap.size(), kCapacity);
  }
  std::sort(all.begin(), all.end(), BetterEntry{});
  const std::vector<Entry> got = Sorted(heap);
  ASSERT_EQ(got.size(), kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(got[i].score, all[i].score) << i;
    EXPECT_EQ(got[i].order, all[i].order) << i;
  }
}

}  // namespace
}  // namespace hmmm
