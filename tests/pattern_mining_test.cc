#include "core/pattern_mining.h"

#include <gtest/gtest.h>

#include "media/soccer_generator.h"
#include "query/translator.h"
#include "retrieval/metrics.h"
#include "test_util.h"

namespace hmmm {
namespace {

TEST(PatternMiningTest, HandCheckableCounts) {
  // video 0 annotated events by position: [fk], [fk, goal], [corner]
  // video 1: [goal], [fk], [goal]
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  PatternMiningOptions options;
  options.min_length = 2;
  options.max_length = 2;
  options.max_gap = 2;
  options.min_support = 1;
  options.max_results = 100;
  const auto mined = MineFrequentEventPatterns(catalog, options);
  ASSERT_FALSE(mined.empty());

  auto support_of = [&](std::vector<EventId> events) -> size_t {
    for (const MinedPattern& p : mined) {
      if (p.events == events) return p.support;
    }
    return 0;
  };
  const EventId goal = 0, corner = 1, fk = 2;
  // fk -> goal: video 0 (pos0 -> pos1) and video 1 (pos1 -> pos2) = 2.
  EXPECT_EQ(support_of({fk, goal}), 2u);
  // fk -> fk: video 0 pos0 -> pos1 = 1.
  EXPECT_EQ(support_of({fk, fk}), 1u);
  // goal -> corner: video 0 pos1 -> pos2 = 1.
  EXPECT_EQ(support_of({goal, corner}), 1u);
  // goal -> fk: video 1 pos0 -> pos1 = 1.
  EXPECT_EQ(support_of({goal, fk}), 1u);
  // corner -> anything: corner is last in its video = 0 (absent).
  EXPECT_EQ(support_of({corner, goal}), 0u);

  // Video support: fk->goal occurs in both videos.
  for (const MinedPattern& p : mined) {
    if (p.events == std::vector<EventId>{fk, goal}) {
      EXPECT_EQ(p.video_support, 2u);
    }
  }
}

TEST(PatternMiningTest, GapBoundLimitsPairs) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  PatternMiningOptions tight;
  tight.min_length = 2;
  tight.max_length = 2;
  tight.max_gap = 1;  // adjacent annotated shots only
  tight.min_support = 1;
  tight.max_results = 100;
  const auto mined = MineFrequentEventPatterns(catalog, tight);
  // goal(pos0) -> goal(pos2) in video 1 needs gap 2: absent at gap 1.
  for (const MinedPattern& p : mined) {
    EXPECT_NE(p.events, (std::vector<EventId>{0, 0}));
  }
  // fk(pos1) -> corner(pos2) in video 0 is adjacent: present at gap 1.
  bool found = false;
  for (const MinedPattern& p : mined) {
    found |= p.events == std::vector<EventId>{2, 1};
  }
  EXPECT_TRUE(found);
}

TEST(PatternMiningTest, MinSupportFilters) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  PatternMiningOptions options;
  options.min_length = 2;
  options.max_length = 2;
  options.max_gap = 2;
  options.min_support = 2;
  const auto mined = MineFrequentEventPatterns(catalog, options);
  for (const MinedPattern& p : mined) {
    EXPECT_GE(p.support, 2u);
  }
  // Two pairs reach support 2: fk -> goal (both videos) and fk -> corner
  // (twice within video 0, via positions 0 and 1). Equal support, so the
  // two-video pattern ranks first by video support.
  ASSERT_EQ(mined.size(), 2u);
  EXPECT_EQ(mined[0].events, (std::vector<EventId>{2, 0}));
  EXPECT_EQ(mined[0].video_support, 2u);
  EXPECT_EQ(mined[1].events, (std::vector<EventId>{2, 1}));
  EXPECT_EQ(mined[1].video_support, 1u);
}

TEST(PatternMiningTest, SortedBySupportAndTruncated) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(17, 12);
  PatternMiningOptions options;
  options.max_results = 5;
  options.min_support = 1;
  const auto mined = MineFrequentEventPatterns(catalog, options);
  ASSERT_LE(mined.size(), 5u);
  for (size_t i = 1; i < mined.size(); ++i) {
    EXPECT_GE(mined[i - 1].support, mined[i].support);
  }
}

TEST(PatternMiningTest, MinedPatternsAreQueryable) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(19, 10);
  PatternMiningOptions options;
  options.min_support = 1;
  options.max_results = 10;
  const auto mined = MineFrequentEventPatterns(catalog, options);
  ASSERT_FALSE(mined.empty());
  for (const MinedPattern& p : mined) {
    // The query string round-trips through the parser...
    auto pattern = CompileQuery(p.ToQuery(catalog.vocabulary()),
                                catalog.vocabulary());
    ASSERT_TRUE(pattern.ok());
    // ...and unbounded enumeration finds at least `support` witnesses
    // (mining is gap-bounded, so unbounded matching can only find more).
    const auto occurrences = EnumerateTrueOccurrences(catalog, *pattern);
    EXPECT_GE(occurrences.size(), p.support);
  }
}

TEST(PatternMiningTest, MarkovStructureSurfacesInMining) {
  // The soccer transition chain makes free_kick -> goal likelier than
  // goal -> free_kick at short gaps; mining should reflect that on a
  // large enough corpus.
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(23);
  config.num_videos = 40;
  config.event_shot_fraction = 0.3;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  ASSERT_TRUE(catalog.ok());
  PatternMiningOptions options;
  options.min_length = 2;
  options.max_length = 2;
  options.max_gap = 1;
  options.min_support = 1;
  options.max_results = 1000;
  const auto mined = MineFrequentEventPatterns(*catalog, options);
  size_t fk_goal = 0, goal_fk = 0;
  for (const MinedPattern& p : mined) {
    if (p.events == std::vector<EventId>{2, 0}) fk_goal = p.support;
    if (p.events == std::vector<EventId>{0, 2}) goal_fk = p.support;
  }
  EXPECT_GT(fk_goal, goal_fk);
}

TEST(PatternMiningTest, EmptyCatalogAndBudget) {
  VideoCatalog empty(SoccerEvents(), 2);
  EXPECT_TRUE(MineFrequentEventPatterns(empty).empty());

  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(29, 10);
  PatternMiningOptions capped;
  capped.min_support = 1;
  capped.max_occurrences = 5;  // absurdly small budget must not crash
  const auto mined = MineFrequentEventPatterns(catalog, capped);
  size_t total = 0;
  for (const MinedPattern& p : mined) total += p.support;
  EXPECT_LE(total, 5u);
}

}  // namespace
}  // namespace hmmm
