// Failure-injection robustness: random corruption, truncation, and
// garbage inputs must never crash a loader or the query parser — they
// return error Status (or, for benign mutations, a valid object).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_builder.h"
#include "query/parser.h"
#include "storage/model_io.h"
#include "test_util.h"

namespace hmmm {
namespace {

TEST(RobustnessTest, CatalogLoaderSurvivesRandomByteFlips) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const std::string blob = SerializeCatalog(catalog);
  Rng rng(123);
  for (int round = 0; round < 200; ++round) {
    std::string corrupted = blob;
    const int flips = rng.NextInt(1, 4);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64(corrupted.size()));
      corrupted[pos] = static_cast<char>(rng.NextUint64(256));
    }
    auto result = DeserializeCatalog(corrupted);
    if (result.ok()) {
      // A no-op mutation: the result must still be fully valid.
      EXPECT_TRUE(result->Validate().ok());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(RobustnessTest, CatalogLoaderSurvivesRandomTruncation) {
  const std::string blob = SerializeCatalog(testing::SmallSoccerCatalog());
  Rng rng(5);
  for (int round = 0; round < 100; ++round) {
    const size_t keep = static_cast<size_t>(rng.NextUint64(blob.size()));
    auto result = DeserializeCatalog(std::string_view(blob).substr(0, keep));
    EXPECT_FALSE(result.ok());
  }
}

TEST(RobustnessTest, ModelLoaderSurvivesRandomByteFlips) {
  auto model = ModelBuilder(testing::SmallSoccerCatalog()).Build();
  ASSERT_TRUE(model.ok());
  const std::string blob = model->Serialize();
  Rng rng(321);
  for (int round = 0; round < 200; ++round) {
    std::string corrupted = blob;
    const size_t pos = static_cast<size_t>(rng.NextUint64(corrupted.size()));
    corrupted[pos] = static_cast<char>(rng.NextUint64(256));
    auto result = HierarchicalModel::Deserialize(corrupted);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST(RobustnessTest, ModelLoaderSurvivesGarbage) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::string garbage(rng.NextInt(0, 512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextUint64(256));
    EXPECT_FALSE(HierarchicalModel::Deserialize(garbage).ok());
    EXPECT_FALSE(DeserializeCatalog(garbage).ok());
  }
}

TEST(RobustnessTest, ParserSurvivesRandomInput) {
  const EventVocabulary vocab = SoccerEvents();
  Rng rng(99);
  const std::string alphabet = "abcdefgh_;&|()<>-> 0123456789";
  size_t parsed_ok = 0;
  for (int round = 0; round < 500; ++round) {
    std::string query(static_cast<size_t>(rng.NextInt(0, 40)), ' ');
    for (char& c : query) {
      c = alphabet[static_cast<size_t>(rng.NextUint64(alphabet.size()))];
    }
    auto result = ParseQuery(query, vocab);
    if (result.ok()) ++parsed_ok;  // a random string may be a valid query
  }
  // The point is no crash; most random strings fail to parse.
  EXPECT_LT(parsed_ok, 100u);
}

TEST(RobustnessTest, ParserSurvivesAdversarialShapes) {
  const EventVocabulary vocab = SoccerEvents();
  const std::vector<std::string> inputs = {
      std::string(10000, '('),
      std::string(10000, ';'),
      std::string(10000, 'a'),
      "goal" + std::string(500, ' ') + "; goal",
      "(goal|" + std::string(200, 'x') + ")",
      "goal ;<999999999 goal",
      "goal ;<-3 goal",
      std::string("\x01\x02\x03\xff", 4),
  };
  for (const std::string& input : inputs) {
    auto result = ParseQuery(input, vocab);  // must not crash
    (void)result;
  }
  // A long but well-formed chain parses fine.
  std::string chain = "goal";
  for (int i = 0; i < 200; ++i) chain += " ; goal";
  EXPECT_TRUE(ParseQuery(chain, vocab).ok());
}

TEST(RobustnessTest, EmptyCatalogEndToEnd) {
  VideoCatalog catalog(SoccerEvents(), 20);
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_global_states(), 0u);
  auto restored = HierarchicalModel::Deserialize(model->Serialize());
  EXPECT_TRUE(restored.ok());
}

}  // namespace
}  // namespace hmmm
