#include "features/audio_features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "features/extractor.h"
#include "features/feature_schema.h"

namespace hmmm {
namespace {

AudioClip Tone(double freq, double seconds, int rate = 8000,
               double amplitude = 0.5) {
  std::vector<double> samples(static_cast<size_t>(seconds * rate));
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] = amplitude * std::sin(2.0 * M_PI * freq * static_cast<double>(i) / rate);
  }
  return AudioClip(rate, std::move(samples));
}

AudioClip Noise(double seconds, double amplitude, uint64_t seed = 3,
                int rate = 8000) {
  Rng rng(seed);
  std::vector<double> samples(static_cast<size_t>(seconds * rate));
  for (double& s : samples) s = amplitude * rng.NextDouble(-1.0, 1.0);
  return AudioClip(rate, std::move(samples));
}

TEST(AudioFeaturesTest, EmptyClipGivesZeros) {
  auto features = ExtractAudioFeatures(AudioClip());
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ(features->volume_mean, 0.0);
  EXPECT_DOUBLE_EQ(features->sf_mean, 0.0);
}

TEST(AudioFeaturesTest, TooShortClipGivesZeros) {
  AudioClip clip(8000, std::vector<double>(10, 0.5));
  auto features = ExtractAudioFeatures(clip);
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ(features->energy_mean, 0.0);
}

TEST(AudioFeaturesTest, SteadyToneHasStableVolume) {
  auto features = ExtractAudioFeatures(Tone(440.0, 1.0));
  ASSERT_TRUE(features.ok());
  // Constant-amplitude tone: volume ~ constant across windows.
  EXPECT_NEAR(features->volume_mean, 1.0, 0.05);  // normalized by max
  EXPECT_LT(features->volume_std, 0.05);
  EXPECT_LT(features->volume_range, 0.1);
  EXPECT_NEAR(features->energy_mean, 0.5 / std::sqrt(2.0), 0.02);
}

TEST(AudioFeaturesTest, LoudnessScalesEnergyNotNormalizedVolume) {
  auto quiet = ExtractAudioFeatures(Tone(440.0, 0.5, 8000, 0.1));
  auto loud = ExtractAudioFeatures(Tone(440.0, 0.5, 8000, 0.8));
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(loud.ok());
  EXPECT_NEAR(loud->energy_mean / quiet->energy_mean, 8.0, 0.5);
  EXPECT_NEAR(loud->volume_mean, quiet->volume_mean, 0.02);
}

TEST(AudioFeaturesTest, LowToneFillsSubBand1) {
  auto low = ExtractAudioFeatures(Tone(200.0, 0.5));   // 200 Hz of 4 kHz Nyquist
  auto high = ExtractAudioFeatures(Tone(2500.0, 0.5)); // band 3 is 2-3 kHz
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(low->sub1_mean, 5.0 * low->sub3_mean);
  EXPECT_GT(high->sub3_mean, 5.0 * high->sub1_mean);
}

TEST(AudioFeaturesTest, VolumeBurstRaisesRangeAndLowrate) {
  // Half silence-ish, half loud noise: large dynamic range, many windows
  // below half the mean.
  AudioClip clip = Noise(0.5, 0.02);
  const AudioClip loud = Noise(0.5, 0.9, /*seed=*/5);
  ASSERT_TRUE(clip.Append(loud).ok());
  auto features = ExtractAudioFeatures(clip);
  ASSERT_TRUE(features.ok());
  EXPECT_GT(features->volume_range, 0.8);
  EXPECT_GT(features->energy_lowrate, 0.3);
  EXPECT_GT(features->volume_std, 0.2);
}

TEST(AudioFeaturesTest, SpectralFluxHigherForChangingSpectrum) {
  // Alternating tone blocks change the spectrum between windows.
  AudioClip changing = Tone(300.0, 0.25);
  ASSERT_TRUE(changing.Append(Tone(2000.0, 0.25)).ok());
  ASSERT_TRUE(changing.Append(Tone(600.0, 0.25)).ok());
  ASSERT_TRUE(changing.Append(Tone(3000.0, 0.25)).ok());
  auto steady = ExtractAudioFeatures(Tone(440.0, 1.0));
  auto moving = ExtractAudioFeatures(changing);
  ASSERT_TRUE(steady.ok());
  ASSERT_TRUE(moving.ok());
  EXPECT_GT(moving->sf_mean, 2.0 * steady->sf_mean);
}

TEST(AudioFeaturesTest, CustomAnalysisWindow) {
  AudioAnalysisOptions options;
  options.window_seconds = 0.064;
  options.hop_seconds = 0.032;
  auto features = ExtractAudioFeatures(Tone(440.0, 1.0), options);
  ASSERT_TRUE(features.ok());
  EXPECT_GT(features->energy_mean, 0.0);
}

TEST(FeatureSchemaTest, TwentyFeaturesNamed) {
  EXPECT_EQ(kNumFeatures, 20);
  EXPECT_EQ(AllFeatureNames().size(), 20u);
  EXPECT_EQ(FeatureName(0), "grass_ratio");
  EXPECT_EQ(FeatureName(19), "sf_range");
  EXPECT_EQ(FeatureName(-1), "<unknown>");
  EXPECT_EQ(FeatureName(20), "<unknown>");
  EXPECT_TRUE(IsVisualFeature(4));
  EXPECT_FALSE(IsVisualFeature(5));
}

TEST(FeatureSchemaTest, FindFeatureByName) {
  auto idx = FindFeature("sub1_lowrate");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, static_cast<int>(FeatureIndex::kSub1LowRate));
  EXPECT_FALSE(FindFeature("nonexistent").ok());
}

TEST(FeatureSchemaTest, DescriptionsNonEmpty) {
  for (int i = 0; i < kNumFeatures; ++i) {
    EXPECT_FALSE(FeatureDescription(i).empty());
  }
}

TEST(ExtractorPackTest, PackPlacesValuesByIndex) {
  VisualFeatures visual;
  visual.grass_ratio = 0.7;
  visual.background_mean = 0.3;
  AudioFeatures audio;
  audio.volume_std = 0.11;
  audio.sf_range = 0.99;
  const auto packed = ShotFeatureExtractor::Pack(visual, audio);
  ASSERT_EQ(packed.size(), 20u);
  EXPECT_DOUBLE_EQ(packed[static_cast<size_t>(FeatureIndex::kGrassRatio)], 0.7);
  EXPECT_DOUBLE_EQ(packed[static_cast<size_t>(FeatureIndex::kBackgroundMean)], 0.3);
  EXPECT_DOUBLE_EQ(packed[static_cast<size_t>(FeatureIndex::kVolumeStd)], 0.11);
  EXPECT_DOUBLE_EQ(packed[static_cast<size_t>(FeatureIndex::kSfRange)], 0.99);
}

}  // namespace
}  // namespace hmmm
