#include "events/event_detector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "media/feature_level_generator.h"

namespace hmmm {
namespace {

/// Builds a labeled dataset from a feature-level corpus: single-event
/// shots labeled with their event, un-annotated shots with background.
LabeledDataset DatasetFromCorpus(const GeneratedCorpus& corpus) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (const GeneratedVideo& video : corpus.videos) {
    for (const GeneratedShot& shot : video.shots) {
      if (shot.events.size() > 1) continue;
      rows.push_back(shot.features);
      labels.push_back(shot.events.empty() ? kBackgroundLabel
                                           : shot.events[0]);
    }
  }
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows(rows);
  dataset.labels = std::move(labels);
  return dataset;
}

FeatureLevelConfig EasyConfig() {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(33);
  config.num_videos = 10;
  config.min_shots_per_video = 50;
  config.max_shots_per_video = 70;
  config.event_shot_fraction = 0.4;
  config.feature_noise = 0.04;  // well-separated classes
  config.class_separation = 1.4;
  return config;
}

TEST(EventDetectorTest, TrainRejectsBadLabels) {
  EventDetector detector(SoccerEvents());
  LabeledDataset bad;
  bad.features = Matrix(2, 3);
  bad.labels = {0, 99};
  EXPECT_FALSE(detector.Train(bad).ok());
  EXPECT_FALSE(detector.trained());
}

TEST(EventDetectorTest, DetectBeforeTrainFails) {
  EventDetector detector(SoccerEvents());
  EXPECT_FALSE(detector.Detect({0.5, 0.5}).ok());
}

TEST(EventDetectorTest, DetectsEventsOnSeparableCorpus) {
  FeatureLevelGenerator generator(EasyConfig());
  const GeneratedCorpus corpus = generator.Generate();
  const LabeledDataset dataset = DatasetFromCorpus(corpus);

  EventDetector detector(corpus.vocabulary);
  ASSERT_TRUE(detector.Train(dataset).ok());
  ASSERT_TRUE(detector.trained());

  // Re-detect on the training distribution: accuracy should be high.
  size_t correct = 0, total = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    auto events = detector.Detect(dataset.features.Row(i));
    ASSERT_TRUE(events.ok());
    const int truth = dataset.labels[i];
    const int predicted = events->empty() ? kBackgroundLabel : (*events)[0];
    ++total;
    if (predicted == truth) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.8);
}

TEST(EventDetectorTest, ConfidenceGateSuppressesWeakDetections) {
  FeatureLevelGenerator generator(EasyConfig());
  const GeneratedCorpus corpus = generator.Generate();
  const LabeledDataset dataset = DatasetFromCorpus(corpus);

  EventDetectorOptions strict;
  strict.min_confidence = 1.01;  // impossible to clear
  EventDetector detector(corpus.vocabulary, strict);
  ASSERT_TRUE(detector.Train(dataset).ok());
  auto events = detector.Detect(dataset.features.Row(0));
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST(EventDetectorTest, CleansNonFiniteExamples) {
  EventDetector detector(SoccerEvents());
  LabeledDataset dataset;
  dataset.features = *Matrix::FromRows(
      {{0.1, 0.1}, {0.9, 0.9}, {std::nan(""), 0.5}});
  dataset.labels = {kBackgroundLabel, 0, 1};
  EXPECT_TRUE(detector.Train(dataset).ok());
}

TEST(EventDetectorTest, VocabularyExposed) {
  EventDetector detector(SoccerEvents());
  EXPECT_EQ(detector.vocabulary().size(), 8u);
}

}  // namespace
}  // namespace hmmm
