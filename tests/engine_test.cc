#include "retrieval/engine.h"

#include <gtest/gtest.h>

#include "retrieval/metrics.h"
#include "test_util.h"

namespace hmmm {
namespace {

TEST(EngineTest, CreateBuildsModelFromCatalog) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->model().num_videos(), 2u);
  EXPECT_EQ(&engine->catalog(), &catalog);
}

TEST(EngineTest, TextQueryEndToEnd) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  auto results = engine->Query("free_kick ; goal");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  const auto pattern = *CompileQuery("free_kick ; goal", catalog.vocabulary());
  EXPECT_TRUE(
      PatternMatchesAnnotations(catalog, results->front().shots, pattern));
}

TEST(EngineTest, BadQueryPropagatesParserError) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Query("").ok());
  EXPECT_FALSE(engine->Query("unknown_event").ok());
}

TEST(EngineTest, QueryWithStatsReportsCosts) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  RetrievalStats stats;
  auto results = engine->Query("goal", &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(stats.sim_evaluations, 0u);
}

TEST(EngineTest, WrapsPrebuiltModel) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto built = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(built.ok());
  const std::string blob = built->model().Serialize();
  auto model = HierarchicalModel::Deserialize(blob);
  ASSERT_TRUE(model.ok());

  RetrievalEngine engine(catalog, std::move(model).value());
  auto results = engine.Query("goal");
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST(EngineTest, TraversalOptionsAdjustable) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  TraversalOptions options = engine->traversal_options();
  options.max_results = 1;
  engine->set_traversal_options(options);
  auto results = engine->Query("goal");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(EngineTest, MutableModelSupportsInPlaceLearning) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  engine->mutable_model().mutable_pi2() = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(engine->model().pi2()[0], 1.0);
  auto results = engine->Query("goal");
  ASSERT_TRUE(results.ok());
}

TEST(EngineTest, MoveSemantics) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto engine = RetrievalEngine::Create(catalog);
  ASSERT_TRUE(engine.ok());
  RetrievalEngine moved = std::move(engine).value();
  auto results = moved.Query("goal");
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

}  // namespace
}  // namespace hmmm
