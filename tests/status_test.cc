#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace hmmm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not_found: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    const std::string name = StatusCodeToString(static_cast<StatusCode>(c));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "code " << c;
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::DataLoss("x"));
}

TEST(StatusTest, StreamingUsesToString) {
  std::ostringstream os;
  os << Status::IOError("disk gone");
  EXPECT_EQ(os.str(), "io_error: disk gone");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

namespace macro_helpers {

Status FailIf(bool fail) {
  if (fail) return Status::Internal("failed");
  return Status::OK();
}

Status Caller(bool fail) {
  HMMM_RETURN_IF_ERROR(FailIf(fail));
  return Status::OK();
}

StatusOr<int> Produce(bool fail) {
  if (fail) return Status::NotFound("no value");
  return 7;
}

StatusOr<int> Chain(bool fail) {
  HMMM_ASSIGN_OR_RETURN(int x, Produce(fail));
  return x + 1;
}

}  // namespace macro_helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macro_helpers::Caller(false).ok());
  const Status s = macro_helpers::Caller(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  const StatusOr<int> ok = macro_helpers::Chain(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  const StatusOr<int> bad = macro_helpers::Chain(true);
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hmmm
