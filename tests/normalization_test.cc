#include "features/normalization.h"

#include <gtest/gtest.h>

namespace hmmm {
namespace {

TEST(FeatureNormalizerTest, Equation3MapsToUnitInterval) {
  auto raw = *Matrix::FromRows({{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}});
  FeatureNormalizer normalizer;
  auto b1 = normalizer.FitTransform(raw);
  ASSERT_TRUE(b1.ok());
  EXPECT_DOUBLE_EQ(b1->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(b1->at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(b1->at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(b1->at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(b1->at(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(b1->at(2, 1), 1.0);
}

TEST(FeatureNormalizerTest, ConstantColumnNormalizesToZero) {
  auto raw = *Matrix::FromRows({{7.0, 1.0}, {7.0, 2.0}});
  FeatureNormalizer normalizer;
  auto b1 = normalizer.FitTransform(raw);
  ASSERT_TRUE(b1.ok());
  EXPECT_DOUBLE_EQ(b1->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(b1->at(1, 0), 0.0);
}

TEST(FeatureNormalizerTest, NegativeValuesHandled) {
  auto raw = *Matrix::FromRows({{-10.0}, {-5.0}, {0.0}});
  FeatureNormalizer normalizer;
  auto b1 = normalizer.FitTransform(raw);
  ASSERT_TRUE(b1.ok());
  EXPECT_DOUBLE_EQ(b1->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(b1->at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(b1->at(2, 0), 1.0);
}

TEST(FeatureNormalizerTest, FitRejectsEmpty) {
  FeatureNormalizer normalizer;
  EXPECT_FALSE(normalizer.Fit(Matrix()).ok());
  EXPECT_FALSE(normalizer.fitted());
}

TEST(FeatureNormalizerTest, TransformBeforeFitFails) {
  FeatureNormalizer normalizer;
  EXPECT_EQ(normalizer.Transform(Matrix(1, 1)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(normalizer.TransformRow({1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FeatureNormalizerTest, WidthMismatchRejected) {
  FeatureNormalizer normalizer;
  ASSERT_TRUE(normalizer.Fit(Matrix(2, 3, 1.0)).ok());
  EXPECT_FALSE(normalizer.Transform(Matrix(2, 2, 1.0)).ok());
  EXPECT_FALSE(normalizer.TransformRow({1.0, 2.0}).ok());
}

TEST(FeatureNormalizerTest, TransformRowClampsOutOfRange) {
  auto raw = *Matrix::FromRows({{0.0}, {10.0}});
  FeatureNormalizer normalizer;
  ASSERT_TRUE(normalizer.Fit(raw).ok());
  auto above = normalizer.TransformRow({20.0});
  ASSERT_TRUE(above.ok());
  EXPECT_DOUBLE_EQ((*above)[0], 1.0);
  auto below = normalizer.TransformRow({-5.0});
  ASSERT_TRUE(below.ok());
  EXPECT_DOUBLE_EQ((*below)[0], 0.0);
  auto mid = normalizer.TransformRow({2.5});
  ASSERT_TRUE(mid.ok());
  EXPECT_DOUBLE_EQ((*mid)[0], 0.25);
}

TEST(FeatureNormalizerTest, MinimaMaximaExposed) {
  auto raw = *Matrix::FromRows({{1.0, -2.0}, {3.0, 4.0}});
  FeatureNormalizer normalizer;
  ASSERT_TRUE(normalizer.Fit(raw).ok());
  EXPECT_EQ(normalizer.minima(), (std::vector<double>{1.0, -2.0}));
  EXPECT_EQ(normalizer.maxima(), (std::vector<double>{3.0, 4.0}));
}

TEST(FeatureNormalizerTest, RefitReplacesParameters) {
  FeatureNormalizer normalizer;
  ASSERT_TRUE(normalizer.Fit(*Matrix::FromRows({{0.0}, {1.0}})).ok());
  ASSERT_TRUE(normalizer.Fit(*Matrix::FromRows({{0.0}, {100.0}})).ok());
  auto row = normalizer.TransformRow({50.0});
  ASSERT_TRUE(row.ok());
  EXPECT_DOUBLE_EQ((*row)[0], 0.5);
}

}  // namespace
}  // namespace hmmm
