#include "server/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/video_database.h"
#include "client/query_client.h"
#include "common/socket.h"
#include "server/wire_protocol.h"
#include "test_util.h"

namespace hmmm {
namespace {

VideoDatabase MakeDatabase(VideoDatabaseOptions options = {}) {
  auto db = VideoDatabase::Create(testing::GeneratedSoccerCatalog(), options);
  HMMM_CHECK(db.ok());
  return std::move(db).value();
}

QueryClientOptions ClientOptions(uint16_t port) {
  QueryClientOptions options;
  options.port = port;
  return options;
}

void ExpectSameRanking(const std::vector<RetrievedPattern>& expected,
                       const std::vector<RetrievedPattern>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].shots, actual[i].shots) << "rank " << i;
    EXPECT_EQ(expected[i].video, actual[i].video) << "rank " << i;
    EXPECT_EQ(expected[i].crosses_videos, actual[i].crosses_videos);
    // Doubles travel as raw IEEE-754 bits: demand bit-exact equality
    // with the in-process ranking, not approximate equality.
    EXPECT_EQ(expected[i].score, actual[i].score) << "rank " << i;
    EXPECT_EQ(expected[i].edge_weights, actual[i].edge_weights);
  }
}

// The acceptance bar for the serving layer: concurrent clients receive
// rankings byte-identical to in-process VideoDatabase::Query, at every
// server worker count.
TEST(QueryServerTest, ConcurrentClientsMatchInProcessRankings) {
  VideoDatabaseOptions db_options;
  // No result cache: every served query must recompute and still match
  // the in-process ranking bit for bit.
  db_options.query_cache_entries = 0;
  VideoDatabase db = MakeDatabase(db_options);
  const std::vector<std::string> queries = {
      "free_kick ; goal", "corner_kick ; goal", "free_kick ; corner_kick",
      "goal ; goal", "foul ; free_kick", "yellow_card ; free_kick",
      "goal_kick ; corner_kick", "free_kick & goal ; corner_kick"};
  std::vector<std::vector<RetrievedPattern>> expected;
  for (const std::string& query : queries) {
    auto result = db.Query(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(std::move(result).value());
  }

  for (int workers : {1, 2, 4}) {
    QueryServerOptions options;
    options.num_workers = workers;
    QueryServer server(&db, options);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    for (size_t c = 0; c < queries.size(); ++c) {
      clients.emplace_back([&, c] {
        QueryClient client(ClientOptions(server.port()));
        TemporalQueryRequest request;
        request.text = queries[c];
        request.want_stats = true;
        const auto response = client.TemporalQuery(request);
        if (!response.ok()) {
          ++failures;
          ADD_FAILURE() << "workers=" << workers << " query \"" << queries[c]
                        << "\": " << response.status().ToString();
          return;
        }
        EXPECT_FALSE(response->degraded);
        EXPECT_TRUE(response->has_stats);
        ExpectSameRanking(expected[c], response->results);
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0) << "workers=" << workers;
    server.Shutdown();
    EXPECT_FALSE(server.running());
  }
}

TEST(QueryServerTest, PipelinedRequestsOnOneConnectionKeepOrder) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  const auto expected = db.Query("free_kick ; goal");
  ASSERT_TRUE(expected.ok());
  for (int i = 0; i < 5; ++i) {
    TemporalQueryRequest request;
    request.text = "free_kick ; goal";
    const auto response = client.TemporalQuery(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectSameRanking(*expected, response->results);
  }
}

TEST(QueryServerTest, ZeroBudgetDegradesInsteadOfFailing) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  request.budget_ms = 0;  // already expired: maximal degradation
  request.want_stats = true;
  const auto response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->degraded);
  ASSERT_TRUE(response->has_stats);
  EXPECT_TRUE(response->stats.degraded);
  EXPECT_GT(response->videos_skipped, 0u);
  // The partial ranking must still be well-formed: scores sorted
  // descending, every pattern internally consistent.
  for (size_t i = 1; i < response->results.size(); ++i) {
    EXPECT_GE(response->results[i - 1].score, response->results[i].score);
  }
  for (const RetrievedPattern& pattern : response->results) {
    EXPECT_FALSE(pattern.shots.empty());
    EXPECT_EQ(pattern.edge_weights.size(), pattern.shots.size() - 1);
  }
}

TEST(QueryServerTest, BudgetedQueryStillWellFormedUnderGenerousBudget) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  const auto expected = db.Query("corner_kick ; goal");
  ASSERT_TRUE(expected.ok());
  TemporalQueryRequest request;
  request.text = "corner_kick ; goal";
  request.budget_ms = 60000;  // generous: must not degrade
  const auto response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ExpectSameRanking(*expected, response->results);
}

TEST(QueryServerTest, WantTraceReturnsServerSideTrace) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  request.want_trace = true;
  const auto response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // One JSONL record per span; the root retrieval span is always there.
  EXPECT_NE(response->trace_jsonl.find("\"name\""), std::string::npos);
  EXPECT_NE(response->trace_jsonl.find("\"elapsed_ms\""), std::string::npos);
  EXPECT_NE(response->trace_jsonl.find('\n'), std::string::npos);
}

TEST(QueryServerTest, SaturatedAdmissionShedsRetriablyAndClientRecovers) {
  VideoDatabaseOptions db_options;
  db_options.admission.max_concurrent = 1;
  db_options.admission.max_queued = 0;
  db_options.query_cache_entries = 0;  // every request does real work
  // Make each query occupy the admission slot for a measurable time
  // (large corpus, wide beam, long patterns below). Parallel traversal
  // matters even more: the executing worker *blocks* on the traversal
  // pool while holding the slot, which yields the CPU and lets a
  // competing worker reach the admission check even on a single core.
  db_options.traversal.beam_width = 64;
  db_options.traversal.max_results = 64;
  db_options.traversal.num_threads = 4;
  auto created = VideoDatabase::Create(testing::GeneratedSoccerCatalog(3, 64),
                                       db_options);
  ASSERT_TRUE(created.ok()) << created.status();
  VideoDatabase db = std::move(created).value();

  QueryServerOptions options;
  options.num_workers = 4;
  QueryServer server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  // Fire barrier-synchronized volleys of 8 queries at the single slot
  // until at least one request is shed (bounded, so a broken shedding
  // path fails the test instead of spinning). Shed requests surface as
  // retriable kResourceExhausted typed errors; every client must still
  // recover within its retry budget.
  constexpr int kClients = 8;
  constexpr int kMaxRounds = 500;
  const std::vector<std::string> queries = {
      "free_kick ; goal ; corner_kick ; foul",
      "corner_kick ; goal ; free_kick ; goal_kick",
      "goal ; goal ; foul ; free_kick",
      "foul ; free_kick ; goal ; corner_kick",
      "free_kick ; corner_kick ; goal_kick ; goal",
      "yellow_card ; goal ; free_kick ; foul",
      "goal_kick ; goal ; corner_kick ; free_kick",
      "red_card ; free_kick ; goal ; goal"};
  std::atomic<uint64_t> total_retries{0};
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  int rounds = 0;
  std::barrier sync(kClients, [&]() noexcept {
    if (total_retries.load() > 0 || ++rounds >= kMaxRounds) done.store(true);
  });
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      QueryClientOptions client_options = ClientOptions(server.port());
      client_options.max_retries = 64;
      client_options.retry_backoff = std::chrono::milliseconds(1);
      client_options.retry_backoff_cap = std::chrono::milliseconds(2);
      QueryClient client(client_options);
      uint64_t reported = 0;
      for (;;) {
        TemporalQueryRequest request;
        request.text = queries[static_cast<size_t>(c)];
        const auto response = client.TemporalQuery(request);
        if (!response.ok()) {
          ++failures;
          ADD_FAILURE() << response.status().ToString();
        }
        const uint64_t retries = client.retries_performed();
        total_retries += retries - reported;
        reported = retries;
        sync.arrive_and_wait();  // completion fn decides whether to stop
        if (done.load()) break;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Load shedding must actually have happened (and been retried through).
  EXPECT_GT(total_retries.load(), 0u);
  const std::string metrics = db.DumpMetricsPrometheus();
  EXPECT_NE(metrics.find("hmmm_admission_rejected_total"), std::string::npos);
}

TEST(QueryServerTest, GracefulShutdownDrainsWithoutTornFrames) {
  VideoDatabase db = MakeDatabase();
  QueryServerOptions options;
  options.num_workers = 4;
  QueryServer server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  // 8 clients keep querying while the server shuts down under them.
  // Every call must end in a complete response or a typed/clean error —
  // never a torn frame (CRC / framing / desync errors).
  std::atomic<bool> start{false};
  std::atomic<int> torn{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 8; ++c) {
    threads.emplace_back([&] {
      QueryClientOptions client_options = ClientOptions(server.port());
      client_options.max_retries = 0;  // observe raw outcomes
      QueryClient client(client_options);
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < 20; ++i) {
        TemporalQueryRequest request;
        request.text = "free_kick ; goal";
        const auto response = client.TemporalQuery(request);
        if (response.ok()) {
          ++completed;
          continue;
        }
        const Status& status = response.status();
        // Acceptable terminal outcomes while draining: the typed
        // kShuttingDown refusal, a connect refusal after the listener
        // closed, or a clean close. A torn frame would surface as
        // InvalidArgument ("rejected by server"), DataLoss or Internal.
        if (status.code() == StatusCode::kInvalidArgument ||
            status.code() == StatusCode::kDataLoss ||
            status.code() == StatusCode::kInternal) {
          ++torn;
          ADD_FAILURE() << "torn frame: " << status.ToString();
        }
      }
    });
  }
  start.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Shutdown();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(completed.load(), 0);
  EXPECT_FALSE(server.running());
}

TEST(QueryServerTest, HealthReportsDatabaseShape) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  const auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  const VideoDatabase::HealthSnapshot snapshot = db.Health();
  EXPECT_EQ(health->videos, snapshot.videos);
  EXPECT_EQ(health->shots, snapshot.shots);
  EXPECT_EQ(health->annotated_shots, snapshot.annotated_shots);
  EXPECT_EQ(health->model_version, snapshot.model_version);
  EXPECT_FALSE(health->draining);
}

TEST(QueryServerTest, MetricsExposesServerFamilies) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  ASSERT_TRUE(client.TemporalQuery(request).ok());
  const auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->prometheus_text.find("hmmm_server_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics->prometheus_text.find("type=\"temporal_query\""),
            std::string::npos);
  EXPECT_NE(metrics->prometheus_text.find("hmmm_server_connections_open"),
            std::string::npos);
}

TEST(QueryServerTest, FeedbackRoundTripTrainsTheModel) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  const auto response = client.TemporalQuery(request);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response->results.empty());

  MarkPositiveRequest mark;
  mark.pattern = response->results[0];
  const auto marked = client.MarkPositive(mark);
  ASSERT_TRUE(marked.ok()) << marked.status().ToString();

  const auto trained = client.Train();
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_TRUE(trained->trained);
  EXPECT_EQ(trained->training_rounds, db.training_rounds());
  EXPECT_GT(trained->training_rounds, 0u);
}

TEST(QueryServerTest, QueryByExampleMatchesInProcess) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<double> features = db.catalog().raw_features_of(0);
  const auto expected = db.QueryByExample(features);
  ASSERT_TRUE(expected.ok());

  QueryClient client(ClientOptions(server.port()));
  QbeRequest request;
  request.features = features;
  const auto response = client.QueryByExample(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->results.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(response->results[i].shot, (*expected)[i].shot);
    EXPECT_EQ(response->results[i].similarity, (*expected)[i].similarity);
  }
}

TEST(QueryServerTest, InvalidQueryTextSurfacesTypedNonRetriableError) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client(ClientOptions(server.port()));
  TemporalQueryRequest request;
  request.text = "not_a_soccer_event ;;; nonsense";
  const auto response = client.TemporalQuery(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(client.retries_performed(), 0u);
  // The connection survives a typed error: the next request works.
  request.text = "free_kick ; goal";
  EXPECT_TRUE(client.TemporalQuery(request).ok());
}

// -- Raw-socket tests: pipelining, supersession and the corrupt-frame
// corpus against a live server. ------------------------------------------

StatusOr<std::string> ReadFrame(int fd, FrameHeader* header) {
  const auto deadline = DeadlineAfter(std::chrono::milliseconds(5000));
  char header_bytes[kFrameHeaderBytes];
  HMMM_RETURN_IF_ERROR(
      ReadExact(fd, header_bytes, kFrameHeaderBytes, deadline));
  const WireError framing =
      DecodeFrameHeader(std::string_view(header_bytes, kFrameHeaderBytes),
                        kDefaultMaxFrameBytes, header);
  if (framing != WireError::kNone) {
    return Status::DataLoss("torn response frame");
  }
  std::string payload(header->payload_bytes, '\0');
  if (!payload.empty()) {
    HMMM_RETURN_IF_ERROR(
        ReadExact(fd, payload.data(), payload.size(), deadline));
  }
  if (VerifyFramePayload(*header, payload) != WireError::kNone) {
    return Status::DataLoss("torn response payload");
  }
  return payload;
}

TEST(QueryServerRawTest, PipelinedSupersededGenerationIsNotExecuted) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  auto socket = TcpConnect("127.0.0.1", server.port(),
                           std::chrono::milliseconds(2000));
  ASSERT_TRUE(socket.ok());

  TemporalQueryRequest stale;
  stale.text = "free_kick ; goal";
  stale.cancel_generation = 1;
  TemporalQueryRequest fresh;
  fresh.text = "corner_kick ; goal";
  fresh.cancel_generation = 2;
  // Both frames land in one batch: the superseded one must be answered
  // with kSuperseded (in order) without executing.
  const std::string burst =
      EncodeFrame(MessageType::kTemporalQueryRequest,
                  EncodeTemporalQueryRequest(stale)) +
      EncodeFrame(MessageType::kTemporalQueryRequest,
                  EncodeTemporalQueryRequest(fresh));
  ASSERT_TRUE(WriteAll(socket->fd(), burst,
                       DeadlineAfter(std::chrono::milliseconds(2000)))
                  .ok());

  FrameHeader header;
  auto first = ReadFrame(socket->fd(), &header);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(header.type, MessageType::kErrorResponse);
  const auto error = DecodeErrorResponse(*first);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kSuperseded);
  EXPECT_FALSE(error->retriable);

  auto second = ReadFrame(socket->fd(), &header);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(header.type, MessageType::kTemporalQueryResponse);
  const auto decoded = DecodeTemporalQueryResponse(*second);
  ASSERT_TRUE(decoded.ok());
  const auto expected = db.Query("corner_kick ; goal");
  ASSERT_TRUE(expected.ok());
  ExpectSameRanking(*expected, decoded->results);
}

TEST(QueryServerRawTest, UnknownRequestTagAnsweredAndConnectionSurvives) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  auto socket = TcpConnect("127.0.0.1", server.port(),
                           std::chrono::milliseconds(2000));
  ASSERT_TRUE(socket.ok());
  const auto deadline = DeadlineAfter(std::chrono::milliseconds(2000));
  ASSERT_TRUE(
      WriteAll(socket->fd(), EncodeFrame(static_cast<MessageType>(77), ""),
               deadline)
          .ok());
  FrameHeader header;
  auto payload = ReadFrame(socket->fd(), &header);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  ASSERT_EQ(header.type, MessageType::kErrorResponse);
  const auto error = DecodeErrorResponse(*payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kUnknownMessageType);

  // The stream is still framed: a Health request on the same connection
  // must succeed.
  ASSERT_TRUE(
      WriteAll(socket->fd(), EncodeFrame(MessageType::kHealthRequest, ""),
               deadline)
          .ok());
  payload = ReadFrame(socket->fd(), &header);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(header.type, MessageType::kHealthResponse);
}

TEST(QueryServerRawTest, CorruptFramesGetTypedErrorThenClose) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  struct Case {
    const char* name;
    std::string bytes;
    WireError expected;
  };
  std::string bad_magic = EncodeFrame(MessageType::kHealthRequest, "");
  bad_magic[0] = 'X';
  std::string oversized = EncodeFrame(MessageType::kHealthRequest, "");
  oversized[11] = static_cast<char>(0x80);  // 2 GiB payload announced
  std::string bad_crc = EncodeFrame(MessageType::kQbeRequest, "pppp");
  bad_crc[kFrameHeaderBytes] ^= 0x40;
  std::string bad_version = EncodeFrame(MessageType::kHealthRequest, "");
  bad_version[4] = 9;
  const Case cases[] = {
      {"bad magic", bad_magic, WireError::kBadMagic},
      {"oversized length", oversized, WireError::kFrameTooLarge},
      {"bad crc", bad_crc, WireError::kBadCrc},
      {"unsupported version", bad_version, WireError::kUnsupportedVersion},
  };
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    auto socket = TcpConnect("127.0.0.1", server.port(),
                             std::chrono::milliseconds(2000));
    ASSERT_TRUE(socket.ok());
    const auto deadline = DeadlineAfter(std::chrono::milliseconds(2000));
    ASSERT_TRUE(WriteAll(socket->fd(), test_case.bytes, deadline).ok());
    FrameHeader header;
    const auto payload = ReadFrame(socket->fd(), &header);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    ASSERT_EQ(header.type, MessageType::kErrorResponse);
    const auto error = DecodeErrorResponse(*payload);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, test_case.expected);
    // The server closes the connection after a corrupt frame: the next
    // read must see a clean EOF, not a hang or more data.
    char byte;
    const Status eof = ReadExact(socket->fd(), &byte, 1, deadline);
    EXPECT_EQ(eof.code(), StatusCode::kNotFound) << eof.ToString();
  }
  // The server is still healthy for new connections.
  QueryClient client(ClientOptions(server.port()));
  EXPECT_TRUE(client.Health().ok());
}

TEST(QueryServerRawTest, TruncatedFrameThenCloseIsHandledQuietly) {
  VideoDatabase db = MakeDatabase();
  QueryServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  // Send half a header, then disconnect. The server must just drop the
  // connection; it must stay healthy.
  {
    auto socket = TcpConnect("127.0.0.1", server.port(),
                             std::chrono::milliseconds(2000));
    ASSERT_TRUE(socket.ok());
    const std::string frame = EncodeFrame(MessageType::kHealthRequest, "");
    ASSERT_TRUE(WriteAll(socket->fd(), frame.substr(0, 7),
                         DeadlineAfter(std::chrono::milliseconds(2000)))
                    .ok());
  }
  // Same with a complete header but truncated payload.
  {
    auto socket = TcpConnect("127.0.0.1", server.port(),
                             std::chrono::milliseconds(2000));
    ASSERT_TRUE(socket.ok());
    const std::string frame =
        EncodeFrame(MessageType::kQbeRequest, "some payload bytes");
    ASSERT_TRUE(WriteAll(socket->fd(), frame.substr(0, frame.size() - 5),
                         DeadlineAfter(std::chrono::milliseconds(2000)))
                    .ok());
  }
  QueryClient client(ClientOptions(server.port()));
  EXPECT_TRUE(client.Health().ok());
}

}  // namespace
}  // namespace hmmm
