#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "retrieval/baseline_exhaustive.h"
#include "retrieval/baseline_index.h"
#include "retrieval/metrics.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
    index_ = EventIndex(catalog_);
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
  EventIndex index_;
};

TEST_F(BaselinesTest, ExhaustiveEnumeratesAllTuples) {
  ExhaustiveMatcher matcher(model_, catalog_);
  RetrievalStats stats;
  // One-step pattern: every annotated shot is a candidate (6 states).
  auto results =
      matcher.Retrieve(TemporalPattern::FromEvents({0}), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(stats.candidates_scored, 6u);
  EXPECT_FALSE(stats.truncated);
}

TEST_F(BaselinesTest, ExhaustiveRejectsEmptyPattern) {
  ExhaustiveMatcher matcher(model_, catalog_);
  EXPECT_FALSE(matcher.Retrieve(TemporalPattern{}).ok());
}

TEST_F(BaselinesTest, ExhaustiveTopScoreDominatesTraversal) {
  // The exhaustive matcher cannot return a worse best score than any
  // traversal (it scores every tuple with the same weights).
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  ExhaustiveMatcher exhaustive(model_, catalog_);
  auto gold = exhaustive.Retrieve(pattern);
  ASSERT_TRUE(gold.ok());
  ASSERT_FALSE(gold->empty());

  for (int beam : {1, 2, 8}) {
    TraversalOptions options;
    options.beam_width = beam;
    HmmmTraversal traversal(model_, catalog_, options);
    auto results = traversal.Retrieve(pattern);
    ASSERT_TRUE(results.ok());
    ASSERT_FALSE(results->empty());
    EXPECT_GE(gold->front().score + 1e-12, results->front().score)
        << "beam " << beam;
  }
}

TEST_F(BaselinesTest, ExhaustiveScoresMatchTraversalOnSamePath) {
  // When traversal and exhaustive agree on the shot tuple, their SS must
  // be identical (same Eqs. 12-15 arithmetic).
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  ExhaustiveMatcher exhaustive(model_, catalog_);
  HmmmTraversal traversal(model_, catalog_);
  auto gold = exhaustive.Retrieve(pattern);
  auto fast = traversal.Retrieve(pattern);
  ASSERT_TRUE(gold.ok());
  ASSERT_TRUE(fast.ok());
  for (const auto& g : *gold) {
    for (const auto& f : *fast) {
      if (g.shots == f.shots) {
        EXPECT_NEAR(g.score, f.score, 1e-12);
      }
    }
  }
}

TEST_F(BaselinesTest, ExhaustiveBudgetTruncates) {
  ExhaustiveOptions options;
  options.max_tuples = 3;
  ExhaustiveMatcher matcher(model_, catalog_, options);
  RetrievalStats stats;
  auto results = matcher.Retrieve(TemporalPattern::FromEvents({0}), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(stats.states_visited, 3u);
}

TEST_F(BaselinesTest, IndexJoinOnlyReturnsExactAnnotations) {
  IndexJoinMatcher matcher(model_, catalog_, index_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto results = matcher.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  for (const auto& result : *results) {
    EXPECT_TRUE(PatternMatchesAnnotations(catalog_, result.shots, pattern));
  }
}

TEST_F(BaselinesTest, IndexJoinFindsAllTrueOccurrences) {
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  IndexJoinOptions options;
  options.max_results = 100;
  IndexJoinMatcher matcher(model_, catalog_, index_, options);
  auto results = matcher.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  const auto truth = EnumerateTrueOccurrences(catalog_, pattern);
  EXPECT_EQ(results->size(), truth.size());
}

TEST_F(BaselinesTest, IndexJoinMissesUnannotatedVideos) {
  // corner_kick exists only in video 0; index join never visits video 1.
  IndexJoinMatcher matcher(model_, catalog_, index_);
  RetrievalStats stats;
  auto results =
      matcher.Retrieve(TemporalPattern::FromEvents({1}), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(stats.videos_considered, 1u);
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(results->front().shots, (std::vector<ShotId>{3}));
}

TEST_F(BaselinesTest, IndexJoinHandlesConjunctiveSteps) {
  PatternStep step;
  step.alternatives = {{2, 0}};  // free_kick & goal on one shot
  TemporalPattern pattern;
  pattern.steps.push_back(step);
  IndexJoinMatcher matcher(model_, catalog_, index_);
  auto results = matcher.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(results->front().shots, (std::vector<ShotId>{2}));
}

TEST_F(BaselinesTest, IndexJoinEmptyWhenEventAbsent) {
  IndexJoinMatcher matcher(model_, catalog_, index_);
  auto results = matcher.Retrieve(TemporalPattern::FromEvents({6}));
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_F(BaselinesTest, MatchersAgreeOnGeneratedCorpus) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(55, 8);
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  const EventIndex index(catalog);
  const auto pattern = TemporalPattern::FromEvents({2, 0});

  ExhaustiveOptions gold_options;
  gold_options.max_results = 100000;  // keep every tuple: no truncation
  ExhaustiveMatcher exhaustive(*model, catalog, gold_options);
  auto gold = exhaustive.Retrieve(pattern);
  ASSERT_TRUE(gold.ok());

  IndexJoinOptions join_options;
  join_options.max_results = 200;
  IndexJoinMatcher join(*model, catalog, index, join_options);
  auto joined = join.Retrieve(pattern);
  ASSERT_TRUE(joined.ok());

  // Every index-join result appears among exhaustive results with the
  // same score (index join is a filtered subset of exhaustive).
  for (const auto& j : *joined) {
    bool found = false;
    for (const auto& g : *gold) {
      if (g.shots == j.shots) {
        EXPECT_NEAR(g.score, j.score, 1e-12);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "index-join result missing from exhaustive set";
  }
}

}  // namespace
}  // namespace hmmm
