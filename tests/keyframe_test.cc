#include "shots/keyframe.h"

#include <gtest/gtest.h>

#include "media/soccer_generator.h"

namespace hmmm {
namespace {

TEST(KeyFrameTest, RejectsBadSpans) {
  std::vector<Frame> frames(4, Frame(8, 8, Rgb{40, 160, 40}));
  EXPECT_FALSE(SelectKeyFrame(frames, 0, 0).ok());
  EXPECT_FALSE(SelectKeyFrame(frames, -1, 2).ok());
  EXPECT_FALSE(SelectKeyFrame(frames, 2, 5).ok());
}

TEST(KeyFrameTest, StaticShotPicksFirstFrame) {
  std::vector<Frame> frames(6, Frame(8, 8, Rgb{40, 160, 40}));
  auto key = SelectKeyFrame(frames, 0, 6);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, 0);  // all frames equidistant; first wins
}

TEST(KeyFrameTest, SingleFrameShot) {
  std::vector<Frame> frames(3, Frame(8, 8, Rgb{40, 160, 40}));
  auto key = SelectKeyFrame(frames, 1, 2);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, 1);
}

TEST(KeyFrameTest, OutlierFrameNotChosen) {
  // Mostly green shot with one red outlier: the key frame must be one of
  // the representative green frames, never the outlier.
  std::vector<Frame> frames(7, Frame(8, 8, Rgb{40, 160, 40}));
  frames[3] = Frame(8, 8, Rgb{200, 30, 30});
  auto key = SelectKeyFrame(frames, 0, 7);
  ASSERT_TRUE(key.ok());
  EXPECT_NE(*key, 3);
}

TEST(KeyFrameTest, RespectsSpanBounds) {
  std::vector<Frame> frames;
  for (int i = 0; i < 10; ++i) {
    frames.emplace_back(8, 8, i < 5 ? Rgb{40, 160, 40} : Rgb{200, 30, 30});
  }
  auto key = SelectKeyFrame(frames, 5, 10);
  ASSERT_TRUE(key.ok());
  EXPECT_GE(*key, 5);
  EXPECT_LT(*key, 10);
}

TEST(KeyFrameTest, PerShotKeyFramesForGeneratedVideo) {
  SoccerGeneratorConfig config;
  config.seed = 5;
  config.min_shots_per_video = 6;
  config.max_shots_per_video = 8;
  SoccerVideoGenerator generator(config);
  const SyntheticVideo video = generator.Generate(0);
  auto keys = SelectKeyFrames(video);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), video.shots.size());
  for (size_t s = 0; s < video.shots.size(); ++s) {
    EXPECT_GE((*keys)[s], video.shots[s].begin_frame);
    EXPECT_LT((*keys)[s], video.shots[s].end_frame);
  }
}

}  // namespace
}  // namespace hmmm
