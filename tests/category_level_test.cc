#include "core/category_level.h"

#include <gtest/gtest.h>

#include <set>

#include "core/model_builder.h"
#include "media/news_generator.h"
#include "test_util.h"

namespace hmmm {
namespace {

/// Builds a mixed soccer+news archive whose domains should separate into
/// distinct clusters by their B2 event signatures.
VideoCatalog MixedArchive(int per_domain) {
  EventVocabulary combined = SoccerEvents();
  const EventVocabulary news_vocab = NewsEvents();
  std::vector<EventId> news_ids;
  for (const std::string& name : news_vocab.names()) {
    news_ids.push_back(combined.Register(name));
  }

  FeatureLevelConfig soccer_config = SoccerFeatureLevelDefaults(31);
  soccer_config.num_videos = per_domain;
  soccer_config.min_shots_per_video = 30;
  soccer_config.max_shots_per_video = 50;
  soccer_config.event_shot_fraction = 0.3;
  FeatureLevelGenerator soccer(soccer_config);

  FeatureLevelConfig news_config = NewsFeatureLevelDefaults(32);
  news_config.num_videos = per_domain;
  news_config.min_shots_per_video = 30;
  news_config.max_shots_per_video = 50;
  FeatureLevelGenerator news(news_config);

  VideoCatalog catalog(combined, 20);
  for (const GeneratedVideo& video : soccer.Generate().videos) {
    const VideoId vid = catalog.AddVideo("soccer_" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      HMMM_CHECK(catalog.AddShot(vid, shot.begin_time, shot.end_time,
                                 shot.events, shot.features).ok());
    }
  }
  for (const GeneratedVideo& video : news.Generate().videos) {
    const VideoId vid = catalog.AddVideo("news_" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      std::vector<EventId> remapped;
      for (EventId e : shot.events) {
        remapped.push_back(news_ids[static_cast<size_t>(e)]);
      }
      HMMM_CHECK(catalog.AddShot(vid, shot.begin_time, shot.end_time,
                                 remapped, shot.features).ok());
    }
  }
  return catalog;
}

HierarchicalModel BuildModel(const VideoCatalog& catalog) {
  auto model = ModelBuilder(catalog).Build();
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(CategoryLevelTest, SeparatesDomainsAtKTwo) {
  const VideoCatalog catalog = MixedArchive(6);
  const HierarchicalModel model = BuildModel(catalog);
  CategoryLevelOptions options;
  options.num_clusters = 2;
  auto level = BuildCategoryLevel(model, options);
  ASSERT_TRUE(level.ok()) << level.status();
  ASSERT_EQ(level->num_clusters(), 2u);
  EXPECT_TRUE(level->Validate().ok());

  // All soccer videos (ids 0..5) share one cluster; all news videos
  // (6..11) the other.
  const int soccer_cluster = level->ClusterOf(0);
  const int news_cluster = level->ClusterOf(6);
  EXPECT_NE(soccer_cluster, news_cluster);
  for (VideoId v = 0; v < 6; ++v) {
    EXPECT_EQ(level->ClusterOf(v), soccer_cluster) << "video " << v;
  }
  for (VideoId v = 6; v < 12; ++v) {
    EXPECT_EQ(level->ClusterOf(v), news_cluster) << "video " << v;
  }
}

TEST(CategoryLevelTest, B3AggregatesMemberCounts) {
  const VideoCatalog catalog = MixedArchive(4);
  const HierarchicalModel model = BuildModel(catalog);
  CategoryLevelOptions options;
  options.num_clusters = 2;
  auto level = BuildCategoryLevel(model, options);
  ASSERT_TRUE(level.ok());

  // Sum of B3 equals sum of B2.
  double b3_total = 0.0, b2_total = 0.0;
  for (size_t c = 0; c < level->b3().rows(); ++c) {
    b3_total += level->b3().RowSum(c);
  }
  for (size_t v = 0; v < model.b2().rows(); ++v) {
    b2_total += model.b2().RowSum(v);
  }
  EXPECT_DOUBLE_EQ(b3_total, b2_total);

  // The soccer cluster contains goal (0); the news cluster does not.
  const int soccer_cluster = level->ClusterOf(0);
  const int news_cluster = level->ClusterOf(4);
  EXPECT_TRUE(level->ClusterContainsEvent(soccer_cluster, 0));
  EXPECT_FALSE(level->ClusterContainsEvent(news_cluster, 0));
  EXPECT_FALSE(level->ClusterContainsEvent(-1, 0));
  EXPECT_FALSE(level->ClusterContainsEvent(0, 99));
}

TEST(CategoryLevelTest, Pi3ProportionalToClusterSize) {
  const VideoCatalog catalog = MixedArchive(4);  // 4 + 4 videos
  const HierarchicalModel model = BuildModel(catalog);
  CategoryLevelOptions options;
  options.num_clusters = 2;
  auto level = BuildCategoryLevel(model, options);
  ASSERT_TRUE(level.ok());
  EXPECT_DOUBLE_EQ(level->pi3()[0] + level->pi3()[1], 1.0);
  EXPECT_DOUBLE_EQ(level->pi3()[0], 0.5);
}

TEST(CategoryLevelTest, VideosByClusterPartitions) {
  const VideoCatalog catalog = MixedArchive(5);
  const HierarchicalModel model = BuildModel(catalog);
  auto level = BuildCategoryLevel(model);
  ASSERT_TRUE(level.ok());
  const auto members = level->VideosByCluster();
  std::set<VideoId> seen;
  for (const auto& cluster : members) {
    for (VideoId v : cluster) {
      EXPECT_TRUE(seen.insert(v).second) << "video in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), catalog.num_videos());
}

TEST(CategoryLevelTest, DeterministicForSeed) {
  const VideoCatalog catalog = MixedArchive(4);
  const HierarchicalModel model = BuildModel(catalog);
  CategoryLevelOptions options;
  options.seed = 5;
  auto a = BuildCategoryLevel(model, options);
  auto b = BuildCategoryLevel(model, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cluster_of_video(), b->cluster_of_video());
}

TEST(CategoryLevelTest, AutoClusterCountHeuristic) {
  const VideoCatalog catalog = MixedArchive(6);  // 12 videos
  const HierarchicalModel model = BuildModel(catalog);
  auto level = BuildCategoryLevel(model);
  ASSERT_TRUE(level.ok());
  EXPECT_GE(level->num_clusters(), 2u);
  EXPECT_LE(level->num_clusters(), catalog.num_videos());
}

TEST(CategoryLevelTest, SingleVideoArchive) {
  VideoCatalog catalog(SoccerEvents(), 2);
  const VideoId v = catalog.AddVideo("only");
  ASSERT_TRUE(catalog.AddShot(v, 0, 1, {0}, {0.9, 0.1}).ok());
  const HierarchicalModel model = BuildModel(catalog);
  auto level = BuildCategoryLevel(model);
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(level->num_clusters(), 1u);
  EXPECT_EQ(level->ClusterOf(0), 0);
}

TEST(CategoryLevelTest, EmptyModelRejected) {
  HierarchicalModel model;
  EXPECT_FALSE(BuildCategoryLevel(model).ok());
}

TEST(CategoryLevelTest, KLargerThanVideosClamped) {
  const VideoCatalog catalog = MixedArchive(2);  // 4 videos
  const HierarchicalModel model = BuildModel(catalog);
  CategoryLevelOptions options;
  options.num_clusters = 10;
  auto level = BuildCategoryLevel(model, options);
  ASSERT_TRUE(level.ok());
  EXPECT_LE(level->num_clusters(), 4u);
}

TEST(CategoryLevelTest, ToStringMentionsTopEvents) {
  const VideoCatalog catalog = MixedArchive(4);
  const HierarchicalModel model = BuildModel(catalog);
  CategoryLevelOptions options;
  options.num_clusters = 2;
  auto level = BuildCategoryLevel(model, options);
  ASSERT_TRUE(level.ok());
  const std::string text = level->ToString(catalog.vocabulary());
  EXPECT_NE(text.find("cluster 0"), std::string::npos);
  EXPECT_NE(text.find("anchor"), std::string::npos);  // news top event
}

}  // namespace
}  // namespace hmmm
