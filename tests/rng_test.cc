#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace hmmm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedUniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMeanAndStdDev) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, WeightedSamplingRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) {
    const int pick = rng.NextWeighted(weights);
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 3);
    ++counts[static_cast<size_t>(pick)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, WeightedSamplingAllZeroReturnsMinusOne) {
  Rng rng(21);
  EXPECT_EQ(rng.NextWeighted({0.0, 0.0}), -1);
  EXPECT_EQ(rng.NextWeighted({}), -1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The fork and parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace hmmm
