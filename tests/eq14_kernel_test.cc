#include "retrieval/eq14_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/aligned.h"

namespace hmmm {
namespace {

constexpr double kEps = 1e-6;

// Deterministic value streams with plenty of sign changes, exact ties
// (x == r) and sub-eps centroids, so both the |x - r| and max(r, eps)
// branches get exercised.
double XVal(size_t k) { return 0.05 * static_cast<double>((k * 7) % 23) - 0.4; }
double RVal(size_t k) {
  if (k % 11 == 0) return 0.0;           // centroid below eps
  if (k % 5 == 0) return XVal(k);        // exact tie: |x - r| == 0
  return 0.04 * static_cast<double>((k * 13) % 19) + 0.01;
}
double WVal(size_t k) { return 0.03 * static_cast<double>((k * 5) % 17) + 0.002; }

std::vector<double> Fill(size_t n, double (*gen)(size_t)) {
  std::vector<double> out(n);
  for (size_t k = 0; k < n; ++k) out[k] = gen(k);
  return out;
}

// The reference the whole family must reproduce bit-for-bit: four lane
// partials by position, fma per term, (s0 + s2) + (s1 + s3), sequential
// fma tail. Written independently of the production code.
double CanonicalRow(const double* x, const double* r, const double* w,
                    size_t n) {
  const size_t main = n & ~size_t{3};
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t k = 0; k < main; ++k) {
    const double c = r[k] > kEps ? r[k] : kEps;
    s[k % 4] = std::fma(w[k], (1.0 - std::abs(x[k] - r[k])) / c, s[k % 4]);
  }
  double sim = (s[0] + s[2]) + (s[1] + s[3]);
  for (size_t k = main; k < n; ++k) {
    const double c = r[k] > kEps ? r[k] : kEps;
    sim = std::fma(w[k], (1.0 - std::abs(x[k] - r[k])) / c, sim);
  }
  return sim;
}

// Widths crossing every alignment case: sub-lane, exact multiples of
// four, and every tail length, plus the paper's 20-dim Table-1 vector.
const size_t kWidths[] = {0, 1, 2, 3, 4, 5, 7, 8, 11, 16, 19, 20, 33};

TEST(Eq14KernelTest, ScalarRowMatchesCanonicalOrderBitForBit) {
  for (size_t n : kWidths) {
    const auto x = Fill(n, XVal);
    const auto r = Fill(n, RVal);
    const auto w = Fill(n, WVal);
    const double got =
        Eq14Row(Eq14Kernel::kScalar, x.data(), r.data(), w.data(), n, kEps);
    EXPECT_EQ(got, CanonicalRow(x.data(), r.data(), w.data(), n)) << "n=" << n;
  }
}

TEST(Eq14KernelTest, Avx2RowIsBitIdenticalToScalar) {
  if (!Avx2KernelAvailable()) {
    GTEST_SKIP() << "no AVX2+FMA on this CPU/build";
  }
  for (size_t n : kWidths) {
    const auto x = Fill(n, XVal);
    const auto r = Fill(n, RVal);
    const auto w = Fill(n, WVal);
    const double scalar =
        Eq14Row(Eq14Kernel::kScalar, x.data(), r.data(), w.data(), n, kEps);
    const double avx2 =
        Eq14Row(Eq14Kernel::kAvx2, x.data(), r.data(), w.data(), n, kEps);
    EXPECT_EQ(scalar, avx2) << "n=" << n;
  }
}

TEST(Eq14KernelTest, IndexedRowMatchesDenseOnIdentitySubset) {
  for (size_t n : kWidths) {
    const auto x = Fill(n, XVal);
    const auto r = Fill(n, RVal);
    const auto w = Fill(n, WVal);
    std::vector<int> idx(n);
    for (size_t k = 0; k < n; ++k) idx[k] = static_cast<int>(k);
    const double dense =
        Eq14Row(Eq14Kernel::kScalar, x.data(), r.data(), w.data(), n, kEps);
    const double indexed =
        Eq14RowIndexed(x.data(), r.data(), w.data(), idx.data(), n, kEps);
    EXPECT_EQ(dense, indexed) << "n=" << n;
  }
}

// A permuted subset must round exactly like a dense row holding the
// gathered values in subset position order.
TEST(Eq14KernelTest, IndexedSubsetRoundsLikeGatheredDenseRow) {
  constexpr size_t kFull = 20;
  const auto x = Fill(kFull, XVal);
  const auto r = Fill(kFull, RVal);
  const auto w = Fill(kFull, WVal);
  const std::vector<int> idx = {17, 3, 0, 12, 9, 5, 19};
  std::vector<double> gx, gr, gw;
  for (int f : idx) {
    gx.push_back(x[static_cast<size_t>(f)]);
    gr.push_back(r[static_cast<size_t>(f)]);
    gw.push_back(w[static_cast<size_t>(f)]);
  }
  const double indexed = Eq14RowIndexed(x.data(), r.data(), w.data(),
                                        idx.data(), idx.size(), kEps);
  const double dense = Eq14Row(Eq14Kernel::kScalar, gx.data(), gr.data(),
                               gw.data(), idx.size(), kEps);
  EXPECT_EQ(indexed, dense);
}

TEST(Eq14KernelTest, SoaStrideRoundsUpToFourDoubles) {
  EXPECT_EQ(Eq14SoaStride(0), 0u);
  EXPECT_EQ(Eq14SoaStride(1), 4u);
  EXPECT_EQ(Eq14SoaStride(4), 4u);
  EXPECT_EQ(Eq14SoaStride(5), 8u);
  EXPECT_EQ(Eq14SoaStride(7), 8u);
  EXPECT_EQ(Eq14SoaStride(8), 8u);
}

// Batch over an SoA block must equal a per-candidate Eq14Row over the
// same values — for every kernel, every candidate count (vector main
// lanes + scalar remainder), and every feature width.
TEST(Eq14KernelTest, BatchMatchesRowPerCandidateForAllKernels) {
  std::vector<Eq14Kernel> kernels = {Eq14Kernel::kScalar};
  if (Avx2KernelAvailable()) kernels.push_back(Eq14Kernel::kAvx2);
  const size_t counts[] = {1, 2, 3, 4, 5, 7, 8, 9, 13};
  for (size_t n : {size_t{3}, size_t{8}, size_t{20}}) {
    const auto r = Fill(n, RVal);
    const auto w = Fill(n, WVal);
    for (size_t count : counts) {
      const size_t stride = Eq14SoaStride(count);
      // Candidate c's feature k: reuse the row stream shifted by c so
      // every candidate sees distinct values.
      AlignedVector<double> soa(n * stride, 0.0);
      std::vector<std::vector<double>> rows(count);
      for (size_t c = 0; c < count; ++c) {
        rows[c].resize(n);
        for (size_t k = 0; k < n; ++k) {
          rows[c][k] = XVal(k + 3 * c);
          soa[k * stride + c] = rows[c][k];
        }
      }
      for (Eq14Kernel kernel : kernels) {
        std::vector<double> out(count, -1.0);
        Eq14Batch(kernel, soa.data(), stride, count, r.data(), w.data(), n,
                  kEps, out.data());
        for (size_t c = 0; c < count; ++c) {
          const double row = Eq14Row(Eq14Kernel::kScalar, rows[c].data(),
                                     r.data(), w.data(), n, kEps);
          EXPECT_EQ(out[c], row)
              << Eq14KernelName(kernel) << " n=" << n << " count=" << count
              << " c=" << c;
        }
      }
    }
  }
}

TEST(Eq14KernelTest, DefaultKernelIsNamedAndStable) {
  const Eq14Kernel first = DefaultEq14Kernel();
  EXPECT_EQ(first, DefaultEq14Kernel());
  const char* name = Eq14KernelName(first);
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2");
  if (!Avx2KernelAvailable()) {
    EXPECT_EQ(first, Eq14Kernel::kScalar);
  }
}

}  // namespace
}  // namespace hmmm
