#include "observability/metrics_registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hmmm {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("events_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, IncrementByDelta) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("batch_total");
  counter->Increment(5);
  counter->Increment();
  EXPECT_EQ(counter->value(), 6u);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("depth");
  gauge->Set(4.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 4.0);
  gauge->Add(-1.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);
  gauge->Set(0.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("lat", {1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 7.0}) histogram->Observe(v);
  EXPECT_EQ(histogram->count(), 6u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 15.0);
  // Values equal to a bound land in that bound's bucket ("le" semantics):
  // <=1: {0.5, 1}, <=2: +{1.5, 2}, <=5: +{3}, +Inf: +{7}.
  const std::vector<uint64_t> cumulative = histogram->CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_EQ(cumulative[0], 2u);
  EXPECT_EQ(cumulative[1], 4u);
  EXPECT_EQ(cumulative[2], 5u);
  EXPECT_EQ(cumulative[3], 6u);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("par", {10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      // Half the observations land below the bound, half above.
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Observe(t % 2 == 0 ? 1.0 : 100.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(histogram->count(), total);
  const std::vector<uint64_t> cumulative = histogram->CumulativeCounts();
  EXPECT_EQ(cumulative[0], total / 2);
  EXPECT_EQ(cumulative[1], total);
}

TEST(MetricsRegistryTest, ReturnsTheSameMetricForTheSameName) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("x_total", "help text");
  Counter* second = registry.GetCounter("x_total");
  EXPECT_EQ(first, second);
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry.GetGauge("depth", "queue depth")->Set(2.5);
  Histogram* lat = registry.GetHistogram("lat", {1.0, 10.0}, "latency");
  lat->Observe(0.5);
  lat->Observe(5.0);
  registry.GetCounter("requests_total", "requests")->Increment(3);

  // Metrics render sorted by name; histograms expand into cumulative
  // le-buckets plus _sum and _count.
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP depth queue depth\n"
            "# TYPE depth gauge\n"
            "depth 2.5\n"
            "# HELP lat latency\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"1\"} 1\n"
            "lat_bucket{le=\"10\"} 2\n"
            "lat_bucket{le=\"+Inf\"} 2\n"
            "lat_sum 5.5\n"
            "lat_count 2\n"
            "# HELP requests_total requests\n"
            "# TYPE requests_total counter\n"
            "requests_total 3\n");
}

TEST(MetricsRegistryTest, JsonSnapshotGolden) {
  MetricsRegistry registry;
  registry.GetGauge("depth")->Set(2.5);
  Histogram* lat = registry.GetHistogram("lat", {1.0, 10.0});
  lat->Observe(0.5);
  lat->Observe(5.0);
  registry.GetCounter("requests_total")->Increment(3);

  EXPECT_EQ(registry.RenderJson(),
            "{\"counters\":{\"requests_total\":3},"
            "\"gauges\":{\"depth\":2.5},"
            "\"histograms\":{\"lat\":{\"count\":2,\"sum\":5.5,"
            "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":10,\"count\":2},"
            "{\"le\":\"+Inf\",\"count\":2}]}}}");
}

TEST(MetricsRegistryTest, EmptyRegistryRendersEmptyContainers) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.RenderPrometheus(), "");
  EXPECT_EQ(registry.RenderJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistryTest, DefaultLatencyBucketsAreAscending) {
  const std::vector<double>& buckets = DefaultLatencyBucketsMs();
  ASSERT_FALSE(buckets.empty());
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]);
  }
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        registry.GetCounter("shared_total")->Increment();
        registry.GetGauge("shared_gauge")->Set(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared_total")->value(),
            static_cast<uint64_t>(kThreads) * 100);
}

TEST(MetricsRegistryTest, LabeledSeriesAreDistinctAndShareOneHelpBlock) {
  MetricsRegistry registry;
  Counter* get = registry.GetCounter("req_total", {{"verb", "get"}}, "reqs");
  Counter* put = registry.GetCounter("req_total", {{"verb", "put"}}, "reqs");
  EXPECT_NE(get, put);
  EXPECT_EQ(get, registry.GetCounter("req_total", MetricLabels{{"verb", "get"}}, ""));
  get->Increment(2);
  put->Increment();
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP req_total reqs\n"
            "# TYPE req_total counter\n"
            "req_total{verb=\"get\"} 2\n"
            "req_total{verb=\"put\"} 1\n");
}

// Prometheus label values must escape backslash, double quote and
// newline (in that exposition-format order: `\\`, `\"`, `\n`). One test
// per case so a regression names the exact broken escape.

TEST(MetricsRegistryTest, EscapesBackslashInLabelValue) {
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("C:\\temp\\x"),
            "C:\\\\temp\\\\x");
  MetricsRegistry registry;
  registry.GetCounter("c_total", MetricLabels{{"path", "a\\b"}}, "")->Increment();
  EXPECT_NE(registry.RenderPrometheus().find("c_total{path=\"a\\\\b\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EscapesDoubleQuoteInLabelValue) {
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("say \"hi\""),
            "say \\\"hi\\\"");
  MetricsRegistry registry;
  registry.GetCounter("c_total", MetricLabels{{"q", "\"quoted\""}}, "")->Increment();
  EXPECT_NE(
      registry.RenderPrometheus().find("c_total{q=\"\\\"quoted\\\"\"} 1"),
      std::string::npos);
}

TEST(MetricsRegistryTest, EscapesNewlineInLabelValue) {
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("line1\nline2"),
            "line1\\nline2");
  MetricsRegistry registry;
  registry.GetCounter("c_total", MetricLabels{{"msg", "a\nb"}}, "")->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("c_total{msg=\"a\\nb\"} 1"), std::string::npos);
  // The rendered series must stay on one exposition line: a raw newline
  // inside a label value would split it in two.
  EXPECT_EQ(text.find("a\nb"), std::string::npos);
}

TEST(MetricsRegistryTest, HostileLabelValueCannotInjectASeries) {
  // A label value crafted to close the quote and start a fake series
  // must come out inert.
  MetricsRegistry registry;
  registry
      .GetCounter("c_total",
                  MetricLabels{{"v", "x\"} 9\ninjected_total{v=\"y"}}, "")
      ->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_EQ(text.find("\ninjected_total"), std::string::npos);
  EXPECT_NE(text.find("c_total{v=\"x\\\"} 9\\ninjected_total{v=\\\"y\"} 1"),
            std::string::npos);
}

// -- Snapshot round-trip and fleet aggregation ----------------------------

MetricsRegistry* PopulatedRegistry(MetricsRegistry* registry) {
  registry->GetCounter("requests_total", "reqs")->Increment(3);
  registry->GetGauge("depth", "queue depth")->Set(2.5);
  Histogram* lat = registry->GetHistogram("lat", {1.0, 10.0}, "latency");
  lat->Observe(0.5);
  lat->Observe(5.0);
  registry->GetCounter("req_total", MetricLabels{{"verb", "get"}}, "")
      ->Increment(2);
  return registry;
}

TEST(MetricsSnapshotTest, SnapshotJsonRoundTripsExactly) {
  MetricsRegistry source;
  PopulatedRegistry(&source);
  MetricsRegistry loaded;
  const Status status = loaded.LoadSnapshotJson(source.SnapshotJson());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(loaded.RenderPrometheus(), source.RenderPrometheus());
  EXPECT_EQ(loaded.SnapshotJson(), source.SnapshotJson());
}

TEST(MetricsSnapshotTest, LoadWithExtraLabelsTagsEverySeries) {
  // The coordinator merges shard snapshots with a `shard` label so one
  // exposition distinguishes every process's series.
  MetricsRegistry source;
  PopulatedRegistry(&source);
  MetricsRegistry fleet;
  ASSERT_TRUE(
      fleet.LoadSnapshotJson(source.SnapshotJson(), {{"shard", "2"}}).ok());
  const std::string text = fleet.RenderPrometheus();
  EXPECT_NE(text.find("requests_total{shard=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("depth{shard=\"2\"} 2.5"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{shard=\"2\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  // Pre-existing labels survive alongside the added one.
  EXPECT_NE(text.find("verb=\"get\""), std::string::npos);
  // No unlabeled series leaked through.
  EXPECT_EQ(text.find("requests_total 3"), std::string::npos);
}

TEST(MetricsSnapshotTest, RepeatedLoadsAddCountersAndOverwriteGauges) {
  MetricsRegistry source;
  PopulatedRegistry(&source);
  const std::string snapshot = source.SnapshotJson();
  MetricsRegistry dest;
  ASSERT_TRUE(dest.LoadSnapshotJson(snapshot).ok());
  ASSERT_TRUE(dest.LoadSnapshotJson(snapshot).ok());
  EXPECT_EQ(dest.GetCounter("requests_total")->value(), 6u);
  EXPECT_DOUBLE_EQ(dest.GetGauge("depth")->value(), 2.5);
  EXPECT_EQ(dest.GetHistogram("lat", {1.0, 10.0})->count(), 4u);
}

TEST(MetricsSnapshotTest, MalformedSnapshotIsRejected) {
  MetricsRegistry registry;
  for (const char* bad :
       {"", "not json", "{\"v\":99,\"metrics\":[]}", "{\"v\":1}",
        "{\"v\":1,\"metrics\":[{\"kind\":\"counter\"}]}"}) {
    const Status status = registry.LoadSnapshotJson(bad);
    EXPECT_FALSE(status.ok()) << "accepted: " << bad;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << bad;
  }
  // These all fail before the first metric applies, so nothing sticks.
  EXPECT_EQ(registry.RenderPrometheus(), "");
}

TEST(MetricsSnapshotTest, ConstLabelsApplyToTheWholeExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "reqs")->Increment(3);
  registry.GetCounter("req_total", MetricLabels{{"verb", "get"}}, "")
      ->Increment();
  const std::string text =
      registry.RenderPrometheus(MetricLabels{{"shard", "0"}});
  EXPECT_NE(text.find("requests_total{shard=\"0\"} 3"), std::string::npos);
  // Const labels append after a series' own labels.
  EXPECT_NE(text.find("req_total{verb=\"get\",shard=\"0\"} 1"),
            std::string::npos)
      << text;
}

TEST(MetricsSnapshotTest, ResetZeroesEveryMetricButKeepsRegistrations) {
  MetricsRegistry registry;
  PopulatedRegistry(&registry);
  Counter* counter = registry.GetCounter("requests_total");
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(registry.GetCounter("requests_total"), counter);
  EXPECT_DOUBLE_EQ(registry.GetGauge("depth")->value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("lat", {1.0, 10.0})->count(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetHistogram("lat", {1.0, 10.0})->sum(), 0.0);
}

}  // namespace
}  // namespace hmmm
