#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/translator.h"

namespace hmmm {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  EventVocabulary vocab_ = SoccerEvents();
};

TEST_F(ParserTest, SingleEvent) {
  auto graph = ParseQuery("goal", vocab_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_states(), 2);
  ASSERT_EQ(graph->arcs().size(), 1u);
  EXPECT_EQ(graph->arcs()[0].all_of, (std::vector<EventId>{0}));
}

TEST_F(ParserTest, SequenceWithBothSeparators) {
  auto a = ParseQuery("goal ; free_kick ; corner_kick", vocab_);
  auto b = ParseQuery("goal -> free_kick -> corner_kick", vocab_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_states(), 4);
  EXPECT_EQ(b->num_states(), 4);
  EXPECT_EQ(a->arcs().size(), b->arcs().size());
}

TEST_F(ParserTest, ConjunctionOnOneShot) {
  auto graph = ParseQuery("free_kick & goal", vocab_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_states(), 2);
  ASSERT_EQ(graph->arcs().size(), 1u);
  EXPECT_EQ(graph->arcs()[0].all_of, (std::vector<EventId>{2, 0}));
}

TEST_F(ParserTest, AlternativesExpandToParallelArcs) {
  auto graph = ParseQuery("(goal | corner_kick)", vocab_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->arcs().size(), 2u);
  EXPECT_TRUE(graph->IsLinearChain());
}

TEST_F(ParserTest, ConjunctionOfAlternativesCrossProduct) {
  auto graph = ParseQuery("(goal | corner_kick) & free_kick", vocab_);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->arcs().size(), 2u);
  EXPECT_EQ(graph->arcs()[0].all_of, (std::vector<EventId>{0, 2}));
  EXPECT_EQ(graph->arcs()[1].all_of, (std::vector<EventId>{1, 2}));
}

TEST_F(ParserTest, PaperSection3Example) {
  // "a goal resulted from a free kick; then a corner kick; then a player
  // change; finally another goal".
  auto graph = ParseQuery(
      "free_kick & goal ; corner_kick ; player_change ; goal", vocab_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_states(), 5);
  auto pattern = TranslateMatn(*graph);
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern->size(), 4u);
  EXPECT_EQ(pattern->ToString(vocab_),
            "free_kick&goal ; corner_kick ; player_change ; goal");
}

TEST_F(ParserTest, WhitespaceInsensitive) {
  auto a = ParseQuery("goal;free_kick", vocab_);
  auto b = ParseQuery("  goal \n ;\t free_kick  ", vocab_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->arcs().size(), b->arcs().size());
}

TEST_F(ParserTest, Rejections) {
  EXPECT_FALSE(ParseQuery("", vocab_).ok());
  EXPECT_FALSE(ParseQuery("   ", vocab_).ok());
  EXPECT_FALSE(ParseQuery("slam_dunk", vocab_).ok());        // unknown event
  EXPECT_FALSE(ParseQuery("goal ;", vocab_).ok());           // dangling sep
  EXPECT_FALSE(ParseQuery("goal &", vocab_).ok());           // dangling and
  EXPECT_FALSE(ParseQuery("(goal)", vocab_).ok());           // 1-event group
  EXPECT_FALSE(ParseQuery("(goal | corner_kick", vocab_).ok());  // no ')'
  EXPECT_FALSE(ParseQuery("goal corner_kick", vocab_).ok());  // missing sep
  EXPECT_FALSE(ParseQuery("goal @ corner_kick", vocab_).ok());  // bad char
}

TEST_F(ParserTest, TranslateRejectsNonChain) {
  MatnGraph graph;
  graph.AddState();
  graph.AddState();
  graph.AddState();
  ASSERT_TRUE(graph.AddArc(0, 2, {0}).ok());
  EXPECT_FALSE(TranslateMatn(graph).ok());
}

TEST_F(ParserTest, CompileQueryEndToEnd) {
  auto pattern = CompileQuery("goal ; (free_kick | corner_kick)", vocab_);
  ASSERT_TRUE(pattern.ok());
  ASSERT_EQ(pattern->size(), 2u);
  EXPECT_EQ(pattern->steps[0].alternatives.size(), 1u);
  EXPECT_EQ(pattern->steps[1].alternatives.size(), 2u);
  const auto all = pattern->steps[1].AllEvents();
  EXPECT_EQ(all.size(), 2u);
}

TEST_F(ParserTest, TemporalPatternFromEvents) {
  const auto pattern = TemporalPattern::FromEvents({0, 2});
  EXPECT_EQ(pattern.size(), 2u);
  EXPECT_EQ(pattern.ToString(vocab_), "goal ; free_kick");
  EXPECT_FALSE(pattern.empty());
  EXPECT_TRUE(TemporalPattern{}.empty());
}

}  // namespace
}  // namespace hmmm
