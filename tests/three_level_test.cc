#include "retrieval/three_level.h"

#include <gtest/gtest.h>

#include <set>

#include "core/model_builder.h"
#include "media/news_generator.h"
#include "retrieval/metrics.h"
#include "test_util.h"

namespace hmmm {
namespace {

class ThreeLevelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Mixed archive: 5 soccer + 5 news videos.
    EventVocabulary combined = SoccerEvents();
    const EventVocabulary news_vocab = NewsEvents();
    for (const std::string& name : news_vocab.names()) {
      news_ids_.push_back(combined.Register(name));
    }
    catalog_ = VideoCatalog(combined, 20);

    FeatureLevelConfig soccer_config = SoccerFeatureLevelDefaults(51);
    soccer_config.num_videos = 5;
    soccer_config.min_shots_per_video = 30;
    soccer_config.max_shots_per_video = 50;
    soccer_config.event_shot_fraction = 0.3;
    for (const GeneratedVideo& video :
         FeatureLevelGenerator(soccer_config).Generate().videos) {
      const VideoId vid = catalog_.AddVideo("soccer_" + video.name);
      for (const GeneratedShot& shot : video.shots) {
        ASSERT_TRUE(catalog_.AddShot(vid, shot.begin_time, shot.end_time,
                                     shot.events, shot.features).ok());
      }
    }
    FeatureLevelConfig news_config = NewsFeatureLevelDefaults(52);
    news_config.num_videos = 5;
    news_config.min_shots_per_video = 30;
    news_config.max_shots_per_video = 50;
    for (const GeneratedVideo& video :
         FeatureLevelGenerator(news_config).Generate().videos) {
      const VideoId vid = catalog_.AddVideo("news_" + video.name);
      for (const GeneratedShot& shot : video.shots) {
        std::vector<EventId> remapped;
        for (EventId e : shot.events) {
          remapped.push_back(news_ids_[static_cast<size_t>(e)]);
        }
        ASSERT_TRUE(catalog_.AddShot(vid, shot.begin_time, shot.end_time,
                                     remapped, shot.features).ok());
      }
    }

    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
    CategoryLevelOptions options;
    options.num_clusters = 2;
    auto level = BuildCategoryLevel(model_, options);
    ASSERT_TRUE(level.ok());
    categories_ = std::move(level).value();
  }

  std::vector<EventId> news_ids_;
  VideoCatalog catalog_;
  HierarchicalModel model_;
  CategoryLevel categories_;
};

TEST_F(ThreeLevelTest, PrunesToContainingCluster) {
  ThreeLevelTraversal traversal(model_, catalog_, categories_);
  // goal (id 0) exists only in soccer videos (ids 0..4).
  const auto order =
      traversal.PrunedVideoOrder(TemporalPattern::FromEvents({0}));
  ASSERT_EQ(order.size(), 5u);
  for (VideoId v : order) {
    EXPECT_LT(v, 5) << "news video not pruned";
  }
}

TEST_F(ThreeLevelTest, VisitsFewerVideosThanTwoLevel) {
  ThreeLevelTraversal pruned(model_, catalog_, categories_);
  HmmmTraversal full(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  RetrievalStats pruned_stats, full_stats;
  auto pruned_results = pruned.Retrieve(pattern, &pruned_stats);
  auto full_results = full.Retrieve(pattern, &full_stats);
  ASSERT_TRUE(pruned_results.ok());
  ASSERT_TRUE(full_results.ok());
  EXPECT_LT(pruned_stats.videos_considered, full_stats.videos_considered);
  EXPECT_LT(pruned_stats.sim_evaluations, full_stats.sim_evaluations);
}

TEST_F(ThreeLevelTest, SameResultsAsTwoLevelOnContainingVideos) {
  // The pruned traversal must return the same candidates the 2-level
  // engine finds within the surviving cluster.
  ThreeLevelTraversal pruned(model_, catalog_, categories_);
  HmmmTraversal full(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});  // soccer only
  auto pruned_results = pruned.Retrieve(pattern);
  auto full_results = full.Retrieve(pattern);
  ASSERT_TRUE(pruned_results.ok());
  ASSERT_TRUE(full_results.ok());

  // Every pruned result appears in the full result set with equal score.
  for (const auto& p : *pruned_results) {
    bool found = false;
    for (const auto& f : *full_results) {
      if (f.shots == p.shots) {
        EXPECT_NEAR(f.score, p.score, 1e-12);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(ThreeLevelTest, NewsQueriesRouteToNewsCluster) {
  ThreeLevelTraversal traversal(model_, catalog_, categories_);
  const EventId anchor = news_ids_[0];
  const auto order =
      traversal.PrunedVideoOrder(TemporalPattern::FromEvents({anchor}));
  ASSERT_EQ(order.size(), 5u);
  for (VideoId v : order) {
    EXPECT_GE(v, 5) << "soccer video not pruned for news query";
  }
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({anchor}));
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST_F(ThreeLevelTest, UnknownEventFallsBackToAllVideos) {
  ThreeLevelTraversal traversal(model_, catalog_, categories_);
  // red_card (id 6) may exist in no cluster; order must not be empty.
  TemporalPattern pattern = TemporalPattern::FromEvents({6});
  const auto order = traversal.PrunedVideoOrder(pattern);
  const bool contained = categories_.ClusterContainsEvent(0, 6) ||
                         categories_.ClusterContainsEvent(1, 6);
  if (!contained) {
    EXPECT_EQ(order.size(), catalog_.num_videos());
  } else {
    EXPECT_FALSE(order.empty());
  }
}

TEST_F(ThreeLevelTest, EmptyPatternRejected) {
  ThreeLevelTraversal traversal(model_, catalog_, categories_);
  EXPECT_FALSE(traversal.Retrieve(TemporalPattern{}).ok());
}

TEST_F(ThreeLevelTest, RetrieveWithVideoOrderValidatesIds) {
  HmmmTraversal traversal(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({0});
  EXPECT_FALSE(traversal.RetrieveWithVideoOrder(pattern, {999}).ok());
  EXPECT_FALSE(traversal.RetrieveWithVideoOrder(pattern, {-1}).ok());
  auto empty_order = traversal.RetrieveWithVideoOrder(pattern, {});
  ASSERT_TRUE(empty_order.ok());
  EXPECT_TRUE(empty_order->empty());
}

}  // namespace
}  // namespace hmmm
