#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/video_database.h"
#include "client/query_client.h"
#include "common/fault_injector.h"
#include "server/query_server.h"
#include "test_util.h"

// Loopback chaos: arm the server's read/write fault points and assert the
// serving stack degrades along its contract — connections may die, but
// the server stays up, never crashes, and never emits a torn frame.
// Probes only exist with -DHMMM_FAULT_INJECTION=ON; otherwise each test
// skips (but still compiles).
#ifdef HMMM_FAULT_INJECTION
#define SKIP_WITHOUT_FAULT_INJECTION() (void)0
#else
#define SKIP_WITHOUT_FAULT_INJECTION() \
  GTEST_SKIP() << "built without HMMM_FAULT_INJECTION"
#endif

namespace hmmm {
namespace {

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    auto db = VideoDatabase::Create(testing::GeneratedSoccerCatalog());
    ASSERT_TRUE(db.ok());
    db_.emplace(std::move(db).value());
  }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  std::optional<VideoDatabase> db_;
};

QueryClientOptions ChaosClientOptions(uint16_t port) {
  QueryClientOptions options;
  options.port = port;
  options.max_retries = 16;
  options.retry_backoff = std::chrono::milliseconds(1);
  // Keep the backoff flat: once the server shuts down mid-test, a
  // client burning its whole retry budget against a refused port must
  // finish in milliseconds, not geometric-backoff minutes.
  options.retry_backoff_cap = std::chrono::milliseconds(2);
  options.io_timeout = std::chrono::milliseconds(5000);
  return options;
}

TEST_F(ServerChaosTest, TransientReadFaultsDropConnectionsNotTheServer) {
  SKIP_WITHOUT_FAULT_INJECTION();
  QueryServer server(&*db_);
  ASSERT_TRUE(server.Start().ok());

  // Every 3rd poll-readable event on a connection "fails the read": the
  // server treats the connection as dead and erases it. Clients see a
  // transport failure on an idempotent request and reconnect-retry.
  FaultPointConfig config;
  config.probability = 0.34;
  FaultInjector::Instance().Arm("server.read", config);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      QueryClient client(ChaosClientOptions(server.port()));
      for (int i = 0; i < 8; ++i) {
        TemporalQueryRequest request;
        request.text = "free_kick ; goal";
        if (!client.TemporalQuery(request).ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // With a 16-deep retry budget per request, every query must get
  // through despite the faulty reads.
  EXPECT_EQ(failures.load(), 0);

  FaultInjector::Instance().Disarm("server.read");
  QueryClient client(ChaosClientOptions(server.port()));
  EXPECT_TRUE(client.Health().ok());
  server.Shutdown();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerChaosTest, WriteFaultsCloseTheConnectionWithoutTornFrames) {
  SKIP_WITHOUT_FAULT_INJECTION();
  QueryServer server(&*db_);
  ASSERT_TRUE(server.Start().ok());

  FaultPointConfig config;
  config.probability = 0.5;
  FaultInjector::Instance().Arm("server.write", config);

  // A fired write fault swallows the whole response and closes the
  // connection: the client must observe clean transport failures (and
  // retry), never a half-written frame surfacing as a CRC/framing error.
  std::atomic<int> torn{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      QueryClient client(ChaosClientOptions(server.port()));
      for (int i = 0; i < 8; ++i) {
        TemporalQueryRequest request;
        request.text = "corner_kick ; goal";
        const auto response = client.TemporalQuery(request);
        if (response.ok()) {
          ++completed;
        } else if (response.status().code() == StatusCode::kInvalidArgument ||
                   response.status().code() == StatusCode::kDataLoss ||
                   response.status().code() == StatusCode::kInternal) {
          ++torn;
          ADD_FAILURE() << "torn frame: " << response.status().ToString();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(completed.load(), 0);

  FaultInjector::Instance().Disarm("server.write");
  QueryClient client(ChaosClientOptions(server.port()));
  EXPECT_TRUE(client.Health().ok());
}

TEST_F(ServerChaosTest, ShutdownUnderActiveFaultsStillDrains) {
  SKIP_WITHOUT_FAULT_INJECTION();
  QueryServer server(&*db_);
  ASSERT_TRUE(server.Start().ok());

  FaultPointConfig config;
  config.probability = 0.25;
  FaultInjector::Instance().Arm("server.read", config);
  FaultInjector::Instance().Arm("server.write", config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      QueryClient client(ChaosClientOptions(server.port()));
      while (!stop.load()) {
        TemporalQueryRequest request;
        request.text = "free_kick ; corner_kick";
        (void)client.TemporalQuery(request);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();  // must terminate despite armed faults
  EXPECT_FALSE(server.running());
  stop.store(true);
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace hmmm
