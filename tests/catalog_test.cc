#include "storage/catalog.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hmmm {
namespace {

TEST(CatalogTest, AddVideosAndShots) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  EXPECT_EQ(catalog.num_videos(), 2u);
  EXPECT_EQ(catalog.num_shots(), 8u);
  EXPECT_EQ(catalog.num_annotated_shots(), 6u);
  EXPECT_EQ(catalog.num_annotations(), 7u);  // one shot carries two events
  EXPECT_EQ(catalog.video(0).name, "video_a");
  EXPECT_EQ(catalog.shot(2).events.size(), 2u);
  EXPECT_EQ(catalog.shot(2).NumEvents(), 2);
}

TEST(CatalogTest, ShotRecordHasEvent) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const ShotRecord& shot = catalog.shot(2);  // free_kick + goal
  EXPECT_TRUE(shot.HasEvent(0));
  EXPECT_TRUE(shot.HasEvent(2));
  EXPECT_FALSE(shot.HasEvent(1));
}

TEST(CatalogTest, AddShotValidation) {
  VideoCatalog catalog(SoccerEvents(), 3);
  EXPECT_FALSE(catalog.AddShot(0, 0, 1, {}, {0, 0, 0}).ok());  // no video
  const VideoId v = catalog.AddVideo("v");
  EXPECT_FALSE(catalog.AddShot(v, 0, 1, {}, {0, 0}).ok());  // width
  EXPECT_FALSE(catalog.AddShot(v, 0, 1, {99}, {0, 0, 0}).ok());  // event id
  ASSERT_TRUE(catalog.AddShot(v, 5, 6, {}, {0, 0, 0}).ok());
  // Temporal order enforced.
  EXPECT_FALSE(catalog.AddShot(v, 1, 2, {}, {0, 0, 0}).ok());
}

TEST(CatalogTest, AnnotatedShotsPerVideoInOrder) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const auto annotated = catalog.AnnotatedShots(0);
  EXPECT_EQ(annotated, (std::vector<ShotId>{0, 2, 3}));
  const auto all = catalog.AllAnnotatedShots();
  EXPECT_EQ(all, (std::vector<ShotId>{0, 2, 3, 4, 6, 7}));
}

TEST(CatalogTest, RawFeatureMatrix) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const Matrix bb1 = catalog.RawFeatureMatrix();
  EXPECT_EQ(bb1.rows(), 8u);
  EXPECT_EQ(bb1.cols(), 8u);
  // Shot 0 is a free_kick (event id 2): feature 2 is hot.
  EXPECT_DOUBLE_EQ(bb1.at(0, 2), 0.9);
  EXPECT_DOUBLE_EQ(bb1.at(0, 0), 0.1);

  const Matrix subset = catalog.RawFeatureMatrixFor({2, 0});
  EXPECT_EQ(subset.rows(), 2u);
  EXPECT_DOUBLE_EQ(subset.at(0, 0), 0.9);  // shot 2 carries goal (id 0)
  EXPECT_DOUBLE_EQ(subset.at(1, 2), 0.9);
}

TEST(CatalogTest, EventCountMatrixB2) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const Matrix b2 = catalog.EventCountMatrix();
  EXPECT_EQ(b2.rows(), 2u);
  EXPECT_EQ(b2.cols(), 8u);
  EXPECT_DOUBLE_EQ(b2.at(0, 2), 2.0);  // video_a: two free_kicks
  EXPECT_DOUBLE_EQ(b2.at(0, 0), 1.0);  // one goal
  EXPECT_DOUBLE_EQ(b2.at(0, 1), 1.0);  // one corner
  EXPECT_DOUBLE_EQ(b2.at(1, 0), 2.0);  // video_b: two goals
  EXPECT_DOUBLE_EQ(b2.at(1, 1), 0.0);
}

TEST(CatalogTest, ValidatePasses) {
  EXPECT_TRUE(testing::SmallSoccerCatalog().Validate().ok());
  EXPECT_TRUE(testing::GeneratedSoccerCatalog().Validate().ok());
}

TEST(CatalogTest, FromGeneratedCorpusPreservesCounts) {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(2);
  config.num_videos = 4;
  config.min_shots_per_video = 20;
  config.max_shots_per_video = 30;
  FeatureLevelGenerator generator(config);
  const GeneratedCorpus corpus = generator.Generate();
  auto catalog = VideoCatalog::FromGeneratedCorpus(corpus);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->num_videos(), corpus.videos.size());
  EXPECT_EQ(catalog->num_shots(), corpus.TotalShots());
  EXPECT_EQ(catalog->num_annotated_shots(), corpus.TotalAnnotatedShots());
  EXPECT_EQ(catalog->num_features(), corpus.num_features);
}

TEST(CatalogTest, IndexInVideoIsDense) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  for (const VideoRecord& video : catalog.videos()) {
    int expected = 0;
    for (ShotId sid : video.shots) {
      EXPECT_EQ(catalog.shot(sid).index_in_video, expected++);
    }
  }
}

}  // namespace
}  // namespace hmmm
