#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "feedback/access_log.h"
#include "feedback/simulated_user.h"
#include "feedback/trainer.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

class FeedbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST(AccessLogTest, RecordsAndDeduplicates) {
  AccessLog log;
  log.RecordShotPattern({0, 2});
  log.RecordShotPattern({0, 2});
  log.RecordShotPattern({1, 3}, 2.0);
  EXPECT_EQ(log.num_shot_patterns(), 2u);
  EXPECT_EQ(log.num_feedback_events(), 3u);
  EXPECT_DOUBLE_EQ(log.shot_patterns()[0].access_count, 2.0);
  EXPECT_DOUBLE_EQ(log.shot_patterns()[1].access_count, 2.0);
}

TEST(AccessLogTest, IgnoresEmptyAndNonPositive) {
  AccessLog log;
  log.RecordShotPattern({});
  log.RecordShotPattern({1}, 0.0);
  log.RecordShotPattern({1}, -1.0);
  log.RecordVideoAccess({});
  EXPECT_EQ(log.num_shot_patterns(), 0u);
  EXPECT_EQ(log.num_feedback_events(), 0u);
}

TEST(AccessLogTest, VideoAccessesAccumulate) {
  AccessLog log;
  log.RecordVideoAccess({0, 1});
  log.RecordVideoAccess({0, 1}, 3.0);
  ASSERT_EQ(log.video_patterns().size(), 1u);
  EXPECT_DOUBLE_EQ(log.video_patterns()[0].access_count, 4.0);
}

TEST(AccessLogTest, ClearResets) {
  AccessLog log;
  log.RecordShotPattern({0});
  log.RecordVideoAccess({0});
  log.Clear();
  EXPECT_EQ(log.num_shot_patterns(), 0u);
  EXPECT_TRUE(log.video_patterns().empty());
  EXPECT_EQ(log.num_feedback_events(), 0u);
}

TEST_F(FeedbackTest, MarkPositiveRecordsGlobalStates) {
  FeedbackTrainer trainer(catalog_);
  RetrievedPattern pattern;
  pattern.shots = {0, 2};  // video 0 annotated shots
  ASSERT_TRUE(trainer.MarkPositive(model_, pattern).ok());
  EXPECT_EQ(trainer.log().num_shot_patterns(), 1u);
  EXPECT_EQ(trainer.log().shot_patterns()[0].states,
            (std::vector<int>{0, 1}));  // global states of shots 0 and 2
  ASSERT_EQ(trainer.log().video_patterns().size(), 1u);
  EXPECT_EQ(trainer.log().video_patterns()[0].states,
            (std::vector<int>{0}));
}

TEST_F(FeedbackTest, MarkPositiveRejectsNonStates) {
  FeedbackTrainer trainer(catalog_);
  RetrievedPattern pattern;
  pattern.shots = {1};  // un-annotated shot, not a state
  EXPECT_FALSE(trainer.MarkPositive(model_, pattern).ok());
  RetrievedPattern empty;
  EXPECT_FALSE(trainer.MarkPositive(model_, empty).ok());
}

TEST_F(FeedbackTest, ThresholdGatesTraining) {
  FeedbackTrainerOptions options;
  options.retrain_threshold = 3;
  FeedbackTrainer trainer(catalog_, options);
  RetrievedPattern pattern;
  pattern.shots = {0, 2};

  ASSERT_TRUE(trainer.MarkPositive(model_, pattern).ok());
  auto trained = trainer.MaybeTrain(model_);
  ASSERT_TRUE(trained.ok());
  EXPECT_FALSE(*trained);  // below threshold

  ASSERT_TRUE(trainer.MarkPositive(model_, pattern).ok());
  ASSERT_TRUE(trainer.MarkPositive(model_, pattern).ok());
  trained = trainer.MaybeTrain(model_);
  ASSERT_TRUE(trained.ok());
  EXPECT_TRUE(*trained);
  EXPECT_EQ(trainer.rounds_trained(), 1u);
  EXPECT_EQ(trainer.log().num_feedback_events(), 0u);  // cleared
  EXPECT_TRUE(model_.Validate().ok());
}

TEST_F(FeedbackTest, ForceTrainsBelowThreshold) {
  FeedbackTrainer trainer(catalog_);
  RetrievedPattern pattern;
  pattern.shots = {0, 2};
  ASSERT_TRUE(trainer.MarkPositive(model_, pattern).ok());
  auto trained = trainer.MaybeTrain(model_, /*force=*/true);
  ASSERT_TRUE(trained.ok());
  EXPECT_TRUE(*trained);
  // With no pending feedback even force is a no-op.
  trained = trainer.MaybeTrain(model_, /*force=*/true);
  ASSERT_TRUE(trained.ok());
  EXPECT_FALSE(*trained);
}

TEST_F(FeedbackTest, TrainingSharpensTowardMarkedPattern) {
  FeedbackTrainer trainer(catalog_);
  RetrievedPattern positive;
  positive.shots = {0, 3};  // free_kick shot then corner shot in video 0
  ASSERT_TRUE(trainer.MarkPositive(model_, positive).ok());
  ASSERT_TRUE(trainer.MaybeTrain(model_, /*force=*/true).ok());
  const LocalShotModel& local = model_.local(0);
  // Transition 0 -> 2 (local indices: corner shot is local state 2).
  EXPECT_DOUBLE_EQ(local.a1.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(local.a1.at(0, 1), 0.0);
}

TEST_F(FeedbackTest, RelearnFeatureWeightsOption) {
  FeedbackTrainerOptions options;
  options.relearn_feature_weights = true;
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(77, 8);
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  const Matrix p12_before = model->p12();

  FeedbackTrainer trainer(catalog, options);
  // Mark some annotated pattern positive.
  HmmmTraversal traversal(*model, catalog);
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({0}));
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  ASSERT_TRUE(trainer.MarkPositive(*model, results->front()).ok());
  ASSERT_TRUE(trainer.MaybeTrain(*model, /*force=*/true).ok());
  EXPECT_GT(model->p12().MaxAbsDiff(p12_before), 1e-9);
}

TEST_F(FeedbackTest, SimulatedUserJudgesByAnnotations) {
  SimulatedUser user(catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  std::vector<RetrievedPattern> results(3);
  results[0].shots = {0, 2};  // relevant
  results[1].shots = {3, 2};  // wrong order / wrong events
  results[2].shots = {6, 7};  // relevant
  const auto positives = user.JudgePositive(pattern, results);
  EXPECT_EQ(positives, (std::vector<size_t>{0, 2}));
}

TEST_F(FeedbackTest, SimulatedUserInspectsTopKOnly) {
  SimulatedUserOptions options;
  options.inspect_top_k = 1;
  SimulatedUser user(catalog_, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  std::vector<RetrievedPattern> results(2);
  results[0].shots = {0, 2};
  results[1].shots = {6, 7};
  const auto positives = user.JudgePositive(pattern, results);
  EXPECT_EQ(positives, (std::vector<size_t>{0}));
}

TEST_F(FeedbackTest, SimulatedUserNoiseFlips) {
  SimulatedUserOptions options;
  options.judgment_noise = 1.0;  // always flip
  SimulatedUser user(catalog_, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  std::vector<RetrievedPattern> results(2);
  results[0].shots = {0, 2};  // relevant -> flipped to negative
  results[1].shots = {3, 2};  // irrelevant -> flipped to positive
  const auto positives = user.JudgePositive(pattern, results);
  EXPECT_EQ(positives, (std::vector<size_t>{1}));
}

}  // namespace
}  // namespace hmmm
