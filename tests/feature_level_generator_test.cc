#include "media/feature_level_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "media/news_generator.h"

namespace hmmm {
namespace {

FeatureLevelConfig TestConfig() {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(17);
  config.num_videos = 6;
  config.min_shots_per_video = 30;
  config.max_shots_per_video = 50;
  config.event_shot_fraction = 0.3;
  return config;
}

TEST(FeatureLevelGeneratorTest, Deterministic) {
  FeatureLevelGenerator a(TestConfig());
  FeatureLevelGenerator b(TestConfig());
  const GeneratedCorpus ca = a.Generate();
  const GeneratedCorpus cb = b.Generate();
  ASSERT_EQ(ca.videos.size(), cb.videos.size());
  ASSERT_EQ(ca.TotalShots(), cb.TotalShots());
  EXPECT_EQ(ca.videos[2].shots[5].features, cb.videos[2].shots[5].features);
  EXPECT_EQ(ca.videos[2].shots[5].events, cb.videos[2].shots[5].events);
}

TEST(FeatureLevelGeneratorTest, ShapeMatchesConfig) {
  const FeatureLevelConfig config = TestConfig();
  FeatureLevelGenerator generator(config);
  const GeneratedCorpus corpus = generator.Generate();
  EXPECT_EQ(corpus.videos.size(), 6u);
  EXPECT_EQ(corpus.num_features, 20);
  for (const GeneratedVideo& video : corpus.videos) {
    EXPECT_GE(static_cast<int>(video.shots.size()),
              config.min_shots_per_video);
    EXPECT_LE(static_cast<int>(video.shots.size()),
              config.max_shots_per_video);
    for (const GeneratedShot& shot : video.shots) {
      EXPECT_EQ(shot.features.size(), 20u);
      EXPECT_LT(shot.begin_time, shot.end_time);
      for (double f : shot.features) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
      }
    }
  }
}

TEST(FeatureLevelGeneratorTest, ShotsTemporallyOrdered) {
  FeatureLevelGenerator generator(TestConfig());
  const GeneratedCorpus corpus = generator.Generate();
  for (const GeneratedVideo& video : corpus.videos) {
    for (size_t i = 1; i < video.shots.size(); ++i) {
      EXPECT_GE(video.shots[i].begin_time, video.shots[i - 1].begin_time);
    }
  }
}

TEST(FeatureLevelGeneratorTest, AnnotationFractionRoughlyHonored) {
  FeatureLevelConfig config = TestConfig();
  config.num_videos = 20;
  config.event_shot_fraction = 0.2;
  FeatureLevelGenerator generator(config);
  const GeneratedCorpus corpus = generator.Generate();
  const double fraction =
      static_cast<double>(corpus.TotalAnnotatedShots()) /
      static_cast<double>(corpus.TotalShots());
  EXPECT_NEAR(fraction, 0.2, 0.05);
}

TEST(FeatureLevelGeneratorTest, PaperScaleDefaults) {
  // The default config reproduces the paper's corpus scale: 54 videos,
  // ~11.5k shots, ~500 annotated shots (506 in the paper).
  FeatureLevelGenerator generator(SoccerFeatureLevelDefaults(1));
  const GeneratedCorpus corpus = generator.Generate();
  EXPECT_EQ(corpus.videos.size(), 54u);
  EXPECT_NEAR(static_cast<double>(corpus.TotalShots()), 11567.0, 1400.0);
  EXPECT_NEAR(static_cast<double>(corpus.TotalAnnotatedShots()), 506.0, 120.0);
}

TEST(FeatureLevelGeneratorTest, EventConditionalFeaturesSeparate) {
  // Shots of one event should be closer to their own event mean than to
  // another event's mean on informative features.
  FeatureLevelConfig config = TestConfig();
  config.feature_noise = 0.05;
  FeatureLevelGenerator generator(config);
  const GeneratedCorpus corpus = generator.Generate();
  const Matrix& means = generator.event_means();

  double own = 0.0, other = 0.0;
  size_t count = 0;
  for (const GeneratedVideo& video : corpus.videos) {
    for (const GeneratedShot& shot : video.shots) {
      if (shot.events.size() != 1) continue;
      const auto e = static_cast<size_t>(shot.events[0]);
      const size_t rival = (e + 1) % corpus.vocabulary.size();
      for (int f = 0; f < config.informative_features; ++f) {
        own += std::abs(shot.features[static_cast<size_t>(f)] -
                        means.at(e, static_cast<size_t>(f)));
        other += std::abs(shot.features[static_cast<size_t>(f)] -
                          means.at(rival, static_cast<size_t>(f)));
      }
      ++count;
    }
  }
  ASSERT_GT(count, 10u);
  EXPECT_LT(own, other);
}

TEST(FeatureLevelGeneratorTest, UninformativeFeaturesShareBackground) {
  FeatureLevelGenerator generator(TestConfig());
  const Matrix& means = generator.event_means();
  const size_t background = SoccerEvents().size();
  for (int f = 14; f < 20; ++f) {  // informative_features defaults to 14
    for (size_t e = 0; e < background; ++e) {
      EXPECT_DOUBLE_EQ(means.at(e, static_cast<size_t>(f)),
                       means.at(background, static_cast<size_t>(f)));
    }
  }
}

TEST(FeatureLevelGeneratorTest, CorpusCounters) {
  GeneratedCorpus corpus;
  corpus.videos.resize(2);
  corpus.videos[0].shots.resize(3);
  corpus.videos[1].shots.resize(2);
  corpus.videos[0].shots[1].events = {0};
  corpus.videos[1].shots[0].events = {1, 2};
  EXPECT_EQ(corpus.TotalShots(), 5u);
  EXPECT_EQ(corpus.TotalAnnotatedShots(), 2u);
}

TEST(NewsGeneratorTest, NewsDefaultsProduceDenseAnnotations) {
  FeatureLevelGenerator generator(NewsFeatureLevelDefaults(5));
  const GeneratedCorpus corpus = generator.Generate();
  EXPECT_EQ(corpus.vocabulary.size(), 6u);
  const double fraction =
      static_cast<double>(corpus.TotalAnnotatedShots()) /
      static_cast<double>(corpus.TotalShots());
  EXPECT_GT(fraction, 0.35);
}

TEST(NewsGeneratorTest, AnchorDominatesTransitions) {
  // In the news chain, field content returns to the anchor desk most of
  // the time — check the generated sequences reflect that.
  FeatureLevelConfig config = NewsFeatureLevelDefaults(5);
  config.num_videos = 10;
  FeatureLevelGenerator generator(config);
  const GeneratedCorpus corpus = generator.Generate();
  const EventId anchor = *corpus.vocabulary.Find("anchor");
  size_t anchor_count = 0, total = 0;
  for (const GeneratedVideo& video : corpus.videos) {
    for (const GeneratedShot& shot : video.shots) {
      for (EventId e : shot.events) {
        ++total;
        if (e == anchor) ++anchor_count;
      }
    }
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(anchor_count) / static_cast<double>(total),
            0.3);
}

}  // namespace
}  // namespace hmmm
