// Property-style parameterized sweeps over the model invariants the paper
// relies on: row-stochastic transition matrices, distribution-valued Pi,
// normalized B1, weight matrices summing to 1 per event, and retrieval
// determinism — across seeds and corpus shapes.

#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "core/learner.h"
#include "query/translator.h"
#include "retrieval/baseline_exhaustive.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

struct CorpusParams {
  uint64_t seed;
  int num_videos;
  double event_fraction;
};

std::string ParamName(const ::testing::TestParamInfo<CorpusParams>& info) {
  return "seed" + std::to_string(info.param.seed) + "_v" +
         std::to_string(info.param.num_videos) + "_e" +
         std::to_string(static_cast<int>(info.param.event_fraction * 100));
}

class ModelInvariantsTest : public ::testing::TestWithParam<CorpusParams> {
 protected:
  void SetUp() override {
    FeatureLevelConfig config = SoccerFeatureLevelDefaults(GetParam().seed);
    config.num_videos = GetParam().num_videos;
    config.min_shots_per_video = 25;
    config.max_shots_per_video = 60;
    config.event_shot_fraction = GetParam().event_fraction;
    FeatureLevelGenerator generator(config);
    auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(catalog).value();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_P(ModelInvariantsTest, FullModelValidates) {
  EXPECT_TRUE(model_.Validate().ok());
}

TEST_P(ModelInvariantsTest, A1RowsStochasticUpperTriangular) {
  for (const LocalShotModel& local : model_.locals()) {
    EXPECT_TRUE(local.a1.IsRowStochastic(1e-9, true));
    for (size_t i = 0; i < local.a1.rows(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        EXPECT_DOUBLE_EQ(local.a1.at(i, j), 0.0);
      }
    }
  }
}

TEST_P(ModelInvariantsTest, B1WithinUnitInterval) {
  for (size_t r = 0; r < model_.b1().rows(); ++r) {
    for (size_t c = 0; c < model_.b1().cols(); ++c) {
      EXPECT_GE(model_.b1().at(r, c), 0.0);
      EXPECT_LE(model_.b1().at(r, c), 1.0);
    }
  }
}

TEST_P(ModelInvariantsTest, B2CountsMatchAnnotations) {
  double b2_total = 0.0;
  for (size_t v = 0; v < model_.b2().rows(); ++v) {
    b2_total += model_.b2().RowSum(v);
  }
  EXPECT_DOUBLE_EQ(b2_total, static_cast<double>(catalog_.num_annotations()));
}

TEST_P(ModelInvariantsTest, LearnedP12RowsSumToOne) {
  auto p12 = ComputeFeatureWeights(model_, catalog_);
  ASSERT_TRUE(p12.ok());
  for (size_t e = 0; e < p12->rows(); ++e) {
    EXPECT_NEAR(p12->RowSum(e), 1.0, 1e-9);
    for (size_t f = 0; f < p12->cols(); ++f) {
      EXPECT_GE(p12->at(e, f), 0.0);
    }
  }
}

TEST_P(ModelInvariantsTest, CentroidsWithinUnitInterval) {
  auto centroids = ComputeEventCentroids(model_, catalog_);
  ASSERT_TRUE(centroids.ok());
  for (size_t e = 0; e < centroids->rows(); ++e) {
    for (size_t f = 0; f < centroids->cols(); ++f) {
      EXPECT_GE(centroids->at(e, f), 0.0);
      EXPECT_LE(centroids->at(e, f), 1.0);
    }
  }
}

TEST_P(ModelInvariantsTest, SerializationIsLossless) {
  auto restored = HierarchicalModel::Deserialize(model_.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_LT(restored->b1().MaxAbsDiff(model_.b1()), 1e-15);
  EXPECT_LT(restored->a2().MaxAbsDiff(model_.a2()), 1e-15);
  EXPECT_EQ(restored->num_global_states(), model_.num_global_states());
}

TEST_P(ModelInvariantsTest, RetrievalIsDeterministic) {
  HmmmTraversal traversal(model_, catalog_);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto a = traversal.Retrieve(pattern);
  auto b = traversal.Retrieve(pattern);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].shots, (*b)[i].shots);
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST_P(ModelInvariantsTest, EdgeWeightsAreEquation13Products) {
  TraversalOptions options;
  options.beam_width = 2;
  HmmmTraversal traversal(model_, catalog_, options);
  auto results = traversal.Retrieve(TemporalPattern::FromEvents({2, 0}));
  ASSERT_TRUE(results.ok());
  SimilarityScorer scorer(model_);
  for (const RetrievedPattern& result : *results) {
    if (result.crosses_videos) continue;
    ASSERT_EQ(result.shots.size(), 2u);
    const LocalShotModel& local = model_.local(result.video);
    int i0 = -1, i1 = -1;
    for (size_t i = 0; i < local.states.size(); ++i) {
      if (local.states[i] == result.shots[0]) i0 = static_cast<int>(i);
      if (local.states[i] == result.shots[1]) i1 = static_cast<int>(i);
    }
    ASSERT_GE(i0, 0);
    ASSERT_GE(i1, 0);
    const int g0 = model_.GlobalStateOf(result.shots[0]);
    const int g1 = model_.GlobalStateOf(result.shots[1]);
    const double w1 = local.pi1[static_cast<size_t>(i0)] *
                      scorer.EventSimilarity(g0, 2);
    const double w2 = w1 *
                      local.a1.at(static_cast<size_t>(i0),
                                  static_cast<size_t>(i1)) *
                      scorer.EventSimilarity(g1, 0);
    EXPECT_NEAR(result.edge_weights[0], w1, 1e-9);
    EXPECT_NEAR(result.edge_weights[1], w2, 1e-9);
    EXPECT_NEAR(result.score, w1 + w2, 1e-9);
  }
}

TEST_P(ModelInvariantsTest, ExhaustiveDominatesGreedyEverywhere) {
  const auto pattern = TemporalPattern::FromEvents({3, 2});  // foul -> fk
  ExhaustiveMatcher exhaustive(model_, catalog_);
  HmmmTraversal greedy(model_, catalog_);
  auto gold = exhaustive.Retrieve(pattern);
  auto fast = greedy.Retrieve(pattern);
  ASSERT_TRUE(gold.ok());
  ASSERT_TRUE(fast.ok());
  if (!gold->empty() && !fast->empty()) {
    EXPECT_GE(gold->front().score + 1e-12, fast->front().score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CorpusSweep, ModelInvariantsTest,
    ::testing::Values(CorpusParams{1, 4, 0.15}, CorpusParams{2, 8, 0.25},
                      CorpusParams{3, 12, 0.40}, CorpusParams{11, 6, 0.08},
                      CorpusParams{29, 10, 0.30}),
    ParamName);

// Sweep the A1 initialization over many annotation-count profiles.
class AffinitySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(AffinitySweepTest, InitialAffinityInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    const int n = rng.NextInt(1, 12);
    std::vector<int> counts;
    for (int i = 0; i < n; ++i) counts.push_back(rng.NextInt(1, 4));
    auto a1 = InitialShotAffinity(counts);
    ASSERT_TRUE(a1.ok());
    EXPECT_TRUE(a1->IsRowStochastic(1e-9));
    // Mass into state j from row i < j is proportional to NE(j).
    if (n >= 3) {
      const double denom = a1->at(0, 2);
      if (denom > 0.0) {
        EXPECT_NEAR(a1->at(0, 1) / denom,
                    static_cast<double>(counts[1]) / counts[2], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffinitySweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace hmmm
