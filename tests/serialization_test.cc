#include "common/serialization.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hmmm {
namespace {

TEST(BinaryRoundTripTest, Scalars) {
  BinaryWriter w;
  w.WriteUint8(200);
  w.WriteUint32(0xDEADBEEF);
  w.WriteUint64(0x0123456789ABCDEFull);
  w.WriteInt32(-42);
  w.WriteInt64(-1234567890123ll);
  w.WriteDouble(3.14159);

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadUint8(), 200);
  EXPECT_EQ(*r.ReadUint32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadUint64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadInt32(), -42);
  EXPECT_EQ(*r.ReadInt64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryRoundTripTest, Varints) {
  BinaryWriter w;
  const std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ull << 20,
                                        1ull << 40, ~0ull};
  for (uint64_t v : values) w.WriteVarint(v);
  BinaryReader r(w.buffer());
  for (uint64_t v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryRoundTripTest, StringsAndVectors) {
  BinaryWriter w;
  w.WriteString("corner_kick");
  w.WriteString("");
  w.WriteDoubleVector({1.5, -2.5, 0.0});
  w.WriteInt32Vector({1, -2, 3});

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadString(), "corner_kick");
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadDoubleVector(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(*r.ReadInt32Vector(), (std::vector<int32_t>{1, -2, 3}));
}

TEST(BinaryRoundTripTest, Matrix) {
  BinaryWriter w;
  auto m = *Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  w.WriteMatrix(m);
  BinaryReader r(w.buffer());
  auto got = r.ReadMatrix();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got == m);
}

TEST(BinaryReaderTest, TruncationIsDataLoss) {
  BinaryWriter w;
  w.WriteDouble(1.0);
  const std::string truncated = w.buffer().substr(0, 3);
  BinaryReader r(truncated);
  EXPECT_EQ(r.ReadDouble().status().code(), StatusCode::kDataLoss);
}

TEST(BinaryReaderTest, TruncatedStringIsDataLoss) {
  BinaryWriter w;
  w.WriteString("hello world");
  BinaryReader r(std::string_view(w.buffer()).substr(0, 4));
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kDataLoss);
}

TEST(BinaryReaderTest, HugeVectorLengthRejectedWithoutAllocation) {
  // A crafted length that would overflow size*8 or exhaust memory must be
  // rejected up front.
  BinaryWriter w;
  w.WriteVarint(1ull << 61);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadDoubleVector().status().code(), StatusCode::kDataLoss);
  BinaryReader r2(w.buffer());
  EXPECT_EQ(r2.ReadInt32Vector().status().code(), StatusCode::kDataLoss);
}

TEST(BinaryReaderTest, HugeMatrixDimensionsRejected) {
  // rows * cols wraps around 2^64 with these values; the reader must not
  // be fooled into a small allocation followed by out-of-bounds writes.
  BinaryWriter w;
  w.WriteVarint(1ull << 40);
  w.WriteVarint(1ull << 40);
  w.WriteDoubleVector(std::vector<double>(1024, 1.0));  // some payload
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadMatrix().status().code(), StatusCode::kDataLoss);

  BinaryWriter w2;
  w2.WriteVarint(100);
  w2.WriteVarint(100);  // claims 10000 doubles, provides none
  BinaryReader r2(w2.buffer());
  EXPECT_EQ(r2.ReadMatrix().status().code(), StatusCode::kDataLoss);
}

TEST(BinaryReaderTest, SkipAdvancesAndBoundsChecks) {
  BinaryWriter w;
  w.WriteUint32(7);
  w.WriteUint32(9);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(*r.ReadUint32(), 9u);
  EXPECT_FALSE(r.Skip(1).ok());
}

TEST(BinaryReaderTest, VarintOverflowDetected) {
  std::string bad(11, '\xFF');
  BinaryReader r(bad);
  EXPECT_EQ(r.ReadVarint().status().code(), StatusCode::kDataLoss);
}

TEST(ChecksumEnvelopeTest, RoundTrip) {
  const std::string payload = "some model bytes";
  const std::string wrapped = WrapChecksummed(0xABCD1234, 3, payload);
  uint32_t version = 0;
  auto unwrapped = UnwrapChecksummed(0xABCD1234, wrapped, &version);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(*unwrapped, payload);
  EXPECT_EQ(version, 3u);
}

TEST(ChecksumEnvelopeTest, WrongMagicRejected) {
  const std::string wrapped = WrapChecksummed(0x1111, 1, "x");
  EXPECT_EQ(UnwrapChecksummed(0x2222, wrapped).status().code(),
            StatusCode::kDataLoss);
}

TEST(ChecksumEnvelopeTest, CorruptionDetected) {
  std::string wrapped = WrapChecksummed(0x1111, 1, "important payload");
  wrapped[wrapped.size() - 3] ^= 0x40;  // flip a payload bit
  EXPECT_EQ(UnwrapChecksummed(0x1111, wrapped).status().code(),
            StatusCode::kDataLoss);
}

TEST(ChecksumEnvelopeTest, TruncationDetected) {
  const std::string wrapped = WrapChecksummed(0x1111, 1, "important payload");
  EXPECT_FALSE(
      UnwrapChecksummed(0x1111, std::string_view(wrapped).substr(0, wrapped.size() - 2))
          .ok());
}

TEST(FileIoTest, WriteAndReadBack) {
  const std::string path = testing::TempPath("hmmm_serialization_test.bin");
  const std::string contents = std::string("abc\0def", 7);
  ASSERT_TRUE(WriteFile(path, contents).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, contents);
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  // Distinct from kIOError so callers (and the transient-IO retry loop)
  // can tell "nothing there" from "device misbehaving".
  EXPECT_EQ(ReadFileToString("/nonexistent/dir/file.bin").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace hmmm
