#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/catalog_partition.h"
#include "api/video_database.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "coordinator/coordinator_service.h"
#include "server/query_server.h"
#include "server/shard_map.h"
#include "test_util.h"

// Chaos coverage for the replicated fan-out path: the armed
// `service.slow_temporal_query` point stalls a replica for 200ms inside
// its TemporalQuery handler, letting a coordinator's hedge delay elapse
// for real — the hedge must win the race and the ranking must not move.
// Probes only exist with -DHMMM_FAULT_INJECTION=ON; otherwise each test
// skips (but still compiles).
#ifdef HMMM_FAULT_INJECTION
#define SKIP_WITHOUT_FAULT_INJECTION() (void)0
#else
#define SKIP_WITHOUT_FAULT_INJECTION() \
  GTEST_SKIP() << "built without HMMM_FAULT_INJECTION"
#endif

namespace hmmm {
namespace {

using ::hmmm::testing::GeneratedSoccerCatalog;

struct ChaosDeployment {
  std::unique_ptr<VideoDatabase> global;
  std::vector<std::unique_ptr<VideoDatabase>> dbs;
  std::vector<std::vector<std::unique_ptr<QueryServer>>> servers;
  ShardMap map;

  ~ChaosDeployment() {
    for (auto& replicas : servers) {
      for (auto& server : replicas) {
        if (server != nullptr) server->Shutdown();
      }
    }
  }
};

std::unique_ptr<ChaosDeployment> MakeChaosDeployment(int num_shards,
                                                     int replicas) {
  auto deployment = std::make_unique<ChaosDeployment>();
  StatusOr<VideoDatabase> global =
      VideoDatabase::Create(GeneratedSoccerCatalog(3, 8));
  HMMM_CHECK(global.ok());
  deployment->global =
      std::make_unique<VideoDatabase>(std::move(global).value());
  deployment->servers.resize(num_shards);
  for (int r = 0; r < replicas; ++r) {
    StatusOr<std::vector<CatalogShard>> shards =
        PartitionForServing(deployment->global->catalog(),
                            deployment->global->model(), num_shards);
    HMMM_CHECK(shards.ok());
    if (r == 0) {
      deployment->map =
          ShardMapFromPartition(*shards, deployment->global->catalog());
    }
    for (int s = 0; s < num_shards; ++s) {
      CatalogShard& shard = (*shards)[s];
      StatusOr<VideoDatabase> db = VideoDatabase::CreateWithModel(
          std::move(shard.catalog), std::move(shard.model));
      HMMM_CHECK(db.ok());
      deployment->dbs.push_back(
          std::make_unique<VideoDatabase>(std::move(db).value()));
      QueryServerOptions options;
      options.port = 0;
      auto server = std::make_unique<QueryServer>(
          deployment->dbs.back().get(), options);
      HMMM_CHECK(server->Start().ok());
      const std::string endpoint =
          "127.0.0.1:" + std::to_string(server->port());
      deployment->servers[s].push_back(std::move(server));
      if (r == 0) {
        deployment->map.shards[s].endpoint = endpoint;
      } else {
        deployment->map.shards[s].replica_endpoints.push_back(endpoint);
      }
    }
  }
  return deployment;
}

double MetricValue(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::atof(text.c_str() + pos + needle.size());
    }
    pos += needle.size();
  }
  return -1.0;
}

class FailoverChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FailoverChaosTest, HedgeAbsorbsAnInjectedSlowReplica) {
  SKIP_WITHOUT_FAULT_INJECTION();
  std::unique_ptr<ChaosDeployment> deployment = MakeChaosDeployment(2, 2);
  CoordinatorOptions options;
  options.health_probe_interval = std::chrono::milliseconds(0);
  options.hedge_delay_ms = 25;
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());

  // The first replica handler to reach the point stalls 200ms — far past
  // the 25ms hedge delay — so the hedge fires and its answer (fault
  // exhausted by then, max_fires=1) must win the race.
  FaultPointConfig fault;
  fault.after_hits = 0;
  fault.max_fires = 1;
  FaultInjector::Instance().Arm("service.slow_temporal_query", fault);

  const auto start = std::chrono::steady_clock::now();
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ASSERT_EQ(response->results.size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(response->results[i].video, (*reference)[i].video);
    EXPECT_EQ(response->results[i].score, (*reference)[i].score);
  }
  // The merged answer must not have waited out the 200ms stall.
  EXPECT_LT(elapsed_ms, 180.0);

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_hedges_total"),
            1.0);
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_hedge_wins_total"),
            1.0);
}

TEST_F(FailoverChaosTest, SlowReplicaWithoutHedgingOnlyCostsLatency) {
  SKIP_WITHOUT_FAULT_INJECTION();
  std::unique_ptr<ChaosDeployment> deployment = MakeChaosDeployment(2, 2);
  CoordinatorOptions options;
  options.health_probe_interval = std::chrono::milliseconds(0);
  // hedge_delay_ms stays -1: the stall is simply waited out, proving the
  // determinism contract never depends on hedging being on.
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());

  FaultPointConfig fault;
  fault.after_hits = 0;
  fault.max_fires = 1;
  FaultInjector::Instance().Arm("service.slow_temporal_query", fault);

  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ASSERT_EQ(response->results.size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(response->results[i].video, (*reference)[i].video);
    EXPECT_EQ(response->results[i].score, (*reference)[i].score);
  }

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_hedges_total"),
            0.0);
}

TEST_F(FailoverChaosTest, AdaptiveHedgeDelayKicksInAtTheObservedTail) {
  SKIP_WITHOUT_FAULT_INJECTION();
  std::unique_ptr<ChaosDeployment> deployment = MakeChaosDeployment(2, 2);
  CoordinatorOptions options;
  options.health_probe_interval = std::chrono::milliseconds(0);
  options.hedge_delay_ms = 0;       // adaptive: max(min_delay, p99)
  options.hedge_min_delay_ms = 15;  // floor while the window is empty
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());

  // Warm the latency window with fast queries, then stall one replica:
  // the adaptive delay (p99 of the fast history, floored at 15ms) fires
  // well before the 200ms fault resolves.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*coordinator)->TemporalQuery(request, nullptr).ok());
  }
  FaultPointConfig fault;
  fault.after_hits = 0;
  fault.max_fires = 1;
  FaultInjector::Instance().Arm("service.slow_temporal_query", fault);

  const auto start = std::chrono::steady_clock::now();
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ASSERT_EQ(response->results.size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(response->results[i].video, (*reference)[i].video);
    EXPECT_EQ(response->results[i].score, (*reference)[i].score);
  }
  EXPECT_LT(elapsed_ms, 180.0);

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_hedges_total"),
            1.0);
}

}  // namespace
}  // namespace hmmm
