#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "core/model_builder.h"
#include "snapshot/snapshot_format.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "test_util.h"

namespace hmmm {
namespace {

// Corruption corpus for the mmap snapshot loader: every test takes a
// healthy image, damages one structural invariant, re-seals whatever
// checksums the damage is supposed to hide behind, and asserts the open
// path classifies it as kDataLoss (corruption — never retried) rather
// than kIOError (transient) or a crash.

uint32_t GetU32(const std::string& image, size_t offset) {
  uint32_t v;
  std::memcpy(&v, image.data() + offset, sizeof(v));
  return v;
}

uint64_t GetU64(const std::string& image, size_t offset) {
  uint64_t v;
  std::memcpy(&v, image.data() + offset, sizeof(v));
  return v;
}

void PutU32(std::string* image, size_t offset, uint32_t v) {
  std::memcpy(image->data() + offset, &v, sizeof(v));
}

void PutU64(std::string* image, size_t offset, uint64_t v) {
  std::memcpy(image->data() + offset, &v, sizeof(v));
}

// Re-seals the header checksum after a deliberate header edit, so the
// edited field itself — not the checksum — is what the reader trips on.
void SealHeader(std::string* image) {
  PutU32(image, 52, Crc32c(image->data(), 52));
}

// Re-seals the section-table checksum (and the header over it).
void SealTable(std::string* image) {
  const uint32_t count = GetU32(*image, 32);
  PutU32(image, 36,
         Crc32c(image->data() + kSnapshotHeaderBytes,
                static_cast<size_t>(count) * kSnapshotSectionEntryBytes));
  SealHeader(image);
}

struct TableEntry {
  size_t table_pos = 0;  // byte offset of this entry within the image
  uint32_t id = 0;
  uint32_t flags = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

std::vector<TableEntry> ParseTable(const std::string& image) {
  const uint32_t count = GetU32(image, 32);
  std::vector<TableEntry> entries(count);
  for (uint32_t i = 0; i < count; ++i) {
    TableEntry& e = entries[i];
    e.table_pos = kSnapshotHeaderBytes + i * kSnapshotSectionEntryBytes;
    e.id = GetU32(image, e.table_pos);
    e.flags = GetU32(image, e.table_pos + 4);
    e.offset = GetU64(image, e.table_pos + 8);
    e.length = GetU64(image, e.table_pos + 16);
  }
  return entries;
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VideoCatalog catalog = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog).Build();
    ASSERT_TRUE(model.ok()) << model.status();
    image_ = BuildSnapshotImage(*model, catalog);
    path_ = testing::TempPath("snapshot_corruption.hmms");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Writes damaged bytes verbatim (no tmp+rename — the damage IS the
  // point) and returns the open status under the given verification mode.
  Status OpenStatus(const std::string& bytes, bool verify = false) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    SnapshotOptions options;
    options.verify_section_crcs = verify;
    return SnapshotReader::Open(path_, options).status();
  }

  std::string image_;
  std::string path_;
};

TEST_F(SnapshotCorruptionTest, HealthyImageOpensUnderFullVerification) {
  const Status status = OpenStatus(image_, /*verify=*/true);
  EXPECT_TRUE(status.ok()) << status;
}

TEST_F(SnapshotCorruptionTest, BadMagicIsDataLoss) {
  std::string bad = image_;
  PutU32(&bad, 0, 0xDEADBEEF);
  const Status status = OpenStatus(bad);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("magic"), std::string::npos) << status;
}

TEST_F(SnapshotCorruptionTest, FutureVersionIsDataLossNotAGuess) {
  std::string bad = image_;
  PutU32(&bad, 4, kSnapshotVersion + 1);
  SealHeader(&bad);
  const Status status = OpenStatus(bad);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("version"), std::string::npos) << status;
}

TEST_F(SnapshotCorruptionTest, HeaderBitFlipIsCaughtByTheHeaderChecksum) {
  std::string bad = image_;
  bad[16] ^= 0x01;  // generation field, checksum NOT re-sealed
  const Status status = OpenStatus(bad);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("header checksum"), std::string::npos)
      << status;
}

TEST_F(SnapshotCorruptionTest, TruncatedTailIsDataLoss) {
  std::string bad = image_.substr(0, image_.size() - 7);
  const Status status = OpenStatus(bad);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("truncated"), std::string::npos) << status;
}

TEST_F(SnapshotCorruptionTest, FileShorterThanAHeaderIsDataLoss) {
  const Status status = OpenStatus("HMMS");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotCorruptionTest, MissingFileIsNotFoundNotDataLoss) {
  const Status status =
      SnapshotReader::Open(testing::TempPath("no_such_snapshot.hmms"))
          .status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(SnapshotCorruptionTest, TableBitFlipIsCaughtByTheTableChecksum) {
  std::string bad = image_;
  bad[kSnapshotHeaderBytes + 16] ^= 0x40;  // first entry's length field
  const Status status = OpenStatus(bad);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("section table checksum"),
            std::string::npos)
      << status;
}

TEST_F(SnapshotCorruptionTest, PayloadBitFlipInEverySectionFailsVerifiedOpen) {
  const std::vector<TableEntry> entries = ParseTable(image_);
  ASSERT_FALSE(entries.empty());
  for (const TableEntry& entry : entries) {
    if (entry.length == 0) continue;
    SCOPED_TRACE("section " + std::to_string(entry.id));
    std::string bad = image_;
    bad[entry.offset + entry.length / 2] ^= 0x10;
    const Status status = OpenStatus(bad, /*verify=*/true);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss);
    EXPECT_NE(status.message().find("checksum"), std::string::npos) << status;
  }
}

TEST_F(SnapshotCorruptionTest, LazyOpenSkipsPayloadChecksums) {
  // With verification off, open touches only the header and table — a
  // payload flip surfaces later (if at all), which is the documented
  // cost of O(1) opens. A flipped feature double must not block open.
  const std::vector<TableEntry> entries = ParseTable(image_);
  for (const TableEntry& entry : entries) {
    if (entry.id != kSectionRawFeatures) continue;
    std::string bad = image_;
    bad[entry.offset + 8] ^= 0x10;
    const Status status = OpenStatus(bad, /*verify=*/false);
    EXPECT_TRUE(status.ok()) << status;
    return;
  }
  FAIL() << "no raw-features section in image";
}

TEST_F(SnapshotCorruptionTest, MisalignedMatrixSectionIsDataLoss) {
  const std::vector<TableEntry> entries = ParseTable(image_);
  for (const TableEntry& entry : entries) {
    if ((entry.flags & kSnapshotSectionAligned) == 0) continue;
    std::string bad = image_;
    PutU64(&bad, entry.table_pos + 8, entry.offset + 8);
    SealTable(&bad);
    const Status status = OpenStatus(bad);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss);
    EXPECT_NE(status.message().find("misaligned"), std::string::npos)
        << status;
    return;
  }
  FAIL() << "no aligned section in image";
}

TEST_F(SnapshotCorruptionTest, SectionBeyondTheFileIsDataLoss) {
  const std::vector<TableEntry> entries = ParseTable(image_);
  ASSERT_FALSE(entries.empty());
  std::string bad = image_;
  PutU64(&bad, entries[0].table_pos + 16,
         static_cast<uint64_t>(image_.size()) * 2);
  SealTable(&bad);
  const Status status = OpenStatus(bad);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("out of bounds"), std::string::npos)
      << status;
}

TEST_F(SnapshotCorruptionTest, ShotTableOrderViolationIsDataLossAtBuild) {
  // Swap two shots' video ids in the packed table: the per-video
  // index_in_video replay no longer lines up, and BuildCatalog — not the
  // open — reports corruption. Seal the section CRC so only the semantic
  // check can object.
  const std::vector<TableEntry> entries = ParseTable(image_);
  for (const TableEntry& entry : entries) {
    if (entry.id != kSectionShotTable) continue;
    ASSERT_GE(entry.length, 64u);
    std::string bad = image_;
    PutU32(&bad, entry.offset + 16, 1);  // shot 0 now claims video 1
    PutU32(&bad, entry.table_pos + 24,
           Crc32c(bad.data() + entry.offset, entry.length));
    SealTable(&bad);
    ASSERT_TRUE(OpenStatus(bad, /*verify=*/true).ok());
    SnapshotOptions options;
    auto reader = SnapshotReader::Open(path_, options);
    ASSERT_TRUE(reader.ok()) << reader.status();
    const Status built = (*reader)->BuildCatalog().status();
    EXPECT_EQ(built.code(), StatusCode::kDataLoss) << built;
    return;
  }
  FAIL() << "no shot-table section in image";
}

}  // namespace
}  // namespace hmmm
