#include "query/matn.h"

#include <gtest/gtest.h>

#include "media/event_types.h"

namespace hmmm {
namespace {

TEST(MatnGraphTest, AddStatesAndArcs) {
  MatnGraph graph;
  const int s0 = graph.AddState();
  const int s1 = graph.AddState();
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  ASSERT_TRUE(graph.AddArc(s0, s1, {2}).ok());
  EXPECT_EQ(graph.num_states(), 2);
  ASSERT_EQ(graph.arcs().size(), 1u);
  EXPECT_EQ(graph.arcs()[0].all_of, (std::vector<EventId>{2}));
}

TEST(MatnGraphTest, ArcValidation) {
  MatnGraph graph;
  graph.AddState();
  graph.AddState();
  EXPECT_FALSE(graph.AddArc(0, 5, {1}).ok());   // missing state
  EXPECT_FALSE(graph.AddArc(1, 0, {1}).ok());   // backwards
  EXPECT_FALSE(graph.AddArc(0, 0, {1}).ok());   // self loop
  EXPECT_FALSE(graph.AddArc(0, 1, {}).ok());    // empty label
}

TEST(MatnGraphTest, ArcsFromFiltersBySource) {
  MatnGraph graph;
  graph.AddState();
  graph.AddState();
  graph.AddState();
  ASSERT_TRUE(graph.AddArc(0, 1, {1}).ok());
  ASSERT_TRUE(graph.AddArc(0, 1, {2}).ok());
  ASSERT_TRUE(graph.AddArc(1, 2, {3}).ok());
  EXPECT_EQ(graph.ArcsFrom(0).size(), 2u);
  EXPECT_EQ(graph.ArcsFrom(1).size(), 1u);
  EXPECT_TRUE(graph.ArcsFrom(2).empty());
}

TEST(MatnGraphTest, LinearChainDetection) {
  MatnGraph chain;
  chain.AddState();
  chain.AddState();
  chain.AddState();
  ASSERT_TRUE(chain.AddArc(0, 1, {1}).ok());
  ASSERT_TRUE(chain.AddArc(1, 2, {2}).ok());
  EXPECT_TRUE(chain.IsLinearChain());

  MatnGraph skipping;
  skipping.AddState();
  skipping.AddState();
  skipping.AddState();
  ASSERT_TRUE(skipping.AddArc(0, 2, {1}).ok());  // skips a state
  EXPECT_FALSE(skipping.IsLinearChain());

  MatnGraph gap;
  gap.AddState();
  gap.AddState();
  gap.AddState();
  ASSERT_TRUE(gap.AddArc(0, 1, {1}).ok());  // pair (1,2) uncovered
  EXPECT_FALSE(gap.IsLinearChain());

  MatnGraph trivial;
  trivial.AddState();
  EXPECT_FALSE(trivial.IsLinearChain());
}

TEST(MatnGraphTest, ToStringNamesEvents) {
  const EventVocabulary vocab = SoccerEvents();
  MatnGraph graph;
  graph.AddState();
  graph.AddState();
  ASSERT_TRUE(graph.AddArc(0, 1, {2, 0}).ok());  // free_kick & goal
  const std::string text = graph.ToString(vocab);
  EXPECT_NE(text.find("free_kick&goal"), std::string::npos);
  EXPECT_NE(text.find("S0"), std::string::npos);
  EXPECT_NE(text.find("S1"), std::string::npos);
}

}  // namespace
}  // namespace hmmm
