#include "retrieval/scorer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model_builder.h"
#include "test_util.h"

namespace hmmm {
namespace {

class ScorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(ScorerTest, MatchingShotScoresHigherThanMismatched) {
  SimilarityScorer scorer(model_);
  // Global state 0 = shot 0 (free_kick). free_kick id = 2, goal id = 0.
  const double to_free_kick = scorer.EventSimilarity(0, 2);
  const double to_goal = scorer.EventSimilarity(0, 0);
  EXPECT_GT(to_free_kick, to_goal);
}

TEST_F(ScorerTest, Equation14HandComputation) {
  // Build a tiny dedicated model for exact arithmetic: two states, two
  // features, one event.
  VideoCatalog catalog(SoccerEvents(), 2);
  const VideoId v = catalog.AddVideo("v");
  ASSERT_TRUE(catalog.AddShot(v, 0, 1, {0}, {1.0, 0.0}).ok());
  ASSERT_TRUE(catalog.AddShot(v, 1, 2, {0}, {0.0, 1.0}).ok());
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  // B1 rows: state0 = (1,0), state1 = (0,1). Centroid for event 0 =
  // (0.5, 0.5). P12 uniform = 1/2 per feature.
  // sim(s0, e0) = 0.5*(1-0.5)/0.5 + 0.5*(1-0.5)/0.5 = 1.0.
  SimilarityScorer scorer(*model);
  EXPECT_NEAR(scorer.EventSimilarity(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(scorer.EventSimilarity(1, 0), 1.0, 1e-12);
}

TEST_F(ScorerTest, ZeroCentroidGuarded) {
  SimilarityScorer scorer(model_);
  // red_card (id 6) has no shots: its centroid row is all zeros; the
  // epsilon guard must keep the similarity finite.
  const double sim = scorer.EventSimilarity(0, 6);
  EXPECT_TRUE(std::isfinite(sim));
}

TEST_F(ScorerTest, FeatureSubsetRestrictsEvaluation) {
  ScorerOptions options;
  options.feature_subset = {0};  // only the goal-indicator feature
  SimilarityScorer scorer(model_, options);
  // State for shot 4 (goal) vs state for shot 0 (free_kick), to goal.
  const int goal_state = model_.GlobalStateOf(4);
  const int fk_state = model_.GlobalStateOf(0);
  EXPECT_GT(scorer.EventSimilarity(goal_state, 0),
            scorer.EventSimilarity(fk_state, 0));
}

TEST_F(ScorerTest, StepSimilarityBestAlternative) {
  SimilarityScorer scorer(model_);
  const int fk_state = model_.GlobalStateOf(0);
  PatternStep step;
  step.alternatives = {{0}, {2}};  // goal OR free_kick
  const double step_sim = scorer.StepSimilarity(fk_state, step);
  EXPECT_NEAR(step_sim, scorer.EventSimilarity(fk_state, 2), 1e-12);
}

TEST_F(ScorerTest, StepSimilarityConjunctiveMean) {
  SimilarityScorer scorer(model_);
  const int state = model_.GlobalStateOf(2);  // free_kick + goal shot
  PatternStep step;
  step.alternatives = {{2, 0}};
  const double expected = 0.5 * (scorer.EventSimilarity(state, 2) +
                                 scorer.EventSimilarity(state, 0));
  EXPECT_NEAR(scorer.StepSimilarity(state, step), expected, 1e-12);
}

TEST_F(ScorerTest, EmptyStepGivesZero) {
  SimilarityScorer scorer(model_);
  PatternStep step;  // no alternatives
  EXPECT_DOUBLE_EQ(scorer.StepSimilarity(0, step), 0.0);
}

TEST_F(ScorerTest, EvaluationCounterTracksCalls) {
  SimilarityScorer scorer(model_);
  EXPECT_EQ(scorer.evaluations(), 0u);
  scorer.EventSimilarity(0, 0);
  scorer.EventSimilarity(0, 1);
  EXPECT_EQ(scorer.evaluations(), 2u);
  scorer.ResetEvaluationCount();
  EXPECT_EQ(scorer.evaluations(), 0u);
}

}  // namespace
}  // namespace hmmm
