#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hmmm {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(4), 4);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, MakeThreadPoolSkipsSerialCounts) {
  EXPECT_EQ(MakeThreadPool(1), nullptr);
  auto pool = MakeThreadPool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->size(), 3);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  constexpr int kTasks = 64;
  std::mutex mutex;
  std::condition_variable done;
  int completed = 0;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        std::lock_guard<std::mutex> lock(mutex);
        if (++completed == kTasks) done.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return completed == kTasks; });
  }
  EXPECT_EQ(completed, kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&completed] { ++completed; });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(completed.load(), 32);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  constexpr size_t kN = 1000;
  ThreadPool pool(4);
  std::vector<int> counts(kN, 0);
  // Chunks are claimed via a unique fetch_add, so each index is touched
  // by exactly one worker and the unsynchronized increment is safe.
  pool.ParallelFor(kN, 7, [&](int /*worker*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++counts[i];
  });
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0),
            static_cast<int>(kN));
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForWorkerIdsAreDense) {
  ThreadPool pool(3);
  std::atomic<int> max_worker{-1};
  pool.ParallelFor(100, 1, [&](int worker, size_t, size_t) {
    int seen = max_worker.load();
    while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_GE(max_worker.load(), 0);
  EXPECT_LT(max_worker.load(), pool.size());
}

TEST(ThreadPoolTest, ParallelForEdgeCases) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](int, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // n == 0 is a no-op

  // Grain larger than n: one chunk spanning the whole range.
  std::vector<std::pair<size_t, size_t>> ranges;
  std::mutex mutex;
  pool.ParallelFor(3, 100, [&](int, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    ranges.emplace_back(begin, end);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 3}));

  // Grain 0 is clamped to 1.
  std::atomic<size_t> visited{0};
  pool.ParallelFor(5, 0, [&](int, size_t begin, size_t end) {
    visited += end - begin;
  });
  EXPECT_EQ(visited.load(), 5u);
}

TEST(ThreadPoolTest, ParallelForOnSingleWorkerPool) {
  ThreadPool pool(1);
  std::vector<int> counts(100, 0);
  pool.ParallelFor(100, 10, [&](int worker, size_t begin, size_t end) {
    EXPECT_EQ(worker, 0);
    for (size_t i = begin; i < end; ++i) ++counts[i];
  });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, ParallelForStressPartialSums) {
  ThreadPool pool(8);
  constexpr size_t kN = 20000;
  std::vector<long long> partial(static_cast<size_t>(pool.size()), 0);
  pool.ParallelFor(kN, 1, [&](int worker, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      partial[static_cast<size_t>(worker)] += static_cast<long long>(i);
    }
  });
  const long long total =
      std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillThePool) {
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.Submit([] { throw std::runtime_error("fire-and-forget boom"); });
  }
  // Every worker must still be alive: 64 follow-up tasks all complete.
  std::mutex mutex;
  std::condition_variable done;
  int completed = 0;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mutex);
      if (++completed == kTasks) done.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return completed == kTasks; });
  }
  EXPECT_EQ(completed, kTasks);
  // Workers bump their counters after the task body returns, so the wakeup
  // from the last completing task can arrive before the final increments;
  // wait for the counters to settle rather than read them once. Hanging
  // here (ctest timeout) would itself be the failure this test guards.
  while (pool.stats().task_exceptions < 4u ||
         pool.stats().tasks_executed < static_cast<uint64_t>(kTasks + 4)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.stats().task_exceptions, 4u);
}

TEST(ThreadPoolTest, SubmitWithFutureDeliversResultAndException) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto ok = pool.SubmitWithFuture([&ran] { ran = true; });
  EXPECT_NO_THROW(ok.get());
  EXPECT_TRUE(ran.load());

  auto bad = pool.SubmitWithFuture(
      [] { throw std::invalid_argument("typed boom"); });
  try {
    bad.get();
    FAIL() << "expected the task's exception through the future";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "typed boom");
  }
  // A future-delivered exception is not a dropped one.
  EXPECT_EQ(pool.stats().task_exceptions, 0u);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstBodyException) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  try {
    pool.ParallelFor(100, 1, [&](int, size_t begin, size_t) {
      if (begin == 5) throw std::runtime_error("body boom at 5");
      visited.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "body boom at 5");
  }
  // The pool is intact and immediately reusable after the failure.
  std::atomic<size_t> count{0};
  pool.ParallelFor(50, 3, [&](int, size_t begin, size_t end) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<size_t> visited{0};
    pool.ParallelFor(100, 3, [&](int, size_t begin, size_t end) {
      visited += end - begin;
    });
    EXPECT_EQ(visited.load(), 100u);
  }
}

}  // namespace
}  // namespace hmmm
