#include "api/catalog_partition.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "api/video_database.h"
#include "coordinator/coordinator_service.h"
#include "test_util.h"

namespace hmmm {
namespace {

using ::hmmm::testing::GeneratedSoccerCatalog;
using ::hmmm::testing::SmallSoccerCatalog;

/// One shared archive for the whole suite: model building over the
/// generated corpus is the expensive part.
const VideoDatabase& GlobalDb() {
  static VideoDatabase* db = [] {
    StatusOr<VideoDatabase> built =
        VideoDatabase::Create(GeneratedSoccerCatalog(3, 8));
    HMMM_CHECK(built.ok());
    return new VideoDatabase(std::move(built).value());
  }();
  return *db;
}

TEST(CatalogPartitionTest, SplitsVideosEvenly) {
  StatusOr<std::vector<CatalogShard>> shards =
      PartitionForServing(GlobalDb().catalog(), GlobalDb().model(), 3);
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  ASSERT_EQ(shards->size(), 3u);
  // 8 videos over 3 shards: 3 + 3 + 2, contiguous from 0.
  EXPECT_EQ((*shards)[0].video_begin, 0);
  EXPECT_EQ((*shards)[0].video_end, 3);
  EXPECT_EQ((*shards)[1].video_begin, 3);
  EXPECT_EQ((*shards)[1].video_end, 6);
  EXPECT_EQ((*shards)[2].video_begin, 6);
  EXPECT_EQ((*shards)[2].video_end, 8);
  size_t total_shots = 0;
  for (const CatalogShard& shard : *shards) {
    EXPECT_EQ(shard.catalog.num_videos(),
              static_cast<size_t>(shard.video_end - shard.video_begin));
    EXPECT_EQ(shard.catalog.num_shots(), shard.shot_to_global.size());
    EXPECT_TRUE(shard.model.Validate().ok());
    total_shots += shard.catalog.num_shots();
  }
  EXPECT_EQ(total_shots, GlobalDb().catalog().num_shots());
}

TEST(CatalogPartitionTest, ShotMapsPartitionTheGlobalShots) {
  StatusOr<std::vector<CatalogShard>> shards =
      PartitionForServing(GlobalDb().catalog(), GlobalDb().model(), 4);
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  std::vector<int> owners(GlobalDb().catalog().num_shots(), 0);
  for (const CatalogShard& shard : *shards) {
    for (ShotId global : shard.shot_to_global) {
      ASSERT_GE(global, 0);
      ASSERT_LT(static_cast<size_t>(global), owners.size());
      ++owners[static_cast<size_t>(global)];
    }
  }
  for (size_t shot = 0; shot < owners.size(); ++shot) {
    EXPECT_EQ(owners[shot], 1) << "global shot " << shot;
  }
}

TEST(CatalogPartitionTest, RejectsBadShardCounts) {
  EXPECT_FALSE(
      PartitionForServing(GlobalDb().catalog(), GlobalDb().model(), 0).ok());
  EXPECT_FALSE(
      PartitionForServing(GlobalDb().catalog(), GlobalDb().model(), -2).ok());
  // More shards than videos: some shard would be empty.
  EXPECT_FALSE(
      PartitionForServing(GlobalDb().catalog(), GlobalDb().model(), 9).ok());
}

TEST(CatalogPartitionTest, RejectsModelCatalogMismatch) {
  StatusOr<VideoDatabase> other = VideoDatabase::Create(SmallSoccerCatalog());
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(
      PartitionForServing(GlobalDb().catalog(), other->model(), 2).ok());
}

TEST(CatalogPartitionTest, SingleShardIsTheWholeArchive) {
  StatusOr<std::vector<CatalogShard>> shards =
      PartitionForServing(GlobalDb().catalog(), GlobalDb().model(), 1);
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  ASSERT_EQ(shards->size(), 1u);
  const CatalogShard& shard = (*shards)[0];
  EXPECT_EQ(shard.catalog.num_videos(), GlobalDb().catalog().num_videos());
  EXPECT_EQ(shard.catalog.num_shots(), GlobalDb().catalog().num_shots());
  // Re-adding in global order keeps shot ids literally identical.
  for (size_t shot = 0; shot < shard.shot_to_global.size(); ++shot) {
    EXPECT_EQ(shard.shot_to_global[shot], static_cast<ShotId>(shot));
  }
}

/// The core serving property: per-video scores computed against a slice
/// are bit-identical to the full archive's, so merging per-shard
/// rankings under (score desc, global video asc) reproduces the global
/// ranking exactly — for every shard count.
TEST(CatalogPartitionTest, ShardQueriesMergeToGlobalRanking) {
  const std::vector<std::string> queries = {
      "free_kick ; goal", "goal", "corner_kick ; goal", "free_kick"};
  StatusOr<std::vector<RetrievedPattern>> reference_or =
      GlobalDb().Query(queries[0]);
  ASSERT_TRUE(reference_or.ok());

  for (int num_shards : {1, 2, 4}) {
    StatusOr<std::vector<CatalogShard>> shards = PartitionForServing(
        GlobalDb().catalog(), GlobalDb().model(), num_shards);
    ASSERT_TRUE(shards.ok()) << shards.status().ToString();
    std::vector<VideoDatabase> shard_dbs;
    for (CatalogShard& shard : *shards) {
      StatusOr<VideoDatabase> db = VideoDatabase::CreateWithModel(
          std::move(shard.catalog), std::move(shard.model));
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      shard_dbs.push_back(std::move(db).value());
    }

    for (const std::string& query : queries) {
      StatusOr<std::vector<RetrievedPattern>> reference =
          GlobalDb().Query(query);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();

      std::vector<std::vector<RetrievedPattern>> per_shard;
      for (size_t s = 0; s < shard_dbs.size(); ++s) {
        StatusOr<std::vector<RetrievedPattern>> local =
            shard_dbs[s].Query(query);
        ASSERT_TRUE(local.ok()) << local.status().ToString();
        for (RetrievedPattern& pattern : *local) {
          pattern.video += (*shards)[s].video_begin;
          for (ShotId& shot : pattern.shots) {
            shot = (*shards)[s]
                       .shot_to_global[static_cast<size_t>(shot)];
          }
        }
        per_shard.push_back(std::move(local).value());
      }
      const std::vector<RetrievedPattern> merged =
          MergeRankedResults(std::move(per_shard), 20);

      ASSERT_EQ(merged.size(), reference->size())
          << num_shards << " shards, query '" << query << "'";
      for (size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].video, (*reference)[i].video) << "rank " << i;
        EXPECT_EQ(merged[i].shots, (*reference)[i].shots) << "rank " << i;
        // Bit-identical, not approximately equal: the slice preserves the
        // Eq.-3 normalizer and every model row the score reads.
        EXPECT_EQ(merged[i].score, (*reference)[i].score) << "rank " << i;
        EXPECT_EQ(merged[i].edge_weights, (*reference)[i].edge_weights)
            << "rank " << i;
      }
    }
  }
}

TEST(CatalogPartitionTest, ShardQbeMergesToGlobalRanking) {
  const std::vector<double> example =
      testing::FeatureVector(GlobalDb().catalog().num_features(), 0.1,
                             {0, 2}, 0.9);
  StatusOr<std::vector<QbeResult>> reference =
      GlobalDb().QueryByExample(example);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (int num_shards : {2, 4}) {
    StatusOr<std::vector<CatalogShard>> shards = PartitionForServing(
        GlobalDb().catalog(), GlobalDb().model(), num_shards);
    ASSERT_TRUE(shards.ok());
    std::vector<std::vector<QbeResult>> per_shard;
    for (CatalogShard& shard : *shards) {
      StatusOr<VideoDatabase> db = VideoDatabase::CreateWithModel(
          std::move(shard.catalog), std::move(shard.model));
      ASSERT_TRUE(db.ok());
      StatusOr<std::vector<QbeResult>> local = db->QueryByExample(example);
      ASSERT_TRUE(local.ok()) << local.status().ToString();
      for (QbeResult& result : *local) {
        result.shot = shard.shot_to_global[static_cast<size_t>(result.shot)];
      }
      per_shard.push_back(std::move(local).value());
    }
    const std::vector<QbeResult> merged =
        MergeQbeResults(std::move(per_shard), 20);
    ASSERT_EQ(merged.size(), reference->size()) << num_shards << " shards";
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].shot, (*reference)[i].shot) << "rank " << i;
      EXPECT_EQ(merged[i].similarity, (*reference)[i].similarity)
          << "rank " << i;
    }
  }
}

}  // namespace
}  // namespace hmmm
