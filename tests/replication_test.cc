#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/catalog_partition.h"
#include "api/video_database.h"
#include "client/query_client.h"
#include "common/logging.h"
#include "coordinator/coordinator_service.h"
#include "coordinator/health_prober.h"
#include "server/query_server.h"
#include "server/query_service.h"
#include "server/shard_map.h"
#include "test_util.h"

// Replicated serving: every shard range is served by R replicas holding
// identical PartitionForServing slices. These tests prove the PR-9
// robustness contract — a coordinator survives the death of any single
// replica with NO degradation and byte-identical rankings, circuit
// breakers stop paying for known-dead endpoints, hedged reads cut tail
// latency without touching determinism, and a shard map hot-swaps under
// live load behind a strictly-monotone epoch fence.

namespace hmmm {
namespace {

using ::hmmm::testing::GeneratedSoccerCatalog;

// -- FailoverOrder / HealthProber units -----------------------------------

TEST(FailoverOrderTest, PrefersUpThenSuspectThenDown) {
  using H = EndpointHealth;
  EXPECT_EQ(FailoverOrder({H::kUp, H::kUp}), (std::vector<int>{0, 1}));
  EXPECT_EQ(FailoverOrder({H::kDown, H::kUp, H::kSuspect}),
            (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(FailoverOrder({H::kSuspect, H::kDown, H::kUp}),
            (std::vector<int>{2, 0, 1}));
  // A health view that wrote off every replica still routes: kDown
  // demotes, never black-holes.
  EXPECT_EQ(FailoverOrder({H::kDown, H::kDown}), (std::vector<int>{0, 1}));
  EXPECT_EQ(FailoverOrder({}), std::vector<int>{});
}

class FakeFleet {
 public:
  explicit FakeFleet(std::vector<std::string> endpoints) {
    for (auto& endpoint : endpoints) alive_[std::move(endpoint)] = true;
  }

  HealthProber::EndpointLister Lister() {
    return [this] {
      std::vector<std::string> endpoints;
      for (const auto& [endpoint, unused] : alive_) {
        endpoints.push_back(endpoint);
      }
      return endpoints;
    };
  }
  HealthProber::ProbeFn Probe() {
    return [this](const std::string& endpoint) {
      return alive_.at(endpoint) ? Status::OK()
                                 : Status::IOError("connection refused");
    };
  }

  void SetAlive(const std::string& endpoint, bool alive) {
    alive_.at(endpoint) = alive;
  }
  void Remove(const std::string& endpoint) { alive_.erase(endpoint); }

 private:
  std::map<std::string, bool> alive_;
};

TEST(HealthProberTest, ConsecutiveThresholdsDriveTransitions) {
  FakeFleet fleet({"a:1", "b:1"});
  HealthProber::Options options;
  options.failures_to_down = 2;
  options.successes_to_up = 2;
  std::vector<std::pair<std::string, EndpointHealth>> transitions;
  HealthProber prober(options, fleet.Lister(), fleet.Probe(),
                      [&](const std::string& endpoint, EndpointHealth health) {
                        transitions.emplace_back(endpoint, health);
                      });

  // Never-probed endpoints are optimistically routable.
  EXPECT_EQ(prober.HealthOf("a:1"), EndpointHealth::kUp);

  fleet.SetAlive("a:1", false);
  prober.ProbeOnce();
  EXPECT_EQ(prober.HealthOf("a:1"), EndpointHealth::kSuspect);
  prober.ProbeOnce();
  EXPECT_EQ(prober.HealthOf("a:1"), EndpointHealth::kDown);
  EXPECT_EQ(prober.HealthOf("b:1"), EndpointHealth::kUp);

  // Recovery needs successes_to_up consecutive OK probes.
  fleet.SetAlive("a:1", true);
  prober.ProbeOnce();
  EXPECT_EQ(prober.HealthOf("a:1"), EndpointHealth::kDown);
  prober.ProbeOnce();
  EXPECT_EQ(prober.HealthOf("a:1"), EndpointHealth::kUp);

  const std::vector<std::pair<std::string, EndpointHealth>> expected = {
      {"a:1", EndpointHealth::kSuspect},
      {"a:1", EndpointHealth::kDown},
      {"a:1", EndpointHealth::kUp},
  };
  EXPECT_EQ(transitions, expected);
}

TEST(HealthProberTest, FlappingFailureResetsTheSuccessStreak) {
  FakeFleet fleet({"a:1"});
  HealthProber::Options options;
  options.failures_to_down = 1;
  options.successes_to_up = 2;
  HealthProber prober(options, fleet.Lister(), fleet.Probe());

  fleet.SetAlive("a:1", false);
  prober.ProbeOnce();
  ASSERT_EQ(prober.HealthOf("a:1"), EndpointHealth::kDown);

  fleet.SetAlive("a:1", true);
  prober.ProbeOnce();  // one success of the two required
  fleet.SetAlive("a:1", false);
  prober.ProbeOnce();  // flap: streak resets
  fleet.SetAlive("a:1", true);
  prober.ProbeOnce();
  EXPECT_EQ(prober.HealthOf("a:1"), EndpointHealth::kDown);
  prober.ProbeOnce();
  EXPECT_EQ(prober.HealthOf("a:1"), EndpointHealth::kUp);
}

TEST(HealthProberTest, ForgetsEndpointsDroppedByTheLister) {
  FakeFleet fleet({"a:1", "b:1"});
  HealthProber::Options options;
  options.failures_to_down = 1;
  HealthProber prober(options, fleet.Lister(), fleet.Probe());

  fleet.SetAlive("b:1", false);
  prober.ProbeOnce();
  ASSERT_EQ(prober.HealthOf("b:1"), EndpointHealth::kDown);

  // A map reload that drops b:1 must erase its verdict: if it ever comes
  // back under the same name it starts fresh (optimistically kUp).
  fleet.Remove("b:1");
  prober.ProbeOnce();
  EXPECT_EQ(prober.Snapshot().size(), 1u);
  EXPECT_EQ(prober.HealthOf("b:1"), EndpointHealth::kUp);
}

TEST(HealthProberTest, BackgroundThreadCyclesAndStops) {
  FakeFleet fleet({"a:1"});
  HealthProber::Options options;
  options.probe_interval = std::chrono::milliseconds(5);
  HealthProber prober(options, fleet.Lister(), fleet.Probe());
  prober.Start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (prober.cycles_completed() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(prober.cycles_completed(), 3u);
  prober.Stop();
  const uint64_t at_stop = prober.cycles_completed();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(prober.cycles_completed(), at_stop);
}

// -- Replicated loopback deployments --------------------------------------

/// A live replicated deployment: the global archive and each of its N
/// ranges served by R QueryServers over identical slices (the partition
/// is deterministic, so re-partitioning yields byte-identical replicas).
struct ReplicatedDeployment {
  std::unique_ptr<VideoDatabase> global;
  std::vector<std::unique_ptr<VideoDatabase>> dbs;
  // servers[s][r]: replica r of shard s (r == 0 is the map's primary).
  std::vector<std::vector<std::unique_ptr<QueryServer>>> servers;
  ShardMap map;

  ~ReplicatedDeployment() {
    for (auto& replicas : servers) {
      for (auto& server : replicas) {
        if (server != nullptr) server->Shutdown();
      }
    }
  }

  std::string Endpoint(int s, int r) const {
    return "127.0.0.1:" + std::to_string(servers[s][r]->port());
  }
};

std::unique_ptr<ReplicatedDeployment> MakeReplicatedDeployment(int num_shards,
                                                               int replicas) {
  auto deployment = std::make_unique<ReplicatedDeployment>();
  StatusOr<VideoDatabase> global =
      VideoDatabase::Create(GeneratedSoccerCatalog(3, 8));
  HMMM_CHECK(global.ok());
  deployment->global =
      std::make_unique<VideoDatabase>(std::move(global).value());
  deployment->servers.resize(num_shards);

  for (int r = 0; r < replicas; ++r) {
    StatusOr<std::vector<CatalogShard>> shards =
        PartitionForServing(deployment->global->catalog(),
                            deployment->global->model(), num_shards);
    HMMM_CHECK(shards.ok());
    if (r == 0) {
      deployment->map =
          ShardMapFromPartition(*shards, deployment->global->catalog());
    }
    for (int s = 0; s < num_shards; ++s) {
      CatalogShard& shard = (*shards)[s];
      StatusOr<VideoDatabase> db = VideoDatabase::CreateWithModel(
          std::move(shard.catalog), std::move(shard.model));
      HMMM_CHECK(db.ok());
      deployment->dbs.push_back(
          std::make_unique<VideoDatabase>(std::move(db).value()));
      QueryServerOptions options;
      options.port = 0;
      auto server = std::make_unique<QueryServer>(
          deployment->dbs.back().get(), options);
      HMMM_CHECK(server->Start().ok());
      deployment->servers[s].push_back(std::move(server));
      if (r == 0) {
        deployment->map.shards[s].endpoint = deployment->Endpoint(s, 0);
      } else {
        deployment->map.shards[s].replica_endpoints.push_back(
            deployment->Endpoint(s, r));
      }
    }
  }
  return deployment;
}

/// Coordinator options for deterministic unit-style tests: no active
/// prober thread (health stays optimistically kUp; breakers alone gate
/// admission).
CoordinatorOptions QuietOptions() {
  CoordinatorOptions options;
  options.health_probe_interval = std::chrono::milliseconds(0);
  return options;
}

void ExpectSameRanking(const std::vector<RetrievedPattern>& actual,
                       const std::vector<RetrievedPattern>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].video, expected[i].video) << "rank " << i;
    EXPECT_EQ(actual[i].shots, expected[i].shots) << "rank " << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
    EXPECT_EQ(actual[i].edge_weights, expected[i].edge_weights)
        << "rank " << i;
  }
}

/// First sample of `series` in a Prometheus exposition (-1 if absent).
/// `series` must be the full series name including any label set.
double MetricValue(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Anchor at a line start so `# HELP <name> ...` comments don't match.
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::atof(text.c_str() + pos + needle.size());
    }
    pos += needle.size();
  }
  return -1.0;
}

TEST(ReplicationTest, ReplicatedDeploymentMatchesSingleProcess) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ExpectSameRanking(response->results, *reference);
}

TEST(ReplicationTest, PrimaryDeathFailsOverByteIdentical) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());

  // Kill shard 0's primary. The replica serves an identical slice, so
  // the fan-out must answer with NO degradation and the exact ranking.
  deployment->servers[0][0]->Shutdown();
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  EXPECT_EQ(response->videos_skipped, 0u);
  ExpectSameRanking(response->results, *reference);

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_failovers_total"),
            1.0);
  EXPECT_EQ(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_queries_degraded_total"),
            0.0);
}

TEST(ReplicationTest, EveryReplicaDownDegradesTheRangeOnly) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  const size_t killed_share = (*coordinator)->router().VideosOwnedBy(0);

  deployment->servers[0][0]->Shutdown();
  deployment->servers[0][1]->Shutdown();

  TemporalQueryRequest request;
  request.text = "goal";
  request.budget_ms = 5000;
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->videos_skipped, killed_share);
  EXPECT_FALSE(response->results.empty());
}

TEST(ReplicationTest, QbeFailsOverByteIdentical) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  QbeRequest request;
  request.features = testing::FeatureVector(
      deployment->global->catalog().num_features(), 0.1, {0, 2}, 0.9);
  StatusOr<std::vector<QbeResult>> reference =
      deployment->global->QueryByExample(request.features);
  ASSERT_TRUE(reference.ok());

  deployment->servers[1][0]->Shutdown();
  StatusOr<QbeResponse> response = (*coordinator)->QueryByExample(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->results.size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(response->results[i].shot, (*reference)[i].shot);
    EXPECT_EQ(response->results[i].similarity, (*reference)[i].similarity);
  }
}

TEST(ReplicationTest, BreakerStopsPayingForADeadPrimaryThenRecovers) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  CoordinatorOptions options = QuietOptions();
  options.breaker.failure_threshold = 1;
  options.breaker.success_threshold = 1;
  options.breaker.open_cooldown = std::chrono::milliseconds(200);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());

  const uint16_t primary_port = deployment->servers[0][0]->port();
  deployment->servers[0][0]->Shutdown();

  // Query 1 pays the failed attempt once and trips the breaker.
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ExpectSameRanking(response->results, *reference);

  // Query 2 hits the Open breaker: the dead endpoint is skipped without
  // an attempt, the answer stays byte-identical.
  response = (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ExpectSameRanking(response->results, *reference);

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_breaker_rejections_total"),
            1.0);
  EXPECT_EQ(
      MetricValue(metrics->prometheus_text,
                  "hmmm_coordinator_breaker_state{shard=\"0\",replica=\"0\"}"),
      1.0);  // open

  // Resurrect the primary on its old port (SO_REUSEADDR) and let the
  // cooldown elapse: the next query's half-open probe succeeds and the
  // breaker closes.
  QueryServerOptions server_options;
  server_options.port = primary_port;
  QueryServer revived(deployment->dbs[0].get(), server_options);
  ASSERT_TRUE(revived.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  response = (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ExpectSameRanking(response->results, *reference);

  metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(
      MetricValue(metrics->prometheus_text,
                  "hmmm_coordinator_breaker_state{shard=\"0\",replica=\"0\"}"),
      0.0);  // closed again
  revived.Shutdown();
}

TEST(ReplicationTest, ActiveProberMarksDeadReplicaDown) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  CoordinatorOptions options;
  options.health_probe_interval = std::chrono::milliseconds(20);
  options.health_probe_timeout = std::chrono::milliseconds(200);
  options.health_failures_to_down = 2;
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  HealthProber* prober = (*coordinator)->health_prober();
  ASSERT_NE(prober, nullptr);

  const std::string dead = deployment->Endpoint(0, 0);
  deployment->servers[0][0]->Shutdown();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (prober->HealthOf(dead) != EndpointHealth::kDown &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(prober->HealthOf(dead), EndpointHealth::kDown);

  // With the verdict in, routing prefers the replica outright — no
  // failed attempt, no failover, still byte-identical.
  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ExpectSameRanking(response->results, *reference);
}

// -- Hedged reads ---------------------------------------------------------

/// VideoDatabaseService that stalls every TemporalQuery — a "slow
/// replica" for hedging tests without fault-injection builds.
class SlowTemporalService : public VideoDatabaseService {
 public:
  SlowTemporalService(VideoDatabase* db, std::chrono::milliseconds delay)
      : VideoDatabaseService(db), delay_(delay) {}

  StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request,
      const CancellationToken* shutdown) override {
    std::this_thread::sleep_for(delay_);
    return VideoDatabaseService::TemporalQuery(request, shutdown);
  }

 private:
  std::chrono::milliseconds delay_;
};

TEST(ReplicationTest, HedgedReadWinsAgainstAStalledPrimary) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);

  // Re-point shard 0's primary at a deliberately slow server over the
  // same slice; the original fast primary becomes the hedge target.
  StatusOr<std::vector<CatalogShard>> shards = PartitionForServing(
      deployment->global->catalog(), deployment->global->model(), 2);
  ASSERT_TRUE(shards.ok());
  StatusOr<VideoDatabase> slow_db = VideoDatabase::CreateWithModel(
      std::move((*shards)[0].catalog), std::move((*shards)[0].model));
  ASSERT_TRUE(slow_db.ok());
  SlowTemporalService slow_service(&*slow_db,
                                   std::chrono::milliseconds(400));
  QueryServerOptions server_options;
  server_options.port = 0;
  QueryServer slow_server(&slow_service, server_options);
  ASSERT_TRUE(slow_server.Start().ok());
  ShardMap map = deployment->map;
  map.shards[0].replica_endpoints = {map.shards[0].endpoint};
  map.shards[0].endpoint =
      "127.0.0.1:" + std::to_string(slow_server.port());

  CoordinatorOptions options = QuietOptions();
  options.hedge_delay_ms = 20;  // fixed: hedge 20ms after the scatter
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(map, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());

  const auto start = std::chrono::steady_clock::now();
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
  ExpectSameRanking(response->results, *reference);
  // The hedge answered long before the primary's 400ms stall resolved.
  EXPECT_LT(elapsed_ms, 350.0);

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_hedges_total"),
            1.0);
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_hedge_wins_total"),
            1.0);
  // Tear down the coordinator before the slow server: its destructor
  // drains the losing hedge attempt still parked in the 400ms stall.
  coordinator->reset();
  slow_server.Shutdown();
}

// -- Hot shard-map reload -------------------------------------------------

TEST(ReplicationTest, ApplyShardMapEnforcesTheEpochFence) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  ASSERT_EQ((*coordinator)->map_epoch(), 0u);

  // Same epoch: rejected (a replayed reload must be a no-op).
  ShardMap stale = deployment->map;
  StatusOr<ReloadShardMapResponse> rejected =
      (*coordinator)->ApplyShardMap(stale);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*coordinator)->map_epoch(), 0u);

  // Strictly newer epoch: applied atomically.
  ShardMap fresh = deployment->map;
  fresh.epoch = 3;
  StatusOr<ReloadShardMapResponse> applied =
      (*coordinator)->ApplyShardMap(fresh);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->epoch, 3u);
  EXPECT_EQ(applied->num_shards, 2u);
  EXPECT_EQ((*coordinator)->map_epoch(), 3u);

  // Now 3 is the fence.
  fresh.epoch = 2;
  EXPECT_FALSE((*coordinator)->ApplyShardMap(fresh).ok());

  // A structurally invalid map is rejected regardless of epoch.
  ShardMap broken = deployment->map;
  broken.epoch = 10;
  broken.shards[0].endpoint.clear();
  EXPECT_FALSE((*coordinator)->ApplyShardMap(broken).ok());
  EXPECT_EQ((*coordinator)->map_epoch(), 3u);

  TemporalQueryRequest request;
  request.text = "goal";
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
}

TEST(ReplicationTest, ReloadSwapsReplicaOrderUnderLiveLoad) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest request;
  request.text = "free_kick ; goal";
  StatusOr<std::vector<RetrievedPattern>> reference =
      deployment->global->Query(request.text);
  ASSERT_TRUE(reference.ok());

  // Hammer queries while maps hot-swap underneath; every response must
  // stay non-degraded and byte-identical (replicas serve the same
  // slice, so even mid-swap routing cannot change the ranking).
  std::atomic<bool> stop{false};
  std::atomic<int> queries{0};
  std::atomic<int> violations{0};
  std::thread hammer([&] {
    while (!stop.load()) {
      StatusOr<TemporalQueryResponse> response =
          (*coordinator)->TemporalQuery(request, nullptr);
      if (!response.ok() || response->degraded ||
          response->results.size() != reference->size()) {
        ++violations;
      } else {
        for (size_t i = 0; i < reference->size(); ++i) {
          if (response->results[i].video != (*reference)[i].video ||
              response->results[i].score != (*reference)[i].score) {
            ++violations;
            break;
          }
        }
      }
      ++queries;
    }
  });

  for (uint64_t epoch = 1; epoch <= 6; ++epoch) {
    ShardMap swapped = deployment->map;
    swapped.epoch = epoch;
    if (epoch % 2 == 1) {
      // Swap primary and replica of both shards.
      for (auto& entry : swapped.shards) {
        std::swap(entry.endpoint, entry.replica_endpoints[0]);
      }
    }
    StatusOr<ReloadShardMapResponse> applied =
        (*coordinator)->ApplyShardMap(swapped);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  stop.store(true);
  hammer.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(queries.load(), 0);
  EXPECT_EQ((*coordinator)->map_epoch(), 6u);

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_map_reloads_total"),
            6.0);
  EXPECT_EQ(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_map_epoch"),
            6.0);
}

TEST(ReplicationTest, WireReloadRoundTripAndLeafRejection) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 1);
  StatusOr<std::unique_ptr<CoordinatorServer>> server =
      CoordinatorServer::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->Start().ok());

  QueryClientOptions client_options;
  client_options.port = (*server)->port();
  QueryClient client(client_options);

  // Stale epoch over the wire: a typed kFailedPrecondition, not a
  // transport error (and NOT retried — the reload is non-idempotent).
  ReloadShardMapRequest reload;
  reload.map_blob = SerializeShardMap(deployment->map);
  StatusOr<ReloadShardMapResponse> rejected = client.ReloadShardMap(reload);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);

  ShardMap fresh = deployment->map;
  fresh.epoch = 7;
  reload.map_blob = SerializeShardMap(fresh);
  StatusOr<ReloadShardMapResponse> applied = client.ReloadShardMap(reload);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->epoch, 7u);
  EXPECT_EQ(applied->num_shards, 2u);
  EXPECT_EQ((*server)->service().map_epoch(), 7u);

  // A corrupt blob is rejected without touching the live map.
  reload.map_blob[reload.map_blob.size() / 2] ^= 0x20;
  EXPECT_FALSE(client.ReloadShardMap(reload).ok());
  EXPECT_EQ((*server)->service().map_epoch(), 7u);

  // Leaf shard servers answer the v3 request with kUnimplemented.
  QueryClientOptions leaf_options;
  leaf_options.port = deployment->servers[0][0]->port();
  QueryClient leaf(leaf_options);
  ReloadShardMapRequest leaf_reload;
  leaf_reload.map_blob = SerializeShardMap(fresh);
  StatusOr<ReloadShardMapResponse> unimplemented =
      leaf.ReloadShardMap(leaf_reload);
  EXPECT_FALSE(unimplemented.ok());
  EXPECT_EQ(unimplemented.status().code(), StatusCode::kUnimplemented);

  (*server)->Shutdown();
}

TEST(ReplicationTest, V1MapServesWithoutReplicas) {
  // A legacy (v1) map blob — no replicas, no epoch — must still drive a
  // working deployment: single-endpoint ranges, epoch fence at 0.
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 1);
  StatusOr<ShardMap> reloaded = DeserializeShardMap(
      SerializeShardMap(deployment->map, /*version=*/1));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->epoch, 0u);

  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(*reloaded, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  TemporalQueryRequest request;
  request.text = "goal";
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(request, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->degraded);
}

TEST(ReplicationTest, TrainBroadcastsToEveryReplica) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  StatusOr<TrainResponse> trained = (*coordinator)->Train();
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_EQ(trained->shards_failed, 0u);
  // Both replicas of both ranges were driven through training.
  EXPECT_EQ(trained->shards_attempted, 4u);

  // With one replica dead, training still succeeds on the survivors but
  // the partial failure is reported, not swallowed.
  deployment->servers[1][1]->Shutdown();
  trained = (*coordinator)->Train();
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_EQ(trained->shards_attempted, 4u);
  EXPECT_EQ(trained->shards_failed, 1u);

  StatusOr<MetricsResponse> metrics = (*coordinator)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(MetricValue(metrics->prometheus_text,
                        "hmmm_coordinator_train_shard_failures_total"),
            1.0);
}

TEST(ReplicationTest, MarkPositiveKeepsReplicasInLockstep) {
  std::unique_ptr<ReplicatedDeployment> deployment =
      MakeReplicatedDeployment(2, 2);
  StatusOr<std::unique_ptr<CoordinatorService>> coordinator =
      CoordinatorService::Create(deployment->map, QuietOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  TemporalQueryRequest query;
  query.text = "free_kick ; goal";
  StatusOr<TemporalQueryResponse> response =
      (*coordinator)->TemporalQuery(query, nullptr);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response->results.empty());

  MarkPositiveRequest feedback;
  feedback.pattern = response->results.front();
  StatusOr<MarkPositiveResponse> marked =
      (*coordinator)->MarkPositive(feedback);
  ASSERT_TRUE(marked.ok()) << marked.status().ToString();

  // The same access-log mutation must have landed on BOTH replicas of
  // the owning range — otherwise a later failover would change Train's
  // outcome. Train on each replica directly and compare health.
  const int shard = (*coordinator)->router().ShardOfVideo(
      feedback.pattern.video);
  ASSERT_GE(shard, 0);
  for (int r = 0; r < 2; ++r) {
    QueryClientOptions leaf_options;
    leaf_options.port = deployment->servers[shard][r]->port();
    QueryClient leaf(leaf_options);
    StatusOr<HealthResponse> health = leaf.Health();
    ASSERT_TRUE(health.ok()) << "replica " << r;
  }

  // With a dead replica the broadcast surfaces the transport failure —
  // the operator must learn the replicas may have diverged.
  deployment->servers[shard][1]->Shutdown();
  StatusOr<MarkPositiveResponse> partial =
      (*coordinator)->MarkPositive(feedback);
  EXPECT_FALSE(partial.ok());
}

}  // namespace
}  // namespace hmmm
