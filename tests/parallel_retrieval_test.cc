#include <gtest/gtest.h>

#include "core/category_level.h"
#include "core/model_builder.h"
#include "query/translator.h"
#include "retrieval/engine.h"
#include "retrieval/three_level.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

/// Ranked results must be byte-identical across thread counts: exact
/// score equality (no tolerance), same shots, videos and edge weights.
void ExpectIdenticalResults(const std::vector<RetrievedPattern>& expected,
                            const std::vector<RetrievedPattern>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].shots, actual[i].shots) << "rank " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << "rank " << i;
    EXPECT_EQ(expected[i].video, actual[i].video) << "rank " << i;
    EXPECT_EQ(expected[i].edge_weights, actual[i].edge_weights)
        << "rank " << i;
    EXPECT_EQ(expected[i].crosses_videos, actual[i].crosses_videos)
        << "rank " << i;
  }
}

void ExpectIdenticalStats(const RetrievalStats& expected,
                          const RetrievalStats& actual) {
  EXPECT_EQ(expected.videos_considered, actual.videos_considered);
  EXPECT_EQ(expected.states_visited, actual.states_visited);
  EXPECT_EQ(expected.sim_evaluations, actual.sim_evaluations);
  EXPECT_EQ(expected.candidates_scored, actual.candidates_scored);
  EXPECT_EQ(expected.beam_pruned, actual.beam_pruned);
  EXPECT_EQ(expected.annotated_fallbacks, actual.annotated_fallbacks);
  EXPECT_EQ(expected.truncated, actual.truncated);
}

class ParallelRetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::GeneratedSoccerCatalog(/*seed=*/11, /*num_videos=*/20);
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  std::vector<TemporalPattern> QuerySet() const {
    std::vector<TemporalPattern> patterns;
    patterns.push_back(TemporalPattern::FromEvents({0}));
    patterns.push_back(TemporalPattern::FromEvents({2, 0}));
    patterns.push_back(TemporalPattern::FromEvents({2, 0, 1}));
    auto compiled =
        CompileQuery("free_kick & goal ; corner_kick", catalog_.vocabulary());
    if (compiled.ok()) patterns.push_back(std::move(compiled).value());
    TemporalPattern gapped = TemporalPattern::FromEvents({2, 0});
    gapped.steps[1].max_gap = 3;
    patterns.push_back(std::move(gapped));
    return patterns;
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(ParallelRetrievalTest, IdenticalRankingAtEveryThreadCount) {
  for (const TemporalPattern& pattern : QuerySet()) {
    TraversalOptions serial_options;
    HmmmTraversal serial(model_, catalog_, serial_options);
    RetrievalStats serial_stats;
    auto reference = serial.Retrieve(pattern, &serial_stats);
    ASSERT_TRUE(reference.ok());
    ASSERT_FALSE(reference->empty());

    for (int threads : {2, 4, 8}) {
      TraversalOptions options;
      options.num_threads = threads;
      HmmmTraversal parallel(model_, catalog_, options);
      RetrievalStats stats;
      auto results = parallel.Retrieve(pattern, &stats);
      ASSERT_TRUE(results.ok()) << threads << " threads";
      ExpectIdenticalResults(*reference, *results);
      ExpectIdenticalStats(serial_stats, stats);
    }
  }
}

TEST_F(ParallelRetrievalTest, RepeatedParallelRunsAreStable) {
  // Dynamic scheduling shuffles which worker handles which video; the
  // merged ranking must not notice.
  TraversalOptions options;
  options.num_threads = 4;
  HmmmTraversal traversal(model_, catalog_, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto first = traversal.Retrieve(pattern);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 5; ++run) {
    auto again = traversal.Retrieve(pattern);
    ASSERT_TRUE(again.ok());
    ExpectIdenticalResults(*first, *again);
  }
}

TEST_F(ParallelRetrievalTest, BeamAndCrossVideoOptionsStayDeterministic) {
  TraversalOptions serial_options;
  serial_options.beam_width = 4;
  serial_options.cross_video = true;
  HmmmTraversal serial(model_, catalog_, serial_options);
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1, 3});
  auto reference = serial.Retrieve(pattern);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    TraversalOptions options = serial_options;
    options.num_threads = threads;
    HmmmTraversal parallel(model_, catalog_, options);
    auto results = parallel.Retrieve(pattern);
    ASSERT_TRUE(results.ok());
    ExpectIdenticalResults(*reference, *results);
  }
}

TEST_F(ParallelRetrievalTest, SmallMaxResultsExercisesHeapEviction) {
  TraversalOptions serial_options;
  serial_options.max_results = 3;
  HmmmTraversal serial(model_, catalog_, serial_options);
  const auto pattern = TemporalPattern::FromEvents({0});
  auto reference = serial.Retrieve(pattern);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->size(), 3u);

  TraversalOptions options = serial_options;
  options.num_threads = 8;
  HmmmTraversal parallel(model_, catalog_, options);
  auto results = parallel.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  ExpectIdenticalResults(*reference, *results);
}

TEST_F(ParallelRetrievalTest, ExternalPoolIsShared) {
  ThreadPool pool(4);
  TraversalOptions options;  // num_threads stays 1: the pool wins
  HmmmTraversal serial(model_, catalog_);
  HmmmTraversal shared(model_, catalog_, options, &pool);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto reference = serial.Retrieve(pattern);
  auto results = shared.Retrieve(pattern);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(results.ok());
  ExpectIdenticalResults(*reference, *results);
}

TEST_F(ParallelRetrievalTest, ThreeLevelTraversalMatchesSerial) {
  auto categories = BuildCategoryLevel(model_, {});
  ASSERT_TRUE(categories.ok());
  ThreeLevelTraversal serial(model_, catalog_, *categories);
  TraversalOptions options;
  options.num_threads = 4;
  ThreeLevelTraversal parallel(model_, catalog_, *categories, options);
  const auto pattern = TemporalPattern::FromEvents({2, 0});
  auto reference = serial.Retrieve(pattern);
  auto results = parallel.Retrieve(pattern);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(results.ok());
  ExpectIdenticalResults(*reference, *results);
}

TEST_F(ParallelRetrievalTest, EngineHonorsNumThreads) {
  TraversalOptions options;
  options.num_threads = 4;
  auto serial_engine = RetrievalEngine::Create(catalog_);
  auto parallel_engine = RetrievalEngine::Create(catalog_, {}, options);
  ASSERT_TRUE(serial_engine.ok());
  ASSERT_TRUE(parallel_engine.ok());
  for (const char* query : {"goal", "free_kick ; goal"}) {
    auto reference = serial_engine->Query(query);
    auto results = parallel_engine->Query(query);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(results.ok());
    ExpectIdenticalResults(*reference, *results);
  }
}

TEST_F(ParallelRetrievalTest, TracingDoesNotPerturbTheRanking) {
  // The byte-identical guarantee must survive an attached QueryTrace:
  // span recording happens outside the score math.
  const auto pattern = TemporalPattern::FromEvents({2, 0, 1});
  HmmmTraversal plain(model_, catalog_);
  RetrievalStats plain_stats;
  auto reference = plain.Retrieve(pattern, &plain_stats);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());

  for (int threads : {1, 2, 4, 8}) {
    QueryTrace trace;
    TraversalOptions options;
    options.num_threads = threads;
    options.trace = &trace;
    HmmmTraversal traced(model_, catalog_, options);
    RetrievalStats stats;
    auto results = traced.Retrieve(pattern, &stats);
    ASSERT_TRUE(results.ok()) << threads << " threads";
    ExpectIdenticalResults(*reference, *results);
    ExpectIdenticalStats(plain_stats, stats);
    EXPECT_FALSE(trace.Spans().empty()) << threads << " threads";
  }
}

TEST_F(ParallelRetrievalTest, ErrorsPropagateUnchanged) {
  TraversalOptions options;
  options.num_threads = 4;
  HmmmTraversal traversal(model_, catalog_, options);
  EXPECT_FALSE(traversal.Retrieve(TemporalPattern{}).ok());
  EXPECT_FALSE(traversal.Retrieve(TemporalPattern::FromEvents({999})).ok());
}

}  // namespace
}  // namespace hmmm
