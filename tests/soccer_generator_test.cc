#include "media/soccer_generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hmmm {
namespace {

SoccerGeneratorConfig SmallConfig() {
  SoccerGeneratorConfig config;
  config.seed = 11;
  config.min_shots_per_video = 5;
  config.max_shots_per_video = 8;
  config.min_frames_per_shot = 8;
  config.max_frames_per_shot = 16;
  return config;
}

TEST(EventVocabularyTest, SoccerEventsRegistered) {
  const EventVocabulary vocab = SoccerEvents();
  EXPECT_EQ(vocab.size(), 8u);
  auto goal = vocab.Find(soccer::kGoal);
  ASSERT_TRUE(goal.ok());
  EXPECT_EQ(*goal, 0);
  EXPECT_EQ(vocab.Name(*goal), "goal");
  EXPECT_TRUE(vocab.Contains(soccer::kRedCard));
  EXPECT_FALSE(vocab.Find("slam_dunk").ok());
  EXPECT_EQ(vocab.Name(99), "<invalid>");
}

TEST(EventVocabularyTest, RegisterIsIdempotent) {
  EventVocabulary vocab;
  const EventId a = vocab.Register("x");
  const EventId b = vocab.Register("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(EventVocabularyTest, NewsEventsDistinct) {
  const EventVocabulary vocab = NewsEvents();
  EXPECT_EQ(vocab.size(), 6u);
  EXPECT_TRUE(vocab.Contains("anchor"));
}

TEST(SoccerGeneratorTest, DeterministicPerSeedAndIndex) {
  SoccerVideoGenerator generator(SmallConfig());
  const SyntheticVideo a = generator.Generate(3);
  const SyntheticVideo b = generator.Generate(3);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  EXPECT_EQ(a.shots.size(), b.shots.size());
  EXPECT_EQ(a.frames[5].pixels(), b.frames[5].pixels());
  EXPECT_EQ(a.audio.samples(), b.audio.samples());
}

TEST(SoccerGeneratorTest, DifferentIndicesDiffer) {
  SoccerVideoGenerator generator(SmallConfig());
  const SyntheticVideo a = generator.Generate(0);
  const SyntheticVideo b = generator.Generate(1);
  EXPECT_NE(a.frames.size(), 0u);
  // Either the shot structure or the pixels must differ.
  const bool differs = a.frames.size() != b.frames.size() ||
                       a.frames[0].pixels() != b.frames[0].pixels();
  EXPECT_TRUE(differs);
}

TEST(SoccerGeneratorTest, ShotsPartitionFrames) {
  SoccerVideoGenerator generator(SmallConfig());
  const SyntheticVideo video = generator.Generate(0);
  ASSERT_FALSE(video.shots.empty());
  EXPECT_EQ(video.shots.front().begin_frame, 0);
  for (size_t i = 1; i < video.shots.size(); ++i) {
    EXPECT_EQ(video.shots[i].begin_frame, video.shots[i - 1].end_frame);
  }
  EXPECT_EQ(video.shots.back().end_frame,
            static_cast<int>(video.frames.size()));
}

TEST(SoccerGeneratorTest, AudioCoversAllFrames) {
  SoccerVideoGenerator generator(SmallConfig());
  const SyntheticVideo video = generator.Generate(2);
  const double expected_samples =
      static_cast<double>(video.frames.size()) / video.fps *
      video.audio.sample_rate();
  EXPECT_NEAR(static_cast<double>(video.audio.size()), expected_samples,
              video.shots.size() * 2.0 + 2.0);
}

TEST(SoccerGeneratorTest, EventFractionRoughlyHonored) {
  SoccerGeneratorConfig config = SmallConfig();
  config.min_shots_per_video = 30;
  config.max_shots_per_video = 30;
  config.event_shot_fraction = 0.5;
  SoccerVideoGenerator generator(config);
  size_t event_shots = 0, total = 0;
  for (int v = 0; v < 10; ++v) {
    const SyntheticVideo video = generator.Generate(v);
    for (const ShotTruth& shot : video.shots) {
      ++total;
      if (!shot.events.empty()) ++event_shots;
    }
  }
  const double fraction = static_cast<double>(event_shots) /
                          static_cast<double>(total);
  EXPECT_NEAR(fraction, 0.5, 0.12);
}

TEST(SoccerGeneratorTest, LongShotsAreGrassy) {
  SoccerGeneratorConfig config = SmallConfig();
  config.min_shots_per_video = 20;
  config.max_shots_per_video = 20;
  SoccerVideoGenerator generator(config);
  double long_grass = 0.0, close_grass = 0.0;
  int long_count = 0, close_count = 0;
  for (int v = 0; v < 8; ++v) {
    const SyntheticVideo video = generator.Generate(v);
    for (const ShotTruth& shot : video.shots) {
      const double grass = GrassRatio(video.frames[static_cast<size_t>(shot.begin_frame)]);
      if (shot.scene_class == static_cast<int>(SceneClass::kLongShot)) {
        long_grass += grass;
        ++long_count;
      } else if (shot.scene_class == static_cast<int>(SceneClass::kCloseUp)) {
        close_grass += grass;
        ++close_count;
      }
    }
  }
  ASSERT_GT(long_count, 0);
  ASSERT_GT(close_count, 0);
  EXPECT_GT(long_grass / long_count, 2.0 * (close_grass / close_count));
}

TEST(SoccerGeneratorTest, EventProfilesMatchPaperIntuition) {
  // Goals are exciting; goal kicks are calm; cards are close-ups.
  const auto goal = SoccerVideoGenerator::ProfileFor(0);
  const auto goal_kick = SoccerVideoGenerator::ProfileFor(4);
  const auto yellow = SoccerVideoGenerator::ProfileFor(5);
  EXPECT_GT(goal.excitement, goal_kick.excitement);
  EXPECT_EQ(yellow.scene, SceneClass::kCloseUp);
  EXPECT_TRUE(yellow.whistle);
  EXPECT_FALSE(goal.whistle);
}

TEST(SoccerGeneratorTest, TransitionMatrixRowStochastic) {
  const auto t = SoccerVideoGenerator::EventTransitions();
  ASSERT_EQ(t.size(), 9u);  // 8 events + initial row
  for (const auto& row : t) {
    ASSERT_EQ(row.size(), 8u);
    double sum = 0.0;
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Free kicks set up goals more often than goals repeat.
  EXPECT_GT(t[2][0], t[0][0]);
}

TEST(SoccerGeneratorTest, WhistleEventsHaveHighFrequencyOnset) {
  // Render one video and check that a whistle shot's early audio has more
  // high-frequency content than a non-whistle shot's.
  SoccerGeneratorConfig config = SmallConfig();
  config.min_shots_per_video = 40;
  config.max_shots_per_video = 40;
  config.event_shot_fraction = 0.6;
  SoccerVideoGenerator generator(config);
  const SyntheticVideo video = generator.Generate(1);

  auto onset_energy = [&](const ShotTruth& shot) {
    const AudioClip clip =
        video.AudioForFrames(shot.begin_frame, shot.end_frame);
    double sum = 0.0;
    const size_t n = std::min<size_t>(clip.size(), 800);
    for (size_t i = 1; i < n; ++i) {
      const double d = clip.samples()[i] - clip.samples()[i - 1];
      sum += d * d;  // first-difference energy ~ high-frequency content
    }
    return sum;
  };

  double whistle_best = 0.0, plain_best = 0.0;
  for (const ShotTruth& shot : video.shots) {
    bool whistle = false;
    for (EventId e : shot.events) {
      whistle |= SoccerVideoGenerator::ProfileFor(e).whistle;
    }
    const double energy = onset_energy(shot);
    if (whistle) {
      whistle_best = std::max(whistle_best, energy);
    } else if (shot.events.empty()) {
      plain_best = std::max(plain_best, energy);
    }
  }
  if (whistle_best > 0.0 && plain_best > 0.0) {
    EXPECT_GT(whistle_best, plain_best);
  }
}

}  // namespace
}  // namespace hmmm
