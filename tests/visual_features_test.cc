#include "features/visual_features.h"

#include <gtest/gtest.h>

namespace hmmm {
namespace {

std::vector<Frame> StaticGreenShot(int frames, int w = 8, int h = 8) {
  return std::vector<Frame>(static_cast<size_t>(frames),
                            Frame(w, h, Rgb{40, 160, 40}));
}

TEST(VisualFeaturesTest, RejectsBadSpans) {
  const auto frames = StaticGreenShot(4);
  EXPECT_FALSE(ExtractVisualFeatures(frames, 0, 0).ok());
  EXPECT_FALSE(ExtractVisualFeatures(frames, -1, 2).ok());
  EXPECT_FALSE(ExtractVisualFeatures(frames, 0, 5).ok());
  EXPECT_FALSE(ExtractVisualFeatures(frames, 3, 2).ok());
}

TEST(VisualFeaturesTest, StaticGrassShot) {
  const auto frames = StaticGreenShot(6);
  auto features = ExtractVisualFeatures(frames, 0, 6);
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ(features->grass_ratio, 1.0);
  EXPECT_DOUBLE_EQ(features->pixel_change_percent, 0.0);
  EXPECT_DOUBLE_EQ(features->histo_change, 0.0);
  // A perfectly static frame is 100% background with zero variance.
  EXPECT_DOUBLE_EQ(features->background_var, 0.0);
  EXPECT_GT(features->background_mean, 0.0);
}

TEST(VisualFeaturesTest, SingleFrameShotHasNoInterFrameFeatures) {
  const auto frames = StaticGreenShot(3);
  auto features = ExtractVisualFeatures(frames, 1, 2);
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ(features->grass_ratio, 1.0);
  EXPECT_DOUBLE_EQ(features->pixel_change_percent, 0.0);
  EXPECT_DOUBLE_EQ(features->background_mean, 0.0);  // no frame pairs
}

TEST(VisualFeaturesTest, MotionRaisesPixelChange) {
  // A moving white block over grass.
  std::vector<Frame> frames;
  for (int f = 0; f < 6; ++f) {
    Frame frame(16, 8, Rgb{40, 160, 40});
    frame.FillRect(f * 2, 2, f * 2 + 3, 6, Rgb{250, 250, 250});
    frames.push_back(std::move(frame));
  }
  auto moving = ExtractVisualFeatures(frames, 0, 6);
  ASSERT_TRUE(moving.ok());
  auto still = ExtractVisualFeatures(StaticGreenShot(6, 16, 8), 0, 6);
  ASSERT_TRUE(still.ok());
  EXPECT_GT(moving->pixel_change_percent, still->pixel_change_percent);
  EXPECT_LT(moving->grass_ratio, 1.0);
}

TEST(VisualFeaturesTest, SceneChangeRaisesHistoChange) {
  std::vector<Frame> frames = StaticGreenShot(2);
  frames.push_back(Frame(8, 8, Rgb{200, 50, 50}));  // abrupt red frame
  auto features = ExtractVisualFeatures(frames, 0, 3);
  ASSERT_TRUE(features.ok());
  EXPECT_GT(features->histo_change, 1.0);
}

TEST(VisualFeaturesTest, BackgroundStatsTrackStablePixels) {
  // Left half static bright, right half flickers (never background).
  std::vector<Frame> frames;
  for (int f = 0; f < 4; ++f) {
    Frame frame(8, 8, Rgb{200, 200, 200});
    const auto v = static_cast<uint8_t>(f % 2 == 0 ? 30 : 220);
    frame.FillRect(4, 0, 8, 8, Rgb{v, v, v});
    frames.push_back(std::move(frame));
  }
  auto features = ExtractVisualFeatures(frames, 0, 4);
  ASSERT_TRUE(features.ok());
  // Background = the stable bright half: mean near 200/255, variance ~ 0.
  EXPECT_NEAR(features->background_mean, 200.0 / 255.0, 0.02);
  EXPECT_NEAR(features->background_var, 0.0, 1e-6);
}

}  // namespace
}  // namespace hmmm
