#include "core/generative.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/learner.h"
#include "core/model_builder.h"
#include "query/translator.h"
#include "retrieval/metrics.h"
#include "test_util.h"

namespace hmmm {
namespace {

class GenerativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
};

TEST_F(GenerativeTest, SequenceLogProbabilityHandComputed) {
  // video 0: pi1 uniform (1/3); A1 from the paper example.
  const LocalShotModel& local = model_.local(0);
  // P(s0 -> s1) = (1/3) * (2/3).
  EXPECT_NEAR(SequenceLogProbability(local, {0, 1}),
              std::log(1.0 / 3.0) + std::log(2.0 / 3.0), 1e-12);
  // P(s0 -> s2) = (1/3) * (1/3).
  EXPECT_NEAR(SequenceLogProbability(local, {0, 2}),
              std::log(1.0 / 9.0), 1e-12);
  // Backwards hop is impossible.
  EXPECT_TRUE(std::isinf(SequenceLogProbability(local, {2, 0})));
  // Out-of-range / empty.
  EXPECT_TRUE(std::isinf(SequenceLogProbability(local, {7})));
  EXPECT_TRUE(std::isinf(SequenceLogProbability(local, {})));
}

TEST_F(GenerativeTest, SampledPatternsAreValidWalks) {
  Rng rng(3);
  for (int round = 0; round < 50; ++round) {
    auto sample = SamplePattern(model_, rng, 2);
    ASSERT_TRUE(sample.ok()) << sample.status();
    ASSERT_EQ(sample->shots.size(), 2u);
    // Temporally increasing within one video, and finite probability.
    const ShotRecord& a = catalog_.shot(sample->shots[0]);
    const ShotRecord& b = catalog_.shot(sample->shots[1]);
    EXPECT_EQ(a.video_id, sample->video);
    EXPECT_EQ(b.video_id, sample->video);
    EXPECT_LT(a.index_in_video, b.index_in_video);
    EXPECT_TRUE(std::isfinite(sample->log_probability));
    EXPECT_LT(sample->log_probability, 1e-9);  // log p <= 0
  }
}

TEST_F(GenerativeTest, RejectsInfeasibleLengths) {
  Rng rng(5);
  EXPECT_FALSE(SamplePattern(model_, rng, 0).ok());
  // No video has 10 annotated shots.
  EXPECT_FALSE(SamplePattern(model_, rng, 10).ok());
}

TEST_F(GenerativeTest, SamplingFollowsLearnedAffinity) {
  // Sharpen video 0 toward the path s0 -> s2 and its Pi1 toward s0; the
  // sampler must now almost always produce that walk for video-0 draws.
  OfflineLearner learner;
  ASSERT_TRUE(learner.ApplyShotPatterns(model_, {{{0, 2}, 10.0}}).ok());
  ASSERT_TRUE(learner.ApplyVideoPatterns(model_, {{{0}, 10.0}}).ok());

  Rng rng(7);
  std::map<std::vector<int>, int> walks;
  for (int round = 0; round < 100; ++round) {
    auto sample = SamplePattern(model_, rng, 2);
    ASSERT_TRUE(sample.ok());
    if (sample->video == 0) ++walks[sample->local_states];
  }
  // Pi2 now prefers video 0 strongly, and within it the walk 0 -> 2.
  int video0_total = 0;
  for (const auto& [walk, count] : walks) video0_total += count;
  EXPECT_GT(video0_total, 60);
  const std::vector<int> dominant_walk = {0, 2};
  EXPECT_GT(walks[dominant_walk], video0_total * 8 / 10);
}

TEST_F(GenerativeTest, EventPatternsAreQueryable) {
  // Model-driven workload generation: sampled event patterns are valid
  // retrieval queries with at least one true occurrence (the sampled
  // shots themselves witness it).
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    auto events = SampleEventPattern(model_, catalog_, rng, 2);
    ASSERT_TRUE(events.ok()) << events.status();
    const auto pattern = TemporalPattern::FromEvents(*events);
    EXPECT_FALSE(EnumerateTrueOccurrences(catalog_, pattern).empty())
        << pattern.ToString(catalog_.vocabulary());
  }
}

TEST_F(GenerativeTest, GeneratedCorpusSampling) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(73, 10);
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  Rng rng(13);
  for (size_t length : {1u, 2u, 3u}) {
    auto sample = SamplePattern(*model, rng, length);
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(sample->shots.size(), length);
  }
}

}  // namespace
}  // namespace hmmm
