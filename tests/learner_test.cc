#include "core/learner.h"

#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "test_util.h"

namespace hmmm {
namespace {

HierarchicalModel BuildSmallModel(const VideoCatalog& catalog) {
  auto model = ModelBuilder(catalog).Build();
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(UniformFeatureWeightsTest, Equation7) {
  const Matrix p12 = UniformFeatureWeights(3, 4);
  EXPECT_EQ(p12.rows(), 3u);
  EXPECT_EQ(p12.cols(), 4u);
  for (size_t e = 0; e < 3; ++e) {
    for (size_t f = 0; f < 4; ++f) EXPECT_DOUBLE_EQ(p12.at(e, f), 0.25);
  }
  EXPECT_EQ(UniformFeatureWeights(2, 0).cols(), 0u);
}

TEST(ComputeFeatureWeightsTest, DownWeightsHighVarianceFeatures) {
  // Build a catalog where event 0's shots agree on feature 0 but vary on
  // feature 1: Eq. 10 must weight feature 0 higher.
  VideoCatalog catalog(SoccerEvents(), 2);
  const VideoId v = catalog.AddVideo("v");
  ASSERT_TRUE(catalog.AddShot(v, 0, 1, {0}, {0.80, 0.10}).ok());
  ASSERT_TRUE(catalog.AddShot(v, 1, 2, {0}, {0.80, 0.90}).ok());
  ASSERT_TRUE(catalog.AddShot(v, 2, 3, {0}, {0.81, 0.20}).ok());
  ASSERT_TRUE(catalog.AddShot(v, 3, 4, {0}, {0.79, 0.95}).ok());
  const HierarchicalModel model = BuildSmallModel(catalog);

  auto p12 = ComputeFeatureWeights(model, catalog);
  ASSERT_TRUE(p12.ok());
  EXPECT_GT(p12->at(0, 0), p12->at(0, 1));
  EXPECT_NEAR(p12->RowSum(0), 1.0, 1e-9);
}

TEST(ComputeFeatureWeightsTest, EventsWithFewShotsStayUniform) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const HierarchicalModel model = BuildSmallModel(catalog);
  auto p12 = ComputeFeatureWeights(model, catalog);
  ASSERT_TRUE(p12.ok());
  // corner_kick (id 1) occurs once: uniform row (Eq. 7 fallback).
  for (size_t f = 0; f < p12->cols(); ++f) {
    EXPECT_DOUBLE_EQ(p12->at(1, f), 1.0 / 8.0);
  }
}

TEST(ComputeFeatureWeightsTest, MinStddevGuard) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const HierarchicalModel model = BuildSmallModel(catalog);
  EXPECT_FALSE(ComputeFeatureWeights(model, catalog, 0.0).ok());
  EXPECT_FALSE(ComputeFeatureWeights(model, catalog, -1.0).ok());
}

TEST(ComputeEventCentroidsTest, Equation11Means) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  const HierarchicalModel model = BuildSmallModel(catalog);
  auto centroids = ComputeEventCentroids(model, catalog);
  ASSERT_TRUE(centroids.ok());
  // goal (id 0) is carried by states for shots 2, 4, 7 whose B1 feature-0
  // values are all 1.0 after normalization.
  EXPECT_DOUBLE_EQ(centroids->at(0, 0), 1.0);
  // Events without shots give zero rows.
  for (size_t f = 0; f < centroids->cols(); ++f) {
    EXPECT_DOUBLE_EQ(centroids->at(7, f), 0.0);
  }
}

TEST(OfflineLearnerTest, ShotPatternSharpensA1) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  HierarchicalModel model = BuildSmallModel(catalog);
  // Global states 0..2 belong to video 0. Reinforce the path 0 -> 2
  // (free_kick shot -> corner shot, skipping the goal shot).
  OfflineLearner learner;
  std::vector<AccessPattern> patterns = {{{0, 2}, 5.0}};
  ASSERT_TRUE(learner.ApplyShotPatterns(model, patterns).ok());

  const LocalShotModel& local = model.local(0);
  // Row 0 must now put all mass on state 2 (only co-accessed transition).
  EXPECT_DOUBLE_EQ(local.a1.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(local.a1.at(0, 1), 0.0);
  // Row 1 was never accessed: keeps the prior distribution.
  EXPECT_DOUBLE_EQ(local.a1.at(1, 2), 0.5);
  EXPECT_TRUE(model.Validate().ok());
  // Pi1 follows initial-state counts: state 0 begins the only pattern.
  EXPECT_DOUBLE_EQ(local.pi1[0], 1.0);
  EXPECT_DOUBLE_EQ(local.pi1[1], 0.0);
}

TEST(OfflineLearnerTest, PatternSpanningVideosIsSplit) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  HierarchicalModel model = BuildSmallModel(catalog);
  OfflineLearner learner;
  // States 0 and 2 in video 0, state 3 (= shot 4) in video 1.
  std::vector<AccessPattern> patterns = {{{0, 2, 3}, 1.0}};
  ASSERT_TRUE(learner.ApplyShotPatterns(model, patterns).ok());
  EXPECT_DOUBLE_EQ(model.local(0).a1.at(0, 2), 1.0);
  // Video 1's fragment has a single state: its pi1 becomes concentrated.
  EXPECT_DOUBLE_EQ(model.local(1).pi1[0], 1.0);
  EXPECT_TRUE(model.Validate().ok());
}

TEST(OfflineLearnerTest, RejectsOutOfRangeStates) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  HierarchicalModel model = BuildSmallModel(catalog);
  OfflineLearner learner;
  EXPECT_FALSE(learner.ApplyShotPatterns(model, {{{99}, 1.0}}).ok());
}

TEST(OfflineLearnerTest, VideoPatternsUpdateA2AndPi2) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  HierarchicalModel model = BuildSmallModel(catalog);
  OfflineLearner learner;
  std::vector<AccessPattern> patterns = {{{0, 1}, 4.0}};
  ASSERT_TRUE(learner.ApplyVideoPatterns(model, patterns).ok());
  // Videos 0 and 1 co-accessed: equal split each way after normalizing.
  EXPECT_DOUBLE_EQ(model.a2().at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(model.a2().at(0, 0), 0.5);
  EXPECT_TRUE(model.a2().IsRowStochastic(1e-12));
  EXPECT_DOUBLE_EQ(model.pi2()[0], 1.0);  // first state of the pattern
  EXPECT_TRUE(model.Validate().ok());
}

TEST(OfflineLearnerTest, LiteralEquation4Semantics) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  HierarchicalModel model = BuildSmallModel(catalog);
  OfflineLearner learner(
      OfflineLearnerOptions{PiSemantics::kLiteralEquation4});
  ASSERT_TRUE(learner.ApplyShotPatterns(model, {{{0, 2}, 1.0}}).ok());
  const LocalShotModel& local = model.local(0);
  EXPECT_DOUBLE_EQ(local.pi1[0], 0.5);
  EXPECT_DOUBLE_EQ(local.pi1[2], 0.5);
}

TEST(OfflineLearnerTest, RelearnFeatureWeightsUpdatesBoth) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(13, 10);
  HierarchicalModel model = BuildSmallModel(catalog);
  const Matrix p12_before = model.p12();
  OfflineLearner learner;
  ASSERT_TRUE(learner.RelearnFeatureWeights(model, catalog).ok());
  EXPECT_GT(model.p12().MaxAbsDiff(p12_before), 1e-6);
  EXPECT_TRUE(model.Validate().ok());
}

TEST(OfflineLearnerTest, RepeatedTrainingConverges) {
  // Applying the same pattern repeatedly keeps matrices stochastic and
  // idempotent after the first sharpening.
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  HierarchicalModel model = BuildSmallModel(catalog);
  OfflineLearner learner;
  std::vector<AccessPattern> patterns = {{{0, 1}, 1.0}};
  ASSERT_TRUE(learner.ApplyShotPatterns(model, patterns).ok());
  const Matrix after_one = model.local(0).a1;
  ASSERT_TRUE(learner.ApplyShotPatterns(model, patterns).ok());
  EXPECT_LT(model.local(0).a1.MaxAbsDiff(after_one), 1e-12);
}

}  // namespace
}  // namespace hmmm
