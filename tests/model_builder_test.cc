#include "core/model_builder.h"

#include <gtest/gtest.h>

#include "core/learner.h"
#include "test_util.h"

namespace hmmm {
namespace {

TEST(ModelBuilderTest, BuildsValidModelFromSmallCatalog) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  ModelBuilder builder(catalog);
  auto model = builder.Build();
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_TRUE(model->Validate().ok());
  EXPECT_EQ(model->num_videos(), 2u);
  EXPECT_EQ(model->num_global_states(), 6u);
  EXPECT_EQ(model->num_features(), 8);
}

TEST(ModelBuilderTest, LocalA1MatchesPaperExample) {
  // video_a's annotated shots have NE = 1, 2, 1 — the paper example.
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  const LocalShotModel& local = model->local(0);
  ASSERT_EQ(local.num_states(), 3u);
  EXPECT_DOUBLE_EQ(local.a1.at(0, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(local.a1.at(0, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(local.a1.at(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(local.a1.at(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(local.a1.at(2, 2), 1.0);
}

TEST(ModelBuilderTest, InitialDistributionsAreUniform) {
  auto model = ModelBuilder(testing::SmallSoccerCatalog()).Build();
  ASSERT_TRUE(model.ok());
  for (const LocalShotModel& local : model->locals()) {
    for (double p : local.pi1) {
      EXPECT_DOUBLE_EQ(p, 1.0 / static_cast<double>(local.num_states()));
    }
  }
  for (double p : model->pi2()) EXPECT_DOUBLE_EQ(p, 0.5);
  EXPECT_TRUE(model->a2().IsRowStochastic(1e-12));
}

TEST(ModelBuilderTest, B1NormalizedPerEquation3) {
  auto model = ModelBuilder(testing::SmallSoccerCatalog()).Build();
  ASSERT_TRUE(model.ok());
  const Matrix& b1 = model->b1();
  EXPECT_EQ(b1.rows(), 6u);
  for (size_t r = 0; r < b1.rows(); ++r) {
    for (size_t c = 0; c < b1.cols(); ++c) {
      EXPECT_GE(b1.at(r, c), 0.0);
      EXPECT_LE(b1.at(r, c), 1.0);
    }
  }
  // Raw values are {0.1, 0.9}: normalization maps them to {0, 1}.
  // State 0 = shot 0 (free_kick, feature 2 hot).
  EXPECT_DOUBLE_EQ(b1.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(b1.at(0, 0), 0.0);
}

TEST(ModelBuilderTest, P12UniformByDefault) {
  auto model = ModelBuilder(testing::SmallSoccerCatalog()).Build();
  ASSERT_TRUE(model.ok());
  for (size_t e = 0; e < model->p12().rows(); ++e) {
    for (size_t f = 0; f < model->p12().cols(); ++f) {
      EXPECT_DOUBLE_EQ(model->p12().at(e, f), 1.0 / 8.0);  // Eq. 7
    }
  }
}

TEST(ModelBuilderTest, P12LearnedWhenRequested) {
  ModelBuilderOptions options;
  options.learn_feature_weights = true;
  auto model =
      ModelBuilder(testing::GeneratedSoccerCatalog(7, 10), options).Build();
  ASSERT_TRUE(model.ok());
  // Rows still sum to 1 but are no longer uniform for trained events.
  bool any_nonuniform = false;
  for (size_t e = 0; e < model->p12().rows(); ++e) {
    EXPECT_NEAR(model->p12().RowSum(e), 1.0, 1e-9);
    for (size_t f = 0; f < model->p12().cols(); ++f) {
      if (std::abs(model->p12().at(e, f) - 1.0 / 20.0) > 1e-6) {
        any_nonuniform = true;
      }
    }
  }
  EXPECT_TRUE(any_nonuniform);
}

TEST(ModelBuilderTest, B1PrimeIsEventCentroid) {
  auto model = ModelBuilder(testing::SmallSoccerCatalog()).Build();
  ASSERT_TRUE(model.ok());
  // Event 1 (corner_kick) is carried by exactly one state whose B1 row has
  // feature 1 = 1.0: centroid equals that row.
  EXPECT_DOUBLE_EQ(model->b1_prime().at(1, 1), 1.0);
  // Event 6 (red_card) never occurs: all-zero centroid row.
  for (size_t f = 0; f < model->b1_prime().cols(); ++f) {
    EXPECT_DOUBLE_EQ(model->b1_prime().at(6, f), 0.0);
  }
}

TEST(ModelBuilderTest, B2MatchesCatalogCounts) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->b2() == catalog.EventCountMatrix());
}

TEST(ModelBuilderTest, LinkMatrixPartitionsStates) {
  auto model = ModelBuilder(testing::SmallSoccerCatalog()).Build();
  ASSERT_TRUE(model.ok());
  const Matrix l12 = model->LinkMatrix();
  EXPECT_EQ(l12.rows(), 2u);
  EXPECT_EQ(l12.cols(), 6u);
  // Each state belongs to exactly one video.
  for (size_t s = 0; s < l12.cols(); ++s) {
    double column_sum = 0.0;
    for (size_t v = 0; v < l12.rows(); ++v) column_sum += l12.at(v, s);
    EXPECT_DOUBLE_EQ(column_sum, 1.0);
  }
  EXPECT_DOUBLE_EQ(l12.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(l12.at(1, 3), 1.0);
}

TEST(ModelBuilderTest, GlobalStateMappingRoundTrips) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  for (size_t s = 0; s < model->num_global_states(); ++s) {
    const ShotId shot = model->ShotOfGlobalState(static_cast<int>(s));
    EXPECT_EQ(model->GlobalStateOf(shot), static_cast<int>(s));
    EXPECT_FALSE(catalog.shot(shot).events.empty());
  }
  // Un-annotated shots are not states.
  EXPECT_EQ(model->GlobalStateOf(1), -1);
  EXPECT_EQ(model->GlobalStateOf(-5), -1);
  EXPECT_EQ(model->GlobalStateOf(9999), -1);
}

TEST(ModelBuilderTest, VideoWithoutAnnotationsGetsEmptyLocal) {
  VideoCatalog catalog(SoccerEvents(), 2);
  const VideoId v0 = catalog.AddVideo("empty");
  ASSERT_TRUE(catalog.AddShot(v0, 0, 1, {}, {0.5, 0.5}).ok());
  const VideoId v1 = catalog.AddVideo("full");
  ASSERT_TRUE(catalog.AddShot(v1, 0, 1, {0}, {0.9, 0.1}).ok());
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->local(0).num_states(), 0u);
  EXPECT_EQ(model->local(1).num_states(), 1u);
  EXPECT_TRUE(model->Validate().ok());
}

TEST(RebuildPreservingLearningTest, CarriesLocalLearningForUnchangedVideos) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  // Teach the model something.
  OfflineLearner learner;
  ASSERT_TRUE(learner.ApplyShotPatterns(*model, {{{0, 2}, 3.0}}).ok());
  ASSERT_TRUE(
      learner.ApplyVideoPatterns(*model, {{{0, 1}, 2.0}}).ok());
  const Matrix learned_a1 = model->local(0).a1;

  // Grow the catalog with a new video and rebuild.
  VideoCatalog grown = testing::SmallSoccerCatalog();
  const VideoId v2 = grown.AddVideo("video_c");
  ASSERT_TRUE(grown.AddShot(v2, 0.0, 3.0, {4},
                            testing::FeatureVector(8, 0.1, {4}, 0.9)).ok());
  auto rebuilt = RebuildPreservingLearning(*model, grown);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(rebuilt->Validate().ok());
  EXPECT_EQ(rebuilt->num_videos(), 3u);

  // Video 0's learned A1/Pi1 survive; the new video gets a fresh local.
  EXPECT_LT(rebuilt->local(0).a1.MaxAbsDiff(learned_a1), 1e-12);
  EXPECT_DOUBLE_EQ(rebuilt->local(0).pi1[0], 1.0);
  EXPECT_EQ(rebuilt->local(2).num_states(), 1u);

  // A2's learned block survives re-normalization (videos 0/1 co-accessed).
  EXPECT_DOUBLE_EQ(rebuilt->a2().at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(rebuilt->a2().at(0, 2), 0.0);
  // New video's row is uniform over the grown set.
  EXPECT_NEAR(rebuilt->a2().at(2, 0), 1.0 / 3.0, 1e-12);
  // Pi2 keeps the old preference with a uniform seed for the newcomer.
  EXPECT_GT(rebuilt->pi2()[0], rebuilt->pi2()[2]);
}

TEST(RebuildPreservingLearningTest, ChangedVideoGetsFreshLocal) {
  const VideoCatalog catalog = testing::SmallSoccerCatalog();
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  OfflineLearner learner;
  ASSERT_TRUE(learner.ApplyShotPatterns(*model, {{{0, 2}, 3.0}}).ok());

  // Append an annotated shot to video 0: its state list changes.
  VideoCatalog grown = testing::SmallSoccerCatalog();
  ASSERT_TRUE(grown.AddShot(0, 30.0, 33.0, {0},
                            testing::FeatureVector(8, 0.1, {0}, 0.9)).ok());
  auto rebuilt = RebuildPreservingLearning(*model, grown);
  ASSERT_TRUE(rebuilt.ok());
  // Fresh initialization: row 0 no longer concentrated on one state.
  EXPECT_LT(rebuilt->local(0).a1.at(0, 2), 1.0);
  EXPECT_EQ(rebuilt->local(0).num_states(), 4u);
  EXPECT_TRUE(rebuilt->Validate().ok());
}

TEST(RebuildPreservingLearningTest, QueriesStillWorkAfterRebuild) {
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(15, 6);
  auto model = ModelBuilder(catalog).Build();
  ASSERT_TRUE(model.ok());
  auto rebuilt = RebuildPreservingLearning(*model, catalog);
  ASSERT_TRUE(rebuilt.ok());
  // Unchanged catalog: rebuild is a fixed point for the local models.
  for (size_t v = 0; v < catalog.num_videos(); ++v) {
    EXPECT_LT(rebuilt->local(static_cast<VideoId>(v))
                  .a1.MaxAbsDiff(model->local(static_cast<VideoId>(v)).a1),
              1e-12);
  }
}

TEST(ModelBuilderTest, PaperScaleBuild) {
  // 54 videos / ~11.5k shots / ~500 states builds and validates.
  FeatureLevelGenerator generator(SoccerFeatureLevelDefaults(1));
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  ASSERT_TRUE(catalog.ok());
  auto model = ModelBuilder(*catalog).Build();
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_videos(), 54u);
  EXPECT_EQ(model->num_global_states(), catalog->num_annotated_shots());
}

}  // namespace
}  // namespace hmmm
