// Temporal gap bounds in the query language (`a ;<N b`), an extension of
// the authors' temporal query model ([8] in the paper): the next event
// must occur within N annotated shots of the previous one.

#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "query/parser.h"
#include "retrieval/baseline_exhaustive.h"
#include "retrieval/baseline_index.h"
#include "retrieval/metrics.h"
#include "retrieval/traversal.h"
#include "test_util.h"

namespace hmmm {
namespace {

class GapConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::SmallSoccerCatalog();
    auto model = ModelBuilder(catalog_).Build();
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
    vocab_ = catalog_.vocabulary();
  }

  VideoCatalog catalog_;
  HierarchicalModel model_;
  EventVocabulary vocab_;
};

TEST_F(GapConstraintTest, ParserAcceptsGapSyntax) {
  auto pattern = CompileQuery("free_kick ;<1 goal", vocab_);
  ASSERT_TRUE(pattern.ok());
  ASSERT_EQ(pattern->size(), 2u);
  EXPECT_EQ(pattern->steps[0].max_gap, -1);
  EXPECT_EQ(pattern->steps[1].max_gap, 1);
  EXPECT_EQ(pattern->ToString(vocab_), "free_kick ;<1 goal");

  auto arrow = CompileQuery("free_kick -><2 goal", vocab_);
  ASSERT_TRUE(arrow.ok());
  EXPECT_EQ(arrow->steps[1].max_gap, 2);
}

TEST_F(GapConstraintTest, ParserRejectsBadGaps) {
  EXPECT_FALSE(CompileQuery("free_kick ;<0 goal", vocab_).ok());
  EXPECT_FALSE(CompileQuery("free_kick ;< goal", vocab_).ok());
  EXPECT_FALSE(CompileQuery("free_kick ;<x goal", vocab_).ok());
  EXPECT_FALSE(CompileQuery("free_kick < goal", vocab_).ok());
}

TEST_F(GapConstraintTest, MatnCarriesAndRendersGap) {
  auto graph = ParseQuery("goal ;<3 free_kick", vocab_);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->arcs().size(), 2u);
  EXPECT_EQ(graph->arcs()[1].max_gap, 3);
  EXPECT_NE(graph->ToString(vocab_).find("[gap<=3]"), std::string::npos);
  MatnGraph manual;
  manual.AddState();
  manual.AddState();
  EXPECT_FALSE(manual.AddArc(0, 1, {0}, 0).ok());
  EXPECT_FALSE(manual.AddArc(0, 1, {0}, -5).ok());
  EXPECT_TRUE(manual.AddArc(0, 1, {0}, 4).ok());
}

TEST_F(GapConstraintTest, MatchingHonorsGap) {
  // video 0 annotated shots: 0 (fk), 2 (fk+goal), 3 (corner); positions
  // 0, 1, 2. free_kick ;<1 corner_kick matches (2,3) but not (0,3).
  const auto tight = *CompileQuery("free_kick ;<1 corner_kick", vocab_);
  EXPECT_TRUE(PatternMatchesAnnotations(catalog_, {2, 3}, tight));
  EXPECT_FALSE(PatternMatchesAnnotations(catalog_, {0, 3}, tight));
  const auto loose = *CompileQuery("free_kick ;<2 corner_kick", vocab_);
  EXPECT_TRUE(PatternMatchesAnnotations(catalog_, {0, 3}, loose));
}

TEST_F(GapConstraintTest, EnumerationHonorsGap) {
  const auto unbounded = *CompileQuery("free_kick ; corner_kick", vocab_);
  const auto tight = *CompileQuery("free_kick ;<1 corner_kick", vocab_);
  const auto all = EnumerateTrueOccurrences(catalog_, unbounded);
  const auto bounded = EnumerateTrueOccurrences(catalog_, tight);
  EXPECT_EQ(all.size(), 2u);      // (0,3) and (2,3)
  ASSERT_EQ(bounded.size(), 1u);  // only the adjacent pair
  EXPECT_EQ(bounded[0], (std::vector<ShotId>{2, 3}));
}

TEST_F(GapConstraintTest, TraversalHonorsGap) {
  HmmmTraversal traversal(model_, catalog_);
  const auto tight = *CompileQuery("free_kick ;<1 corner_kick", vocab_);
  auto results = traversal.Retrieve(tight);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // Every returned pair (annotated or merely "similar") must respect the
  // positional gap bound of 1 annotated shot.
  for (const auto& r : *results) {
    ASSERT_EQ(r.shots.size(), 2u);
    const ShotRecord& a = catalog_.shot(r.shots[0]);
    const ShotRecord& b = catalog_.shot(r.shots[1]);
    ASSERT_EQ(a.video_id, b.video_id);
    const auto annotated = catalog_.AnnotatedShots(a.video_id);
    int pa = -1, pb = -1;
    for (size_t i = 0; i < annotated.size(); ++i) {
      if (annotated[i] == a.id) pa = static_cast<int>(i);
      if (annotated[i] == b.id) pb = static_cast<int>(i);
    }
    EXPECT_LE(pb - pa, 1) << "gap-violating result returned";
  }
  // With a beam wide enough to keep both start shots, video 0's best
  // path is the annotated pair (2, 3).
  TraversalOptions wide;
  wide.beam_width = 4;
  auto beam_results =
      HmmmTraversal(model_, catalog_, wide).Retrieve(tight);
  ASSERT_TRUE(beam_results.ok());
  bool found_pair = false;
  for (const auto& r : *beam_results) {
    found_pair |= r.shots == (std::vector<ShotId>{2, 3});
  }
  EXPECT_TRUE(found_pair);
}

TEST_F(GapConstraintTest, ExhaustiveHonorsGap) {
  ExhaustiveMatcher matcher(model_, catalog_);
  const auto tight = *CompileQuery("free_kick ;<1 corner_kick", vocab_);
  auto results = matcher.Retrieve(tight);
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    // Exhaustive scores *similar* shots too, but never beyond the gap.
    const auto positions_ok = [&] {
      const ShotRecord& a = catalog_.shot(r.shots[0]);
      const ShotRecord& b = catalog_.shot(r.shots[1]);
      if (a.video_id != b.video_id) return false;
      const auto annotated = catalog_.AnnotatedShots(a.video_id);
      int pa = -1, pb = -1;
      for (size_t i = 0; i < annotated.size(); ++i) {
        if (annotated[i] == a.id) pa = static_cast<int>(i);
        if (annotated[i] == b.id) pb = static_cast<int>(i);
      }
      return pa >= 0 && pb >= 0 && pb - pa <= 1;
    }();
    EXPECT_TRUE(positions_ok);
  }
}

TEST_F(GapConstraintTest, IndexJoinHonorsGap) {
  const EventIndex index(catalog_);
  IndexJoinMatcher matcher(model_, catalog_, index);
  const auto tight = *CompileQuery("free_kick ;<1 corner_kick", vocab_);
  auto results = matcher.Retrieve(tight);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(results->front().shots, (std::vector<ShotId>{2, 3}));
}

TEST_F(GapConstraintTest, GapDisablesCrossVideoHops) {
  TraversalOptions options;
  options.cross_video = true;
  HmmmTraversal traversal(model_, catalog_, options);
  // Three goals within gap 1 cannot span videos.
  TemporalPattern pattern = TemporalPattern::FromEvents({0, 0, 0});
  pattern.steps[1].max_gap = 1;
  pattern.steps[2].max_gap = 1;
  auto results = traversal.Retrieve(pattern);
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    EXPECT_FALSE(r.crosses_videos);
  }
}

TEST_F(GapConstraintTest, WiderGapSupersetOfTighter) {
  // On a generated corpus, everything matching gap<=1 also matches
  // gap<=3 and the unbounded pattern.
  const VideoCatalog catalog = testing::GeneratedSoccerCatalog(61, 8);
  const auto tight = *CompileQuery("free_kick ;<1 goal", vocab_);
  const auto wide = *CompileQuery("free_kick ;<3 goal", vocab_);
  const auto unbounded = *CompileQuery("free_kick ; goal", vocab_);
  const auto t = EnumerateTrueOccurrences(catalog, tight);
  const auto w = EnumerateTrueOccurrences(catalog, wide);
  const auto u = EnumerateTrueOccurrences(catalog, unbounded);
  EXPECT_LE(t.size(), w.size());
  EXPECT_LE(w.size(), u.size());
  for (const auto& occurrence : t) {
    EXPECT_TRUE(PatternMatchesAnnotations(catalog, occurrence, wide));
    EXPECT_TRUE(PatternMatchesAnnotations(catalog, occurrence, unbounded));
  }
}

}  // namespace
}  // namespace hmmm
