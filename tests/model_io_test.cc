#include <gtest/gtest.h>

#include "core/mmm.h"
#include "core/model_builder.h"
#include "test_util.h"

namespace hmmm {
namespace {

HierarchicalModel BuildModel() {
  auto model = ModelBuilder(testing::SmallSoccerCatalog()).Build();
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(MmmTest, ValidateAcceptsConsistentModel) {
  Mmm mmm;
  mmm.a = *Matrix::FromRows({{0.5, 0.5}, {0.0, 1.0}});
  mmm.b = Matrix(2, 3, 0.1);
  mmm.pi = {0.3, 0.7};
  EXPECT_TRUE(mmm.Validate().ok());
}

TEST(MmmTest, ValidateRejectsShapeMismatch) {
  Mmm mmm;
  mmm.a = Matrix(2, 3);
  mmm.b = Matrix(2, 1);
  mmm.pi = {0.5, 0.5};
  EXPECT_FALSE(mmm.Validate().ok());
}

TEST(MmmTest, ValidateRejectsNonStochasticA) {
  Mmm mmm;
  mmm.a = *Matrix::FromRows({{0.5, 0.6}, {0.0, 1.0}});
  mmm.b = Matrix(2, 1);
  mmm.pi = {0.5, 0.5};
  EXPECT_FALSE(mmm.Validate().ok());
}

TEST(MmmTest, ValidateRejectsBadPi) {
  Mmm mmm;
  mmm.a = Matrix::Identity(2);
  mmm.b = Matrix(2, 1);
  mmm.pi = {0.5, 0.1};
  EXPECT_FALSE(mmm.Validate().ok());
}

TEST(MmmTest, UniformDistribution) {
  EXPECT_EQ(UniformDistribution(0).size(), 0u);
  const auto pi = UniformDistribution(4);
  for (double p : pi) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(ModelIoTest, SerializeDeserializeRoundTrip) {
  const HierarchicalModel original = BuildModel();
  const std::string blob = original.Serialize();
  auto restored = HierarchicalModel::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->num_videos(), original.num_videos());
  EXPECT_EQ(restored->num_global_states(), original.num_global_states());
  EXPECT_EQ(restored->vocabulary().names(), original.vocabulary().names());
  EXPECT_LT(restored->b1().MaxAbsDiff(original.b1()), 1e-15);
  EXPECT_LT(restored->a2().MaxAbsDiff(original.a2()), 1e-15);
  EXPECT_LT(restored->b2().MaxAbsDiff(original.b2()), 1e-15);
  EXPECT_LT(restored->p12().MaxAbsDiff(original.p12()), 1e-15);
  EXPECT_LT(restored->b1_prime().MaxAbsDiff(original.b1_prime()), 1e-15);
  EXPECT_EQ(restored->pi2(), original.pi2());
  for (size_t v = 0; v < original.num_videos(); ++v) {
    EXPECT_EQ(restored->local(static_cast<VideoId>(v)).states,
              original.local(static_cast<VideoId>(v)).states);
    EXPECT_LT(restored->local(static_cast<VideoId>(v))
                  .a1.MaxAbsDiff(original.local(static_cast<VideoId>(v)).a1),
              1e-15);
  }
  EXPECT_TRUE(restored->Validate().ok());
}

TEST(ModelIoTest, StateMappingRebuiltAfterLoad) {
  const HierarchicalModel original = BuildModel();
  auto restored = HierarchicalModel::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok());
  for (size_t s = 0; s < original.num_global_states(); ++s) {
    EXPECT_EQ(restored->ShotOfGlobalState(static_cast<int>(s)),
              original.ShotOfGlobalState(static_cast<int>(s)));
  }
}

TEST(ModelIoTest, CorruptionRejected) {
  std::string blob = BuildModel().Serialize();
  blob[blob.size() / 2] ^= 0x10;
  EXPECT_EQ(HierarchicalModel::Deserialize(blob).status().code(),
            StatusCode::kDataLoss);
}

TEST(ModelIoTest, TrailingGarbageRejected) {
  // Valid envelope around payload-with-garbage is caught by the reader.
  const HierarchicalModel model = BuildModel();
  std::string blob = model.Serialize();
  blob += "extra";
  EXPECT_FALSE(HierarchicalModel::Deserialize(blob).ok());
}

TEST(ModelIoTest, FileRoundTrip) {
  const HierarchicalModel model = BuildModel();
  const std::string path = testing::TempPath("hmmm_model_io_test.hmmm");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto restored = HierarchicalModel::LoadFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_global_states(), model.num_global_states());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(HierarchicalModel::LoadFromFile("/no/such/model.hmmm")
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace hmmm
