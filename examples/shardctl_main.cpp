// hmmm_shardctl: builds the on-disk artefacts of a sharded serving
// deployment. `partition` slices an archive (persisted or synthetic)
// into N score-equivalent serving shards:
//
//   hmmm_shardctl partition --synthetic --videos 8 --shards 3 --out /tmp/dep
//   hmmm_shardctl partition --catalog a.catalog --model a.model
//       --shards 4 --out /tmp/dep
//
// writing global.catalog / global.model (the unsharded reference),
// shard<i>.catalog / shard<i>.model for each shard, and shards.map (the
// serving map hmmm_coordd loads; endpoints are left empty — they are
// deployment config, supplied to coordd via --shard flags). Prints one
// machine-readable line on success:
//
//   PARTITIONED shards=<n> videos=<v> shots=<s> out=<dir>
//
// `inspect` pretty-prints a shards.map (epoch, ranges, replicas).
//
// `reload` pushes a shards.map to a live coordinator over the wire
// (ReloadShardMap, v3+) for a hot swap without restarting it:
//
//   hmmm_shardctl reload --map shards.map --coordinator 127.0.0.1:8787
//       [--epoch N]
//
// The coordinator only accepts a map whose epoch is strictly greater
// than the one it serves; --epoch overrides the file's epoch before the
// push. Prints `RELOADED epoch=<n> shards=<n>` on success.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/catalog_partition.h"
#include "api/video_database.h"
#include "client/query_client.h"
#include "media/feature_level_generator.h"
#include "server/shard_map.h"
#include "storage/model_io.h"

namespace {

struct ShardctlFlags {
  std::string catalog_path;
  std::string model_path;
  bool synthetic = false;
  int videos = 8;
  int shards = 2;
  std::string out_dir;
  std::string map_path;         // inspect / reload
  std::string coordinator;      // reload: host:port
  long long epoch_override = -1;  // reload: -1 keeps the file's epoch
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s partition (--catalog PATH --model PATH | --synthetic "
      "[--videos N])\n"
      "          --shards N --out DIR\n"
      "       %s inspect --map PATH\n"
      "       %s reload --map PATH --coordinator HOST:PORT [--epoch N]\n",
      argv0, argv0, argv0);
}

bool ParseFlags(int argc, char** argv, std::string* command,
                ShardctlFlags* flags) {
  if (argc < 2) return false;
  *command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--catalog" && (value = next()) != nullptr) {
      flags->catalog_path = value;
    } else if (arg == "--model" && (value = next()) != nullptr) {
      flags->model_path = value;
    } else if (arg == "--synthetic") {
      flags->synthetic = true;
    } else if (arg == "--videos" && (value = next()) != nullptr) {
      flags->videos = std::atoi(value);
    } else if (arg == "--shards" && (value = next()) != nullptr) {
      flags->shards = std::atoi(value);
    } else if (arg == "--out" && (value = next()) != nullptr) {
      flags->out_dir = value;
    } else if (arg == "--map" && (value = next()) != nullptr) {
      flags->map_path = value;
    } else if (arg == "--coordinator" && (value = next()) != nullptr) {
      flags->coordinator = value;
    } else if (arg == "--epoch" && (value = next()) != nullptr) {
      flags->epoch_override = std::atoll(value);
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (*command == "partition") {
    const bool persisted =
        !flags->catalog_path.empty() && !flags->model_path.empty();
    return (persisted != flags->synthetic) && !flags->out_dir.empty() &&
           flags->shards >= 1;
  }
  if (*command == "inspect") return !flags->map_path.empty();
  if (*command == "reload") {
    return !flags->map_path.empty() && !flags->coordinator.empty();
  }
  return false;
}

hmmm::StatusOr<hmmm::VideoDatabase> OpenArchive(const ShardctlFlags& flags) {
  if (flags.synthetic) {
    hmmm::FeatureLevelConfig config = hmmm::SoccerFeatureLevelDefaults(1);
    config.num_videos = flags.videos;
    hmmm::FeatureLevelGenerator generator(config);
    HMMM_ASSIGN_OR_RETURN(
        hmmm::VideoCatalog catalog,
        hmmm::VideoCatalog::FromGeneratedCorpus(generator.Generate()));
    return hmmm::VideoDatabase::Create(std::move(catalog));
  }
  return hmmm::VideoDatabase::Open(flags.catalog_path, flags.model_path);
}

int RunPartition(const ShardctlFlags& flags) {
  if (::mkdir(flags.out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s: %s\n", flags.out_dir.c_str(),
                 std::strerror(errno));
    return 1;
  }
  hmmm::StatusOr<hmmm::VideoDatabase> db = OpenArchive(flags);
  if (!db.ok()) {
    std::fprintf(stderr, "failed to open archive: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  const std::string prefix = flags.out_dir + "/";
  hmmm::Status saved = db->Save(prefix + "global.catalog",
                                prefix + "global.model");
  if (!saved.ok()) {
    std::fprintf(stderr, "failed to save global archive: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  hmmm::StatusOr<std::vector<hmmm::CatalogShard>> shards =
      hmmm::PartitionForServing(db->catalog(), db->model(), flags.shards);
  if (!shards.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 shards.status().ToString().c_str());
    return 1;
  }
  // Global snapshot next to the blob pair, so a coordinator-side archive
  // (or an unsharded server) can cold-start from the mmap path.
  saved = db->WriteSnapshot(prefix + "global.hmms");
  if (!saved.ok()) {
    std::fprintf(stderr, "failed to save global snapshot: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  for (size_t s = 0; s < shards->size(); ++s) {
    const hmmm::CatalogShard& shard = (*shards)[s];
    const std::string stem = prefix + "shard" + std::to_string(s);
    saved = hmmm::SaveCatalog(shard.catalog, stem + ".catalog");
    if (saved.ok()) saved = shard.model.SaveToFile(stem + ".model");
    // Per-shard snapshot slice alongside the blobs: the same frozen
    // format, so shard servers boot with --snapshot shard<i>.hmms and
    // skip deserialization entirely.
    if (saved.ok()) {
      saved = hmmm::WriteSnapshot(shard.model, shard.catalog,
                                  stem + ".hmms");
    }
    if (!saved.ok()) {
      std::fprintf(stderr, "failed to save shard %zu: %s\n", s,
                   saved.ToString().c_str());
      return 1;
    }
  }
  const hmmm::ShardMap map = hmmm::ShardMapFromPartition(*shards,
                                                         db->catalog());
  saved = hmmm::SaveShardMap(map, prefix + "shards.map");
  if (!saved.ok()) {
    std::fprintf(stderr, "failed to save shard map: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("PARTITIONED shards=%zu videos=%lld shots=%lld out=%s\n",
              shards->size(), static_cast<long long>(map.total_videos),
              static_cast<long long>(map.total_shots), flags.out_dir.c_str());
  return 0;
}

int RunInspect(const ShardctlFlags& flags) {
  hmmm::StatusOr<hmmm::ShardMap> map = hmmm::LoadShardMap(flags.map_path);
  if (!map.ok()) {
    std::fprintf(stderr, "failed to load shard map: %s\n",
                 map.status().ToString().c_str());
    return 1;
  }
  std::printf("shard map: %zu shards, %lld videos, %lld shots, epoch %llu\n",
              map->shards.size(), static_cast<long long>(map->total_videos),
              static_cast<long long>(map->total_shots),
              static_cast<unsigned long long>(map->epoch));
  for (size_t s = 0; s < map->shards.size(); ++s) {
    const hmmm::ShardMapEntry& entry = map->shards[s];
    std::printf("  shard %zu: videos [%d, %d) (%d), %zu shots, endpoint=%s",
                s, entry.video_begin, entry.video_end, entry.num_videos(),
                entry.shot_to_global.size(),
                entry.endpoint.empty() ? "<unset>" : entry.endpoint.c_str());
    for (const std::string& replica : entry.replica_endpoints) {
      std::printf(",%s", replica.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int RunReload(const ShardctlFlags& flags) {
  hmmm::StatusOr<hmmm::ShardMap> map = hmmm::LoadShardMap(flags.map_path);
  if (!map.ok()) {
    std::fprintf(stderr, "failed to load shard map: %s\n",
                 map.status().ToString().c_str());
    return 1;
  }
  if (flags.epoch_override >= 0) {
    map->epoch = static_cast<uint64_t>(flags.epoch_override);
  }
  const size_t colon = flags.coordinator.rfind(':');
  if (colon == std::string::npos || colon + 1 == flags.coordinator.size()) {
    std::fprintf(stderr, "--coordinator must be HOST:PORT\n");
    return 2;
  }
  hmmm::QueryClientOptions options;
  options.host = flags.coordinator.substr(0, colon);
  options.port = static_cast<uint16_t>(
      std::atoi(flags.coordinator.c_str() + colon + 1));
  hmmm::QueryClient client(options);
  hmmm::ReloadShardMapRequest request;
  request.map_blob = hmmm::SerializeShardMap(*map);
  hmmm::StatusOr<hmmm::ReloadShardMapResponse> response =
      client.ReloadShardMap(request);
  if (!response.ok()) {
    std::fprintf(stderr, "reload rejected: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("RELOADED epoch=%llu shards=%u\n",
              static_cast<unsigned long long>(response->epoch),
              response->num_shards);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  ShardctlFlags flags;
  if (!ParseFlags(argc, argv, &command, &flags)) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (command == "partition") return RunPartition(flags);
  if (command == "reload") return RunReload(flags);
  return RunInspect(flags);
}
