// Relevance feedback demo: a simulated user marks retrieved temporal
// patterns positive; the offline learner folds the access patterns into
// A1/Pi1/A2/Pi2 (Eqs. 1-6) and the ranking sharpens round after round —
// the paper's "continuous improvement" loop.
//
//   ./build/examples/feedback_learning

#include <cstdio>

#include "hmmm.h"

int main() {
  using namespace hmmm;

  FeatureLevelConfig config = SoccerFeatureLevelDefaults(/*seed=*/4711);
  config.num_videos = 16;
  config.min_shots_per_video = 60;
  config.max_shots_per_video = 100;
  config.event_shot_fraction = 0.2;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  if (!catalog.ok()) return 1;

  TraversalOptions traversal_options;
  traversal_options.beam_width = 4;
  traversal_options.max_results = 10;
  auto engine = RetrievalEngine::Create(*catalog, {}, traversal_options);
  if (!engine.ok()) return 1;

  const std::string query = "free_kick ; goal";
  auto pattern = CompileQuery(query, catalog->vocabulary());
  if (!pattern.ok()) return 1;

  SimulatedUser user(*catalog);
  FeedbackTrainerOptions trainer_options;
  trainer_options.retrain_threshold = 1;  // retrain after every round
  trainer_options.relearn_feature_weights = true;
  FeedbackTrainer trainer(*catalog, trainer_options);

  std::printf("query \"%s\" on %zu videos / %zu annotated shots\n\n",
              query.c_str(), catalog->num_videos(),
              catalog->num_annotated_shots());
  std::printf("%-6s %-6s %-6s %-6s %s\n", "round", "P@10", "MAP", "nDCG",
              "marked positive");

  for (int round = 0; round <= 5; ++round) {
    auto results = engine->Retrieve(*pattern);
    if (!results.ok()) return 1;
    const auto metrics = EvaluateRanking(*catalog, *pattern, *results, 10);
    const auto positives = user.JudgePositive(*pattern, *results);
    std::printf("%-6d %-6.2f %-6.2f %-6.2f %zu of %zu inspected\n", round,
                metrics.precision_at_k, metrics.average_precision,
                metrics.ndcg, positives.size(), results->size());
    if (round == 5) break;
    for (size_t i : positives) {
      if (Status s = trainer.MarkPositive(engine->model(), (*results)[i]);
          !s.ok()) {
        std::fprintf(stderr, "mark: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    auto trained = trainer.MaybeTrain(engine->mutable_model(), /*force=*/true);
    if (!trained.ok()) return 1;
  }

  std::printf("\nafter training, the learned initial-state distribution of "
              "the most-accessed video concentrates on the pattern's "
              "first shot, and A1 rows along positive paths sharpen — "
              "inspect engine.model().local(v).a1 / .pi1 to see it.\n");
  return 0;
}
