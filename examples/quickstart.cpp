// Quickstart: build a small synthetic soccer archive, construct the
// two-level HMMM over it, and answer a temporal pattern query.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "hmmm.h"

int main() {
  using namespace hmmm;

  // 1. Synthesize an archive (feature-level: annotations + Table-1-like
  //    feature vectors, no raster rendering — see examples/soccer_retrieval
  //    for the full media pipeline).
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(/*seed=*/2024);
  config.num_videos = 12;
  config.min_shots_per_video = 50;
  config.max_shots_per_video = 90;
  config.event_shot_fraction = 0.25;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("archive: %zu videos, %zu shots, %zu annotated event shots\n",
              catalog->num_videos(), catalog->num_shots(),
              catalog->num_annotated_shots());

  // 2. Build the HMMM and the retrieval engine.
  ModelBuilderOptions builder_options;
  builder_options.learn_feature_weights = true;  // Eq. 10 instead of Eq. 7
  TraversalOptions traversal_options;
  traversal_options.beam_width = 4;
  traversal_options.max_results = 5;
  auto engine =
      RetrievalEngine::Create(*catalog, builder_options, traversal_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 3. Ask for a temporal event pattern: a free kick followed by a goal.
  const std::string query = "free_kick ; goal";
  RetrievalStats stats;
  auto results = engine->Query(query, &stats);
  if (!results.ok()) {
    std::fprintf(stderr, "query: %s\n", results.status().ToString().c_str());
    return 1;
  }

  std::printf("\nquery \"%s\": %zu ranked patterns "
              "(%zu lattice expansions, %zu sim evaluations)\n",
              query.c_str(), results->size(), stats.states_visited,
              stats.sim_evaluations);
  for (size_t i = 0; i < results->size(); ++i) {
    std::printf("  #%zu %s\n", i + 1,
                (*results)[i].ToString(*catalog).c_str());
  }

  // 4. Persist the model for later sessions.
  const std::string path = "/tmp/quickstart.hmmm";
  if (Status s = engine->model().SaveToFile(path); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nmodel saved to %s (%zu bytes)\n", path.c_str(),
              engine->model().Serialize().size());
  return 0;
}
