// Command-line archive tool: build, persist, inspect and query HMMM
// archives from a shell. The closest thing to the paper's Fig.-5 server
// without a GUI.
//
//   archive_tool generate <catalog.bin> [videos] [seed]   synthesize archive
//   archive_tool build <catalog.bin> <model.bin>          build + save HMMM
//   archive_tool stats <catalog.bin>                      archive statistics
//   archive_tool query <catalog.bin> <model.bin> "<q>"    temporal query
//   archive_tool similar <catalog.bin> <model.bin> <shot> query by example
//   archive_tool clusters <catalog.bin> <model.bin> [k]   category level
//   archive_tool mine <catalog.bin> [k]                   frequent patterns

#include <cstdio>
#include <cstdlib>
#include <string>

#include "hmmm.h"

namespace {

using namespace hmmm;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  archive_tool generate <catalog.bin> [videos] [seed]\n"
      "  archive_tool build <catalog.bin> <model.bin>\n"
      "  archive_tool stats <catalog.bin>\n"
      "  archive_tool query <catalog.bin> <model.bin> \"<pattern>\" [k]\n"
      "  archive_tool similar <catalog.bin> <model.bin> <shot_id> [k]\n"
      "  archive_tool clusters <catalog.bin> <model.bin> [k]\n"
      "  archive_tool mine <catalog.bin> [k]\n");
  return 2;
}

int Mine(const std::string& catalog_path, size_t k) {
  auto catalog = LoadCatalog(catalog_path);
  if (!catalog.ok()) return Fail(catalog.status());
  PatternMiningOptions options;
  options.max_results = k;
  options.min_support = 2;
  const auto mined = MineFrequentEventPatterns(*catalog, options);
  std::printf("%zu frequent temporal patterns (gap <= %d):\n", mined.size(),
              options.max_gap);
  for (const MinedPattern& pattern : mined) {
    std::printf("  support=%3zu videos=%2zu  %s\n", pattern.support,
                pattern.video_support,
                pattern.ToQuery(catalog->vocabulary()).c_str());
  }
  return 0;
}

int Generate(const std::string& path, int videos, uint64_t seed) {
  FeatureLevelConfig config = SoccerFeatureLevelDefaults(seed);
  config.num_videos = videos;
  FeatureLevelGenerator generator(config);
  auto catalog = VideoCatalog::FromGeneratedCorpus(generator.Generate());
  if (!catalog.ok()) return Fail(catalog.status());
  if (Status s = SaveCatalog(*catalog, path); !s.ok()) return Fail(s);
  std::printf("wrote %s: %zu videos, %zu shots, %zu annotated\n",
              path.c_str(), catalog->num_videos(), catalog->num_shots(),
              catalog->num_annotated_shots());
  return 0;
}

int Build(const std::string& catalog_path, const std::string& model_path) {
  auto catalog = LoadCatalog(catalog_path);
  if (!catalog.ok()) return Fail(catalog.status());
  ModelBuilderOptions options;
  options.learn_feature_weights = true;
  auto model = ModelBuilder(*catalog, options).Build();
  if (!model.ok()) return Fail(model.status());
  if (Status s = model->SaveToFile(model_path); !s.ok()) return Fail(s);
  std::printf("wrote %s: %zu videos, %zu states, %d features\n",
              model_path.c_str(), model->num_videos(),
              model->num_global_states(), model->num_features());
  return 0;
}

int Stats(const std::string& catalog_path) {
  auto catalog = LoadCatalog(catalog_path);
  if (!catalog.ok()) return Fail(catalog.status());
  std::printf("videos:          %zu\n", catalog->num_videos());
  std::printf("shots:           %zu\n", catalog->num_shots());
  std::printf("annotated shots: %zu\n", catalog->num_annotated_shots());
  std::printf("annotations:     %zu\n", catalog->num_annotations());
  std::printf("features:        %d\n", catalog->num_features());
  std::printf("events:\n");
  const Matrix b2 = catalog->EventCountMatrix();
  for (size_t e = 0; e < catalog->vocabulary().size(); ++e) {
    double total = 0.0;
    for (size_t v = 0; v < b2.rows(); ++v) total += b2.at(v, e);
    std::printf("  %-16s %5.0f occurrences\n",
                catalog->vocabulary().Name(static_cast<EventId>(e)).c_str(),
                total);
  }
  return 0;
}

int Query(const std::string& catalog_path, const std::string& model_path,
          const std::string& query, int k) {
  auto catalog = LoadCatalog(catalog_path);
  if (!catalog.ok()) return Fail(catalog.status());
  auto model = HierarchicalModel::LoadFromFile(model_path);
  if (!model.ok()) return Fail(model.status());
  TraversalOptions options;
  options.beam_width = 4;
  options.max_results = k;
  RetrievalEngine engine(*catalog, std::move(model).value(), options);
  RetrievalStats stats;
  auto results = engine.Query(query, &stats);
  if (!results.ok()) return Fail(results.status());
  std::printf("%zu results (%zu expansions, %zu sim evaluations)\n",
              results->size(), stats.states_visited, stats.sim_evaluations);
  for (size_t i = 0; i < results->size(); ++i) {
    std::printf("#%zu %s\n", i + 1, (*results)[i].ToString(*catalog).c_str());
  }
  return 0;
}

int Similar(const std::string& catalog_path, const std::string& model_path,
            ShotId shot, int k) {
  auto catalog = LoadCatalog(catalog_path);
  if (!catalog.ok()) return Fail(catalog.status());
  auto model = HierarchicalModel::LoadFromFile(model_path);
  if (!model.ok()) return Fail(model.status());
  QbeOptions options;
  options.max_results = k;
  QbeMatcher matcher(*model, options);
  auto results = matcher.RetrieveSimilarTo(shot);
  if (!results.ok()) return Fail(results.status());
  std::printf("shots similar to %s:\n",
              RetrievedPattern{{shot}, {}, 0.0, catalog->shot(shot).video_id,
                               false}
                  .ToString(*catalog)
                  .c_str());
  for (const QbeResult& r : *results) {
    std::printf("  sim=%8.4f %s\n", r.similarity,
                RetrievedPattern{{r.shot}, {}, 0.0,
                                 catalog->shot(r.shot).video_id, false}
                    .ToString(*catalog)
                    .c_str());
  }
  return 0;
}

int Clusters(const std::string& catalog_path, const std::string& model_path,
             int k) {
  auto catalog = LoadCatalog(catalog_path);
  if (!catalog.ok()) return Fail(catalog.status());
  auto model = HierarchicalModel::LoadFromFile(model_path);
  if (!model.ok()) return Fail(model.status());
  CategoryLevelOptions options;
  options.num_clusters = k;
  auto level = BuildCategoryLevel(*model, options);
  if (!level.ok()) return Fail(level.status());
  std::printf("%s", level->ToString(catalog->vocabulary()).c_str());
  const auto members = level->VideosByCluster();
  for (size_t c = 0; c < members.size(); ++c) {
    std::printf("cluster %zu members:", c);
    for (VideoId v : members[c]) {
      std::printf(" %s", catalog->video(v).name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "generate") {
    const int videos = argc > 3 ? std::atoi(argv[3]) : 54;
    const uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    return Generate(argv[2], videos, seed);
  }
  if (command == "build" && argc >= 4) return Build(argv[2], argv[3]);
  if (command == "stats") return Stats(argv[2]);
  if (command == "query" && argc >= 5) {
    return Query(argv[2], argv[3], argv[4], argc > 5 ? std::atoi(argv[5]) : 10);
  }
  if (command == "similar" && argc >= 5) {
    return Similar(argv[2], argv[3], std::atoi(argv[4]),
                   argc > 5 ? std::atoi(argv[5]) : 10);
  }
  if (command == "clusters" && argc >= 4) {
    return Clusters(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 0);
  }
  if (command == "mine") {
    return Mine(argv[2],
                argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 15);
  }
  return Usage();
}
