// Interactive retrieval session: a text-mode stand-in for the paper's
// Fig.-5 client. Builds (or loads) an archive, then reads commands from
// stdin:
//
//   query <pattern>      e.g. query free_kick ; goal
//   mark <rank>          mark the rank-th result of the last query positive
//   train                force an offline learning round
//   similar <shot_id>    query by example
//   stats                archive statistics
//   clusters             category level summary
//   help / quit
//
//   ./build/examples/interactive_session [catalog.bin model.bin]

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "hmmm.h"

namespace {

using namespace hmmm;

void PrintResults(const VideoDatabase& db,
                  const std::vector<RetrievedPattern>& results) {
  if (results.empty()) {
    std::printf("no results\n");
    return;
  }
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("#%zu %s\n", i + 1, results[i].ToString(db.catalog()).c_str());
  }
}

int Run(int argc, char** argv) {
  StatusOr<VideoDatabase> db = [&]() -> StatusOr<VideoDatabase> {
    VideoDatabaseOptions options;
    options.traversal.beam_width = 4;
    options.traversal.max_results = 8;
    options.feedback.retrain_threshold = 3;
    if (argc >= 3) {
      std::printf("loading %s + %s ...\n", argv[1], argv[2]);
      return VideoDatabase::Open(argv[1], argv[2], options);
    }
    std::printf("no archive given; synthesizing a 20-video soccer corpus\n");
    FeatureLevelConfig config = SoccerFeatureLevelDefaults(2026);
    config.num_videos = 20;
    FeatureLevelGenerator generator(config);
    HMMM_ASSIGN_OR_RETURN(VideoCatalog catalog,
                          VideoCatalog::FromGeneratedCorpus(generator.Generate()));
    return VideoDatabase::Create(std::move(catalog), options);
  }();
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("archive ready: %zu videos, %zu shots, %zu annotated. "
              "Type 'help'.\n",
              db->catalog().num_videos(), db->catalog().num_shots(),
              db->catalog().num_annotated_shots());

  std::vector<RetrievedPattern> last_results;
  std::string line;
  while (std::printf("hmmm> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf("commands: query <pattern> | mark <rank> | train | "
                  "similar <shot_id> | stats | clusters | quit\n");
    } else if (command == "query") {
      std::string pattern_text;
      std::getline(in, pattern_text);
      auto results = db->Query(pattern_text);
      if (!results.ok()) {
        std::printf("error: %s\n", results.status().ToString().c_str());
        continue;
      }
      last_results = std::move(results).value();
      PrintResults(*db, last_results);
    } else if (command == "mark") {
      size_t rank = 0;
      in >> rank;
      if (rank < 1 || rank > last_results.size()) {
        std::printf("no result at rank %zu\n", rank);
        continue;
      }
      if (Status s = db->MarkPositive(last_results[rank - 1]); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("marked; %zu training rounds so far\n",
                    db->training_rounds());
      }
    } else if (command == "train") {
      auto trained = db->Train();
      if (!trained.ok()) {
        std::printf("error: %s\n", trained.status().ToString().c_str());
      } else {
        std::printf(*trained ? "trained\n" : "nothing to train on\n");
      }
    } else if (command == "similar") {
      int shot = -1;
      in >> shot;
      auto results = db->MoreLikeShot(shot);
      if (!results.ok()) {
        std::printf("error: %s\n", results.status().ToString().c_str());
        continue;
      }
      for (const QbeResult& r : *results) {
        std::printf("sim=%8.4f shot %d (%s)\n", r.similarity, r.shot,
                    db->catalog()
                        .video(db->catalog().shot(r.shot).video_id)
                        .name.c_str());
      }
    } else if (command == "stats") {
      std::printf("videos=%zu shots=%zu annotated=%zu annotations=%zu "
                  "states=%zu training_rounds=%zu\n",
                  db->catalog().num_videos(), db->catalog().num_shots(),
                  db->catalog().num_annotated_shots(),
                  db->catalog().num_annotations(),
                  db->model().num_global_states(), db->training_rounds());
    } else if (command == "clusters") {
      if (Status s = db->RebuildCategories(); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      std::printf("%s", db->categories()
                            ->ToString(db->catalog().vocabulary())
                            .c_str());
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
