// Interactive retrieval session: a text-mode stand-in for the paper's
// Fig.-5 client, now speaking the wire protocol. By default the example
// spins up an in-process QueryServer over a synthetic soccer archive and
// drives it through QueryClient over loopback TCP — the exact path a
// remote client takes; with --connect it talks to an already-running
// hmmm_serverd instead. Commands:
//
//   query <pattern>      e.g. query free_kick ; goal
//   budget <ms>          wall-clock budget for subsequent queries
//                        (budget 0 demonstrates maximal anytime
//                        degradation; budget -1 removes the limit)
//   mark <rank>          mark the rank-th result of the last query positive
//   train                force an offline learning round
//   health               server health snapshot
//   metrics              server metrics (Prometheus text)
//   help / quit
//
//   ./build/examples/interactive_session [catalog.bin model.bin]
//   ./build/examples/interactive_session --connect <host> <port>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "hmmm.h"

namespace {

using namespace hmmm;

void PrintResults(const TemporalQueryResponse& response) {
  if (response.degraded) {
    std::printf("[degraded: budget hit, %llu videos skipped — ranking is "
                "the best anytime prefix]\n",
                static_cast<unsigned long long>(response.videos_skipped));
  }
  if (response.results.empty()) {
    std::printf("no results\n");
    return;
  }
  for (size_t i = 0; i < response.results.size(); ++i) {
    const RetrievedPattern& result = response.results[i];
    std::printf("#%zu v%d [", i + 1, result.video);
    for (size_t s = 0; s < result.shots.size(); ++s) {
      std::printf("%s s%d", s == 0 ? "" : " ", result.shots[s]);
    }
    std::printf("] score=%.6f\n", result.score);
  }
}

int Run(int argc, char** argv) {
  // Server side: either none (--connect) or an in-process database +
  // QueryServer the session owns.
  std::optional<VideoDatabase> db;
  std::unique_ptr<QueryServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  if (argc >= 4 && std::string(argv[1]) == "--connect") {
    host = argv[2];
    port = static_cast<uint16_t>(std::atoi(argv[3]));
    std::printf("connecting to %s:%u ...\n", host.c_str(), port);
  } else {
    StatusOr<VideoDatabase> opened = [&]() -> StatusOr<VideoDatabase> {
      VideoDatabaseOptions options;
      options.traversal.beam_width = 4;
      options.traversal.max_results = 8;
      options.feedback.retrain_threshold = 3;
      if (argc >= 3) {
        std::printf("loading %s + %s ...\n", argv[1], argv[2]);
        return VideoDatabase::Open(argv[1], argv[2], options);
      }
      std::printf("no archive given; synthesizing a 20-video soccer corpus\n");
      FeatureLevelConfig config = SoccerFeatureLevelDefaults(2026);
      config.num_videos = 20;
      FeatureLevelGenerator generator(config);
      HMMM_ASSIGN_OR_RETURN(
          VideoCatalog catalog,
          VideoCatalog::FromGeneratedCorpus(generator.Generate()));
      return VideoDatabase::Create(std::move(catalog), options);
    }();
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    db.emplace(std::move(opened).value());
    server = std::make_unique<QueryServer>(&*db);
    if (Status started = server->Start(); !started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
  }

  QueryClientOptions client_options;
  client_options.host = host;
  client_options.port = port;
  QueryClient client(client_options);
  const StatusOr<HealthResponse> health = client.Health();
  if (!health.ok()) {
    std::fprintf(stderr, "server unreachable: %s\n",
                 health.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%u — %llu videos, %llu shots, %llu "
              "annotated. Type 'help'.\n",
              host.c_str(), port,
              static_cast<unsigned long long>(health->videos),
              static_cast<unsigned long long>(health->shots),
              static_cast<unsigned long long>(health->annotated_shots));

  TemporalQueryResponse last_response;
  int64_t budget_ms = -1;
  std::string line;
  while (std::printf("hmmm> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf("commands: query <pattern> | budget <ms> | mark <rank> | "
                  "train | health | metrics | quit\n");
    } else if (command == "query") {
      std::string pattern_text;
      std::getline(in, pattern_text);
      TemporalQueryRequest request;
      request.text = pattern_text;
      request.budget_ms = budget_ms;
      request.cancel_generation = client.NextCancelGeneration();
      auto response = client.TemporalQuery(request);
      if (!response.ok()) {
        std::printf("error: %s\n", response.status().ToString().c_str());
        continue;
      }
      last_response = std::move(response).value();
      PrintResults(last_response);
    } else if (command == "budget") {
      in >> budget_ms;
      if (budget_ms < 0) {
        budget_ms = -1;
        std::printf("budget removed\n");
      } else {
        std::printf("queries now run under a %lld ms budget (0 = expire "
                    "immediately, demonstrating anytime degradation)\n",
                    static_cast<long long>(budget_ms));
      }
    } else if (command == "mark") {
      size_t rank = 0;
      in >> rank;
      if (rank < 1 || rank > last_response.results.size()) {
        std::printf("no result at rank %zu\n", rank);
        continue;
      }
      MarkPositiveRequest request;
      request.pattern = last_response.results[rank - 1];
      auto marked = client.MarkPositive(request);
      if (!marked.ok()) {
        std::printf("error: %s\n", marked.status().ToString().c_str());
      } else {
        std::printf("marked; %llu training rounds so far\n",
                    static_cast<unsigned long long>(marked->training_rounds));
      }
    } else if (command == "train") {
      auto trained = client.Train();
      if (!trained.ok()) {
        std::printf("error: %s\n", trained.status().ToString().c_str());
      } else {
        std::printf(trained->trained ? "trained (%llu rounds total)\n"
                                     : "nothing to train on (%llu rounds)\n",
                    static_cast<unsigned long long>(trained->training_rounds));
      }
    } else if (command == "health") {
      auto snapshot = client.Health();
      if (!snapshot.ok()) {
        std::printf("error: %s\n", snapshot.status().ToString().c_str());
        continue;
      }
      std::printf("videos=%llu shots=%llu annotated=%llu model_version=%llu "
                  "draining=%s\n",
                  static_cast<unsigned long long>(snapshot->videos),
                  static_cast<unsigned long long>(snapshot->shots),
                  static_cast<unsigned long long>(snapshot->annotated_shots),
                  static_cast<unsigned long long>(snapshot->model_version),
                  snapshot->draining ? "true" : "false");
    } else if (command == "metrics") {
      auto metrics = client.Metrics();
      if (!metrics.ok()) {
        std::printf("error: %s\n", metrics.status().ToString().c_str());
        continue;
      }
      std::printf("%s", metrics->prometheus_text.c_str());
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }
  if (server != nullptr) server->Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
