// hmmm_coordd: sharded scatter-gather front end. Loads a shards.map
// written by hmmm_shardctl, binds each map entry to one or more running
// hmmm_serverd replicas, and serves the ordinary wire protocol — clients
// cannot tell it from a single-process hmmm_serverd over the merged
// archive (rankings are byte-identical while any replica of every range
// is up; a range with every replica dead degrades results instead of
// failing queries).
//
//   hmmm_coordd --shard-map /tmp/dep/shards.map
//       --shard 127.0.0.1:9001,127.0.0.1:9101
//       --shard 127.0.0.1:9002,127.0.0.1:9102 --port 8787
//
// --shard flags are positional: the i-th flag lists shard i's replica
// endpoints, comma-separated, primary first. When none are given the
// endpoints already recorded in the map are used. Prints
// `LISTENING port=<port>` once it accepts traffic; SIGINT / SIGTERM
// drain gracefully. SIGHUP re-reads --shard-map and hot-swaps the
// routing table without dropping in-flight queries (prints
// `RELOADED epoch=<n>`); a map file whose epoch is not newer than the
// live one is bumped to live+1 — the operator's SIGHUP is the fence.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "coordinator/coordinator_service.h"
#include "server/shard_map.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;

void HandleStopSignal(int /*signal*/) { g_stop_requested = 1; }
void HandleReloadSignal(int /*signal*/) { g_reload_requested = 1; }

struct CoorddFlags {
  std::string shard_map_path;
  std::vector<std::string> shard_endpoints;  // comma-separated replicas
  std::string host = "127.0.0.1";
  int port = 8787;
  int workers = 2;
  int fanout_threads = 0;
  int merge_reserve_ms = 5;
  int io_slack_ms = 100;
  int max_results = 20;
  int connect_timeout_ms = 500;
  int io_timeout_ms = 30000;
  double trace_sample_rate = 0.0;
  double slow_query_threshold_ms = 250.0;
  int slow_query_capacity = 128;
  int health_probe_interval_ms = 500;
  int health_probe_timeout_ms = 250;
  int breaker_failure_threshold = 3;
  int breaker_cooldown_ms = 1000;
  int hedge_delay_ms = -1;
  int hedge_min_delay_ms = 10;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--shard-map PATH | --snapshot-dir DIR)\n"
      "          [--shard HOST:PORT[,HOST:PORT...]]...\n"
      "          [--host ADDR] [--port N] [--workers N] [--fanout-threads N]\n"
      "          [--merge-reserve-ms N] [--io-slack-ms N] [--max-results N]\n"
      "          [--connect-timeout-ms N] [--io-timeout-ms N]\n"
      "          [--trace-sample-rate F] [--slow-query-threshold-ms F]\n"
      "          [--slow-query-capacity N]\n"
      "          [--health-probe-interval-ms N] [--health-probe-timeout-ms N]\n"
      "          [--breaker-failure-threshold N] [--breaker-cooldown-ms N]\n"
      "          [--hedge-delay-ms N] [--hedge-min-delay-ms N]\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, CoorddFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--shard-map" && (value = next()) != nullptr) {
      flags->shard_map_path = value;
    } else if (arg == "--snapshot-dir" && (value = next()) != nullptr) {
      // Sugar for a shardctl-partitioned snapshot directory: the shard
      // map lives next to the per-shard .hmms slices.
      flags->shard_map_path = std::string(value) + "/shards.map";
    } else if (arg == "--shard" && (value = next()) != nullptr) {
      flags->shard_endpoints.push_back(value);
    } else if (arg == "--host" && (value = next()) != nullptr) {
      flags->host = value;
    } else if (arg == "--port" && (value = next()) != nullptr) {
      flags->port = std::atoi(value);
    } else if (arg == "--workers" && (value = next()) != nullptr) {
      flags->workers = std::atoi(value);
    } else if (arg == "--fanout-threads" && (value = next()) != nullptr) {
      flags->fanout_threads = std::atoi(value);
    } else if (arg == "--merge-reserve-ms" && (value = next()) != nullptr) {
      flags->merge_reserve_ms = std::atoi(value);
    } else if (arg == "--io-slack-ms" && (value = next()) != nullptr) {
      flags->io_slack_ms = std::atoi(value);
    } else if (arg == "--max-results" && (value = next()) != nullptr) {
      flags->max_results = std::atoi(value);
    } else if (arg == "--connect-timeout-ms" && (value = next()) != nullptr) {
      flags->connect_timeout_ms = std::atoi(value);
    } else if (arg == "--io-timeout-ms" && (value = next()) != nullptr) {
      flags->io_timeout_ms = std::atoi(value);
    } else if (arg == "--trace-sample-rate" && (value = next()) != nullptr) {
      flags->trace_sample_rate = std::atof(value);
    } else if (arg == "--slow-query-threshold-ms" &&
               (value = next()) != nullptr) {
      flags->slow_query_threshold_ms = std::atof(value);
    } else if (arg == "--slow-query-capacity" && (value = next()) != nullptr) {
      flags->slow_query_capacity = std::atoi(value);
    } else if (arg == "--health-probe-interval-ms" &&
               (value = next()) != nullptr) {
      flags->health_probe_interval_ms = std::atoi(value);
    } else if (arg == "--health-probe-timeout-ms" &&
               (value = next()) != nullptr) {
      flags->health_probe_timeout_ms = std::atoi(value);
    } else if (arg == "--breaker-failure-threshold" &&
               (value = next()) != nullptr) {
      flags->breaker_failure_threshold = std::atoi(value);
    } else if (arg == "--breaker-cooldown-ms" && (value = next()) != nullptr) {
      flags->breaker_cooldown_ms = std::atoi(value);
    } else if (arg == "--hedge-delay-ms" && (value = next()) != nullptr) {
      flags->hedge_delay_ms = std::atoi(value);
    } else if (arg == "--hedge-min-delay-ms" && (value = next()) != nullptr) {
      flags->hedge_min_delay_ms = std::atoi(value);
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !flags->shard_map_path.empty();
}

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= value.size()) {
    const size_t comma = value.find(',', begin);
    const size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > begin) parts.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

/// Rewrites the map's endpoints from the positional --shard flags:
/// first list entry is the primary, the rest are replicas.
bool ApplyEndpointOverrides(const CoorddFlags& flags, hmmm::ShardMap* map) {
  if (flags.shard_endpoints.empty()) return true;
  if (flags.shard_endpoints.size() != map->shards.size()) {
    std::fprintf(stderr,
                 "--shard count (%zu) does not match the map's shard count "
                 "(%zu)\n",
                 flags.shard_endpoints.size(), map->shards.size());
    return false;
  }
  for (size_t s = 0; s < map->shards.size(); ++s) {
    std::vector<std::string> replicas =
        SplitCommaList(flags.shard_endpoints[s]);
    if (replicas.empty()) {
      std::fprintf(stderr, "--shard %zu lists no endpoints\n", s);
      return false;
    }
    map->shards[s].endpoint = replicas.front();
    map->shards[s].replica_endpoints.assign(replicas.begin() + 1,
                                            replicas.end());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CoorddFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 2;
  }

  hmmm::StatusOr<hmmm::ShardMap> map =
      hmmm::LoadShardMap(flags.shard_map_path);
  if (!map.ok()) {
    std::fprintf(stderr, "failed to load shard map: %s\n",
                 map.status().ToString().c_str());
    return 1;
  }
  if (!ApplyEndpointOverrides(flags, &*map)) return 2;

  hmmm::CoordinatorOptions coordinator_options;
  coordinator_options.fanout_threads = flags.fanout_threads;
  coordinator_options.merge_reserve_ms = flags.merge_reserve_ms;
  coordinator_options.io_slack_ms = flags.io_slack_ms;
  coordinator_options.max_results = flags.max_results;
  coordinator_options.client.connect_timeout =
      std::chrono::milliseconds(flags.connect_timeout_ms);
  coordinator_options.client.io_timeout =
      std::chrono::milliseconds(flags.io_timeout_ms);
  coordinator_options.observability.trace_sample_rate =
      flags.trace_sample_rate;
  coordinator_options.observability.slow_query_threshold_ms =
      flags.slow_query_threshold_ms;
  if (flags.slow_query_capacity > 0) {
    coordinator_options.observability.slow_query_capacity =
        static_cast<size_t>(flags.slow_query_capacity);
  }
  coordinator_options.health_probe_interval =
      std::chrono::milliseconds(flags.health_probe_interval_ms);
  coordinator_options.health_probe_timeout =
      std::chrono::milliseconds(flags.health_probe_timeout_ms);
  coordinator_options.breaker.failure_threshold =
      flags.breaker_failure_threshold;
  coordinator_options.breaker.open_cooldown =
      std::chrono::milliseconds(flags.breaker_cooldown_ms);
  coordinator_options.hedge_delay_ms = flags.hedge_delay_ms;
  coordinator_options.hedge_min_delay_ms = flags.hedge_min_delay_ms;

  hmmm::QueryServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.num_workers = flags.workers;

  hmmm::StatusOr<std::unique_ptr<hmmm::CoordinatorServer>> server =
      hmmm::CoordinatorServer::Create(std::move(*map), coordinator_options,
                                      server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "failed to create coordinator: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const hmmm::Status started = (*server)->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start coordinator: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%u\n", (*server)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGHUP, HandleReloadSignal);
  while (g_stop_requested == 0 && (*server)->running()) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      hmmm::StatusOr<hmmm::ShardMap> reloaded =
          hmmm::LoadShardMap(flags.shard_map_path);
      if (!reloaded.ok()) {
        std::fprintf(stderr, "reload: failed to load shard map: %s\n",
                     reloaded.status().ToString().c_str());
      } else if (!ApplyEndpointOverrides(flags, &*reloaded)) {
        std::fprintf(stderr, "reload: endpoint overrides rejected\n");
      } else {
        const uint64_t live = (*server)->service().map_epoch();
        if (reloaded->epoch <= live) {
          // Touch-and-HUP workflow: the operator's signal is the fence,
          // so a map file that never learned about epochs still reloads.
          reloaded->epoch = live + 1;
        }
        hmmm::StatusOr<hmmm::ReloadShardMapResponse> applied =
            (*server)->service().ApplyShardMap(std::move(*reloaded));
        if (!applied.ok()) {
          std::fprintf(stderr, "reload: rejected: %s\n",
                       applied.status().ToString().c_str());
        } else {
          std::printf("RELOADED epoch=%llu shards=%u\n",
                      static_cast<unsigned long long>(applied->epoch),
                      applied->num_shards);
          std::fflush(stdout);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down\n");
  std::fflush(stdout);
  (*server)->Shutdown();
  return 0;
}
