// hmmm_coordd: sharded scatter-gather front end. Loads a shards.map
// written by hmmm_shardctl, binds each map entry to a running
// hmmm_serverd shard, and serves the ordinary wire protocol — clients
// cannot tell it from a single-process hmmm_serverd over the merged
// archive (rankings are byte-identical while every shard is up; a dead
// shard degrades results instead of failing queries).
//
//   hmmm_coordd --shard-map /tmp/dep/shards.map
//       --shard 127.0.0.1:9001 --shard 127.0.0.1:9002
//       --shard 127.0.0.1:9003 --port 8787
//
// --shard flags are positional: the i-th flag is shard i's endpoint.
// When none are given the endpoints already recorded in the map are
// used. Prints `LISTENING port=<port>` once it accepts traffic; SIGINT /
// SIGTERM drain gracefully.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "coordinator/coordinator_service.h"
#include "server/shard_map.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signal*/) { g_stop_requested = 1; }

struct CoorddFlags {
  std::string shard_map_path;
  std::vector<std::string> shard_endpoints;
  std::string host = "127.0.0.1";
  int port = 8787;
  int workers = 2;
  int fanout_threads = 0;
  int merge_reserve_ms = 5;
  int io_slack_ms = 100;
  int max_results = 20;
  int connect_timeout_ms = 500;
  int io_timeout_ms = 30000;
  double trace_sample_rate = 0.0;
  double slow_query_threshold_ms = 250.0;
  int slow_query_capacity = 128;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard-map PATH [--shard HOST:PORT]...\n"
      "          [--host ADDR] [--port N] [--workers N] [--fanout-threads N]\n"
      "          [--merge-reserve-ms N] [--io-slack-ms N] [--max-results N]\n"
      "          [--connect-timeout-ms N] [--io-timeout-ms N]\n"
      "          [--trace-sample-rate F] [--slow-query-threshold-ms F]\n"
      "          [--slow-query-capacity N]\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, CoorddFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--shard-map" && (value = next()) != nullptr) {
      flags->shard_map_path = value;
    } else if (arg == "--shard" && (value = next()) != nullptr) {
      flags->shard_endpoints.push_back(value);
    } else if (arg == "--host" && (value = next()) != nullptr) {
      flags->host = value;
    } else if (arg == "--port" && (value = next()) != nullptr) {
      flags->port = std::atoi(value);
    } else if (arg == "--workers" && (value = next()) != nullptr) {
      flags->workers = std::atoi(value);
    } else if (arg == "--fanout-threads" && (value = next()) != nullptr) {
      flags->fanout_threads = std::atoi(value);
    } else if (arg == "--merge-reserve-ms" && (value = next()) != nullptr) {
      flags->merge_reserve_ms = std::atoi(value);
    } else if (arg == "--io-slack-ms" && (value = next()) != nullptr) {
      flags->io_slack_ms = std::atoi(value);
    } else if (arg == "--max-results" && (value = next()) != nullptr) {
      flags->max_results = std::atoi(value);
    } else if (arg == "--connect-timeout-ms" && (value = next()) != nullptr) {
      flags->connect_timeout_ms = std::atoi(value);
    } else if (arg == "--io-timeout-ms" && (value = next()) != nullptr) {
      flags->io_timeout_ms = std::atoi(value);
    } else if (arg == "--trace-sample-rate" && (value = next()) != nullptr) {
      flags->trace_sample_rate = std::atof(value);
    } else if (arg == "--slow-query-threshold-ms" &&
               (value = next()) != nullptr) {
      flags->slow_query_threshold_ms = std::atof(value);
    } else if (arg == "--slow-query-capacity" && (value = next()) != nullptr) {
      flags->slow_query_capacity = std::atoi(value);
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !flags->shard_map_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CoorddFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 2;
  }

  hmmm::StatusOr<hmmm::ShardMap> map =
      hmmm::LoadShardMap(flags.shard_map_path);
  if (!map.ok()) {
    std::fprintf(stderr, "failed to load shard map: %s\n",
                 map.status().ToString().c_str());
    return 1;
  }
  if (!flags.shard_endpoints.empty()) {
    if (flags.shard_endpoints.size() != map->shards.size()) {
      std::fprintf(stderr,
                   "--shard count (%zu) does not match the map's shard count "
                   "(%zu)\n",
                   flags.shard_endpoints.size(), map->shards.size());
      return 2;
    }
    for (size_t s = 0; s < map->shards.size(); ++s) {
      map->shards[s].endpoint = flags.shard_endpoints[s];
    }
  }

  hmmm::CoordinatorOptions coordinator_options;
  coordinator_options.fanout_threads = flags.fanout_threads;
  coordinator_options.merge_reserve_ms = flags.merge_reserve_ms;
  coordinator_options.io_slack_ms = flags.io_slack_ms;
  coordinator_options.max_results = flags.max_results;
  coordinator_options.client.connect_timeout =
      std::chrono::milliseconds(flags.connect_timeout_ms);
  coordinator_options.client.io_timeout =
      std::chrono::milliseconds(flags.io_timeout_ms);
  coordinator_options.observability.trace_sample_rate =
      flags.trace_sample_rate;
  coordinator_options.observability.slow_query_threshold_ms =
      flags.slow_query_threshold_ms;
  if (flags.slow_query_capacity > 0) {
    coordinator_options.observability.slow_query_capacity =
        static_cast<size_t>(flags.slow_query_capacity);
  }

  hmmm::QueryServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.num_workers = flags.workers;

  hmmm::StatusOr<std::unique_ptr<hmmm::CoordinatorServer>> server =
      hmmm::CoordinatorServer::Create(std::move(*map), coordinator_options,
                                      server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "failed to create coordinator: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const hmmm::Status started = (*server)->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start coordinator: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%u\n", (*server)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0 && (*server)->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down\n");
  std::fflush(stdout);
  (*server)->Shutdown();
  return 0;
}
