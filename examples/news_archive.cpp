// Domain-generality demo: the HMMM core is event-vocabulary agnostic.
// Builds a mixed archive of soccer broadcasts and news programmes, shows
// that the video-level matrices (B2) separate the domains, and answers
// temporal queries from both vocabularies against the single model —
// Section 4.2.2's "cluster the videos into different categories".
//
//   ./build/examples/news_archive

#include <cstdio>

#include "hmmm.h"

int main() {
  using namespace hmmm;

  // Combined vocabulary: soccer events then news events.
  EventVocabulary combined = SoccerEvents();
  const EventVocabulary news_vocab = NewsEvents();
  std::vector<EventId> news_ids;
  for (const std::string& name : news_vocab.names()) {
    news_ids.push_back(combined.Register(name));
  }

  FeatureLevelConfig soccer_config = SoccerFeatureLevelDefaults(21);
  soccer_config.num_videos = 6;
  soccer_config.min_shots_per_video = 50;
  soccer_config.max_shots_per_video = 80;
  soccer_config.event_shot_fraction = 0.25;
  FeatureLevelGenerator soccer(soccer_config);

  FeatureLevelConfig news_config = NewsFeatureLevelDefaults(22);
  news_config.num_videos = 6;
  news_config.min_shots_per_video = 50;
  news_config.max_shots_per_video = 80;
  FeatureLevelGenerator news(news_config);

  VideoCatalog catalog(combined, 20);
  for (const GeneratedVideo& video : soccer.Generate().videos) {
    const VideoId vid = catalog.AddVideo("soccer/" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      if (!catalog.AddShot(vid, shot.begin_time, shot.end_time, shot.events,
                           shot.features).ok()) {
        return 1;
      }
    }
  }
  for (const GeneratedVideo& video : news.Generate().videos) {
    const VideoId vid = catalog.AddVideo("news/" + video.name);
    for (const GeneratedShot& shot : video.shots) {
      std::vector<EventId> remapped;
      for (EventId e : shot.events) {
        remapped.push_back(news_ids[static_cast<size_t>(e)]);
      }
      if (!catalog.AddShot(vid, shot.begin_time, shot.end_time, remapped,
                           shot.features).ok()) {
        return 1;
      }
    }
  }
  std::printf("mixed archive: %zu videos, %zu shots, %zu annotated\n",
              catalog.num_videos(), catalog.num_shots(),
              catalog.num_annotated_shots());

  auto engine = RetrievalEngine::Create(catalog);
  if (!engine.ok()) return 1;

  // Show the B2 domain signature: per-video mass on soccer vs news events.
  std::printf("\nB2 event-count signature (soccer-mass / news-mass):\n");
  const Matrix& b2 = engine->model().b2();
  for (size_t v = 0; v < catalog.num_videos(); ++v) {
    double soccer_mass = 0.0, news_mass = 0.0;
    for (size_t e = 0; e < 8; ++e) soccer_mass += b2.at(v, e);
    for (EventId e : news_ids) news_mass += b2.at(v, static_cast<size_t>(e));
    std::printf("  %-22s %5.0f / %5.0f -> %s\n",
                catalog.video(static_cast<VideoId>(v)).name.c_str(),
                soccer_mass, news_mass,
                soccer_mass > news_mass ? "soccer cluster" : "news cluster");
  }

  // Queries from both domains against the one model.
  for (const std::string& query :
       {std::string("free_kick ; goal"), std::string("anchor ; weather"),
        std::string("anchor ; field_report ; anchor")}) {
    auto results = engine->Query(query);
    if (!results.ok()) {
      std::fprintf(stderr, "query %s: %s\n", query.c_str(),
                   results.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery \"%s\" -> %zu patterns; top:\n", query.c_str(),
                results->size());
    for (size_t i = 0; i < std::min<size_t>(2, results->size()); ++i) {
      std::printf("  #%zu %s\n", i + 1,
                  (*results)[i].ToString(catalog).c_str());
    }
  }
  return 0;
}
