// hmmm_trace: fetch and pretty-print a distributed trace or the
// slow-query log from a live hmmm_serverd / hmmm_coordd.
//
//   # Run a traced temporal query and print the assembled span tree
//   # (against a coordinator: coordinator root span, per-shard fan-out
//   # spans, each shard's Fig.-2 phase spans grafted underneath):
//   hmmm_trace --port 8787 query "corner_kick then goal"
//
//   # Same, as machine-readable JSONL spans:
//   hmmm_trace --port 8787 --jsonl query "goal"
//
//   # Dump the peer's slow-query ring buffer (JSONL, oldest first):
//   hmmm_trace --port 8787 slow
//
// The query subcommand never changes what the server would answer a
// plain client: tracing is observe-only, rankings are byte-identical
// with it on or off.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "client/query_client.h"
#include "observability/query_trace.h"
#include "observability/trace_codec.h"

namespace {

struct TraceFlags {
  std::string host = "127.0.0.1";
  int port = 8787;
  int budget_ms = -1;
  bool jsonl = false;
  std::string command;  // "query" or "slow"
  std::string pattern;
};

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] [--port N] [--budget-ms N] [--jsonl]\n"
               "          query \"EVENT then EVENT ...\" | slow\n",
               argv0);
}

bool ParseFlags(int argc, char** argv, TraceFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next()) != nullptr) {
      flags->host = value;
    } else if (arg == "--port" && (value = next()) != nullptr) {
      flags->port = std::atoi(value);
    } else if (arg == "--budget-ms" && (value = next()) != nullptr) {
      flags->budget_ms = std::atoi(value);
    } else if (arg == "--jsonl") {
      flags->jsonl = true;
    } else if (flags->command.empty()) {
      flags->command = arg;
    } else if (flags->command == "query" && flags->pattern.empty()) {
      flags->pattern = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->command == "query") return !flags->pattern.empty();
  return flags->command == "slow";
}

int RunQuery(hmmm::QueryClient& client, const TraceFlags& flags) {
  hmmm::TemporalQueryRequest request;
  request.text = flags.pattern;
  request.budget_ms = flags.budget_ms;
  request.want_trace = true;
  hmmm::StatusOr<hmmm::TemporalQueryResponse> response =
      client.TemporalQuery(request);
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("# results=%zu degraded=%d videos_skipped=%llu\n",
              response->results.size(), response->degraded ? 1 : 0,
              static_cast<unsigned long long>(response->videos_skipped));
  if (response->trace_blob.empty()) {
    // A v1 peer serves the query but cannot return the span blob.
    if (!response->trace_jsonl.empty() && flags.jsonl) {
      std::fputs(response->trace_jsonl.c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr,
                 "peer returned no trace blob (protocol v1 peer?)\n");
    return 1;
  }
  hmmm::StatusOr<std::vector<hmmm::TraceSpan>> spans =
      hmmm::DeserializeSpans(response->trace_blob);
  if (!spans.ok()) {
    std::fprintf(stderr, "trace blob undecodable: %s\n",
                 spans.status().ToString().c_str());
    return 1;
  }
  const std::string rendered = flags.jsonl
                                   ? hmmm::RenderSpansJsonl(*spans)
                                   : hmmm::RenderSpanTree(*spans);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

int RunSlow(hmmm::QueryClient& client) {
  hmmm::StatusOr<hmmm::DumpSlowQueriesResponse> response =
      client.DumpSlowQueries();
  if (!response.ok()) {
    std::fprintf(stderr, "slow-query dump failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (response->jsonl.empty()) {
    std::fprintf(stderr, "slow-query log is empty\n");
    return 0;
  }
  std::fputs(response->jsonl.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  TraceFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 2;
  }
  hmmm::QueryClientOptions options;
  options.host = flags.host;
  options.port = static_cast<uint16_t>(flags.port);
  hmmm::QueryClient client(options);
  if (flags.command == "query") return RunQuery(client, flags);
  return RunSlow(client);
}
