// One-shot wire-protocol client: the scriptable counterpart of
// interactive_session, built for smoke tests and shell pipelines. Exit
// code 0 iff the request round-tripped successfully.
//
//   query_client_cli <host> <port> health
//   query_client_cli <host> <port> metrics
//   query_client_cli <host> <port> train
//   query_client_cli <host> <port> query "<pattern>" [--budget <ms>]
//                    [--stats] [--trace]
//
// Examples against a local hmmm_serverd:
//   ./build/examples/query_client_cli 127.0.0.1 7633 health
//   ./build/examples/query_client_cli 127.0.0.1 7633 query "free_kick ; goal"
//   ./build/examples/query_client_cli 127.0.0.1 7633 query goal --budget 0

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hmmm.h"

namespace {

using namespace hmmm;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <host> <port> health|metrics|train\n"
               "       %s <host> <port> query <pattern> [--budget <ms>] "
               "[--stats] [--trace]\n",
               argv0, argv0);
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  QueryClientOptions options;
  options.host = argv[1];
  options.port = static_cast<uint16_t>(std::atoi(argv[2]));
  QueryClient client(options);
  const std::string command = argv[3];

  if (command == "health") {
    const auto health = client.Health();
    if (!health.ok()) {
      std::fprintf(stderr, "error: %s\n", health.status().ToString().c_str());
      return 1;
    }
    std::printf("videos=%llu shots=%llu annotated=%llu model_version=%llu "
                "draining=%s\n",
                static_cast<unsigned long long>(health->videos),
                static_cast<unsigned long long>(health->shots),
                static_cast<unsigned long long>(health->annotated_shots),
                static_cast<unsigned long long>(health->model_version),
                health->draining ? "true" : "false");
    return 0;
  }
  if (command == "metrics") {
    const auto metrics = client.Metrics();
    if (!metrics.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   metrics.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", metrics->prometheus_text.c_str());
    return 0;
  }
  if (command == "train") {
    const auto trained = client.Train();
    if (!trained.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   trained.status().ToString().c_str());
      return 1;
    }
    std::printf("trained=%s rounds=%llu\n",
                trained->trained ? "true" : "false",
                static_cast<unsigned long long>(trained->training_rounds));
    return 0;
  }
  if (command == "query") {
    if (argc < 5) return Usage(argv[0]);
    TemporalQueryRequest request;
    request.text = argv[4];
    request.cancel_generation = client.NextCancelGeneration();
    for (int i = 5; i < argc; ++i) {
      if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
        request.budget_ms = std::atoll(argv[++i]);
      } else if (std::strcmp(argv[i], "--stats") == 0) {
        request.want_stats = true;
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        request.want_trace = true;
      } else {
        return Usage(argv[0]);
      }
    }
    const auto response = client.TemporalQuery(request);
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (response->degraded) {
      std::printf("degraded=true videos_skipped=%llu\n",
                  static_cast<unsigned long long>(response->videos_skipped));
    }
    for (size_t i = 0; i < response->results.size(); ++i) {
      const RetrievedPattern& result = response->results[i];
      std::printf("%zu\tv%d\t", i + 1, result.video);
      for (size_t s = 0; s < result.shots.size(); ++s) {
        std::printf("%s%d", s == 0 ? "" : ",", result.shots[s]);
      }
      std::printf("\t%.6f\n", result.score);
    }
    if (request.want_stats && response->has_stats) {
      std::printf("# videos_considered=%llu states_visited=%llu "
                  "candidates_scored=%llu\n",
                  static_cast<unsigned long long>(
                      response->stats.videos_considered),
                  static_cast<unsigned long long>(
                      response->stats.states_visited),
                  static_cast<unsigned long long>(
                      response->stats.candidates_scored));
    }
    if (request.want_trace) std::printf("%s", response->trace_jsonl.c_str());
    return 0;
  }
  return Usage(argv[0]);
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
