// Growing-archive lifecycle: footage is ingested incrementally through
// the crash-safe CatalogJournal, the HMMM is rebuilt as the archive grows
// with learned feedback carried over, and everything survives a process
// restart.
//
//   ./build/examples/growing_archive [journal_path]

#include <cstdio>

#include "hmmm.h"

namespace {

using namespace hmmm;

Status IngestBatch(CatalogJournal& journal, const GeneratedCorpus& corpus,
                   size_t from_video, size_t to_video) {
  for (size_t v = from_video; v < to_video && v < corpus.videos.size(); ++v) {
    const GeneratedVideo& video = corpus.videos[v];
    HMMM_ASSIGN_OR_RETURN(VideoId vid, journal.AppendVideo(video.name));
    for (const GeneratedShot& shot : video.shots) {
      HMMM_ASSIGN_OR_RETURN(
          ShotId unused,
          journal.AppendShot(vid, shot.begin_time, shot.end_time, shot.events,
                             shot.features));
      (void)unused;
    }
  }
  return journal.Flush();
}

int Run(const std::string& journal_path) {
  std::remove(journal_path.c_str());

  FeatureLevelConfig config = SoccerFeatureLevelDefaults(31415);
  config.num_videos = 12;
  config.min_shots_per_video = 50;
  config.max_shots_per_video = 80;
  config.event_shot_fraction = 0.25;
  const GeneratedCorpus corpus = FeatureLevelGenerator(config).Generate();

  // --- Day 1: ingest the first 6 videos, learn from feedback. ----------
  auto journal =
      CatalogJournal::Open(journal_path, corpus.vocabulary, 20);
  if (!journal.ok()) return 1;
  if (!IngestBatch(*journal, corpus, 0, 6).ok()) return 1;
  std::printf("day 1: ingested %zu videos / %zu shots via the journal\n",
              journal->catalog().num_videos(), journal->catalog().num_shots());

  auto db = VideoDatabase::Create(journal->catalog());
  if (!db.ok()) return 1;
  const std::string query = "free_kick ; goal";
  auto results = db->Query(query);
  if (!results.ok()) return 1;
  std::printf("day 1: \"%s\" -> %zu patterns; marking the top result\n",
              query.c_str(), results->size());
  if (!results->empty()) {
    if (!db->MarkPositive(results->front()).ok()) return 1;
    auto trained = db->Train();
    if (!trained.ok()) return 1;
  }

  // --- Day 2: process restarts; journal replays; more footage arrives. -
  auto reopened = CatalogJournal::Open(journal_path, corpus.vocabulary, 20);
  if (!reopened.ok()) return 1;
  std::printf("day 2: journal replayed %zu videos (%zu torn-tail bytes "
              "recovered)\n",
              reopened->catalog().num_videos(),
              reopened->recovered_tail_bytes());
  if (!IngestBatch(*reopened, corpus, 6, 12).ok()) return 1;
  std::printf("day 2: archive grown to %zu videos / %zu shots\n",
              reopened->catalog().num_videos(),
              reopened->catalog().num_shots());

  // Swap the grown catalog into the live database: learned A1/Pi1 for the
  // original videos survive the rebuild.
  VideoCatalog grown = reopened->catalog();
  if (Status s = db->ReplaceCatalog(std::move(grown)); !s.ok()) {
    std::fprintf(stderr, "replace: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("day 2: model rebuilt over the grown archive "
              "(%zu states), feedback preserved\n",
              db->model().num_global_states());

  auto after = db->Query(query);
  if (!after.ok()) return 1;
  std::printf("day 2: \"%s\" -> %zu patterns over the full archive\n",
              query.c_str(), after->size());
  for (size_t i = 0; i < std::min<size_t>(3, after->size()); ++i) {
    std::printf("  #%zu %s\n", i + 1,
                (*after)[i].ToString(db->catalog()).c_str());
  }
  std::remove(journal_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return Run(argc > 1 ? argv[1] : "/tmp/hmmm_growing_archive.wal");
}
