// Full Fig.-1 pipeline on rendered synthetic soccer broadcasts: raster
// frames + PCM audio are synthesized, shots are detected from histogram
// cuts, Table-1 features are extracted with the real DSP code, a decision
// tree detects semantic events, and the HMMM answers temporal queries.
//
//   ./build/examples/soccer_retrieval

#include <cstdio>

#include "hmmm.h"

namespace {

using namespace hmmm;

int Run() {
  // --- Stage 1: synthesize the source videos. --------------------------
  SoccerGeneratorConfig media_config;
  media_config.seed = 99;
  media_config.min_shots_per_video = 12;
  media_config.max_shots_per_video = 16;
  media_config.event_shot_fraction = 0.5;
  SoccerVideoGenerator generator(media_config);
  const int num_videos = 4;
  std::vector<SyntheticVideo> videos;
  for (int v = 0; v < num_videos; ++v) videos.push_back(generator.Generate(v));
  size_t total_frames = 0;
  for (const auto& v : videos) total_frames += v.frames.size();
  std::printf("stage 1: synthesized %d videos, %zu frames, %.1f s audio\n",
              num_videos, total_frames,
              videos[0].audio.duration() * num_videos);

  // --- Stage 2: shot boundary detection. -------------------------------
  ShotSegmenter segmenter;
  BoundaryDetector detector;
  double f1_sum = 0.0;
  for (const SyntheticVideo& video : videos) {
    const auto eval = BoundaryDetector::Evaluate(
        detector.Detect(video.frames), video.TrueBoundaries(), 2);
    f1_sum += eval.f1;
  }
  std::printf("stage 2: twin-comparison boundary detection, mean F1 = %.2f\n",
              f1_sum / num_videos);

  // --- Stage 3: feature extraction + event detection. ------------------
  ShotFeatureExtractor extractor;
  LabeledDataset dataset;
  std::vector<std::vector<double>> rows;
  for (const SyntheticVideo& video : videos) {
    for (size_t s = 0; s < video.shots.size(); ++s) {
      auto features = extractor.ExtractForShot(video, s);
      if (!features.ok()) {
        std::fprintf(stderr, "extract: %s\n",
                     features.status().ToString().c_str());
        return 1;
      }
      rows.push_back(std::move(features).value());
      const auto& events = video.shots[s].events;
      dataset.labels.push_back(events.empty() ? kBackgroundLabel : events[0]);
    }
  }
  auto feature_matrix = Matrix::FromRows(rows);
  dataset.features = std::move(feature_matrix).value();

  Rng rng(7);
  auto split = SplitDataset(dataset, 0.3, rng);
  DecisionTree tree;
  if (Status s = tree.Train(split->train); !s.ok()) {
    std::fprintf(stderr, "train: %s\n", s.ToString().c_str());
    return 1;
  }
  auto metrics = EvaluateClassifier(tree, split->test);
  std::printf("stage 3: extracted %zu feature vectors; decision-tree event "
              "detector accuracy %.2f (macro-F1 %.2f) on held-out shots\n",
              dataset.size(), metrics->accuracy, metrics->MacroF1());

  const auto importances = tree.FeatureImportances();
  std::printf("         most informative features:");
  for (int top = 0; top < 3; ++top) {
    size_t best = 0;
    for (size_t f = 1; f < importances.size(); ++f) {
      if (importances[f] > importances[best]) best = f;
    }
    std::printf(" %s(%.2f)", FeatureName(static_cast<int>(best)).c_str(),
                importances[best]);
    const_cast<std::vector<double>&>(importances)[best] = -1.0;
  }
  std::printf("\n");

  // --- Stage 4: catalog + HMMM construction. ---------------------------
  VideoCatalog catalog(generator.vocabulary(), kNumFeatures);
  size_t row = 0;
  for (const SyntheticVideo& video : videos) {
    const VideoId vid = catalog.AddVideo(video.name);
    for (size_t s = 0; s < video.shots.size(); ++s) {
      const ShotTruth& shot = video.shots[s];
      auto added = catalog.AddShot(vid, shot.begin_frame / video.fps,
                                   shot.end_frame / video.fps, shot.events,
                                   dataset.features.Row(row++));
      if (!added.ok()) {
        std::fprintf(stderr, "catalog: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
    }
  }
  auto engine = RetrievalEngine::Create(catalog);
  std::printf("stage 4: HMMM built over %zu videos / %zu states\n",
              engine->model().num_videos(),
              engine->model().num_global_states());

  // --- Stage 5: temporal pattern queries. -------------------------------
  for (const std::string& query :
       {std::string("goal"), std::string("free_kick ; goal"),
        std::string("foul ; (free_kick | corner_kick)")}) {
    auto results = engine->Query(query);
    if (!results.ok()) {
      std::fprintf(stderr, "query: %s\n", results.status().ToString().c_str());
      return 1;
    }
    std::printf("stage 5: query \"%s\" -> %zu patterns\n", query.c_str(),
                results->size());
    for (size_t i = 0; i < std::min<size_t>(3, results->size()); ++i) {
      std::printf("         #%zu %s\n", i + 1,
                  (*results)[i].ToString(catalog).c_str());
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
