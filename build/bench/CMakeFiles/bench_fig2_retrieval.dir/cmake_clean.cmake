file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_retrieval.dir/bench_fig2_retrieval.cc.o"
  "CMakeFiles/bench_fig2_retrieval.dir/bench_fig2_retrieval.cc.o.d"
  "bench_fig2_retrieval"
  "bench_fig2_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
