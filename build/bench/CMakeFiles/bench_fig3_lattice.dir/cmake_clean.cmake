file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lattice.dir/bench_fig3_lattice.cc.o"
  "CMakeFiles/bench_fig3_lattice.dir/bench_fig3_lattice.cc.o.d"
  "bench_fig3_lattice"
  "bench_fig3_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
