file(REMOVE_RECURSE
  "CMakeFiles/archive_tool.dir/archive_tool.cpp.o"
  "CMakeFiles/archive_tool.dir/archive_tool.cpp.o.d"
  "archive_tool"
  "archive_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
