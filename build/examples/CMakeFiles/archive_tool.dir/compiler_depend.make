# Empty compiler generated dependencies file for archive_tool.
# This may be replaced when dependencies are built.
