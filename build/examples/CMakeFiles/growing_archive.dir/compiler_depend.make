# Empty compiler generated dependencies file for growing_archive.
# This may be replaced when dependencies are built.
