file(REMOVE_RECURSE
  "CMakeFiles/growing_archive.dir/growing_archive.cpp.o"
  "CMakeFiles/growing_archive.dir/growing_archive.cpp.o.d"
  "growing_archive"
  "growing_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growing_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
