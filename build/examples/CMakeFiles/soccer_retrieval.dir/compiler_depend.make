# Empty compiler generated dependencies file for soccer_retrieval.
# This may be replaced when dependencies are built.
