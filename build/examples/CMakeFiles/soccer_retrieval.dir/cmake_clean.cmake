file(REMOVE_RECURSE
  "CMakeFiles/soccer_retrieval.dir/soccer_retrieval.cpp.o"
  "CMakeFiles/soccer_retrieval.dir/soccer_retrieval.cpp.o.d"
  "soccer_retrieval"
  "soccer_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soccer_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
