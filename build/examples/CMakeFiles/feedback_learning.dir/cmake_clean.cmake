file(REMOVE_RECURSE
  "CMakeFiles/feedback_learning.dir/feedback_learning.cpp.o"
  "CMakeFiles/feedback_learning.dir/feedback_learning.cpp.o.d"
  "feedback_learning"
  "feedback_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
