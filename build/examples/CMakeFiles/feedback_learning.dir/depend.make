# Empty dependencies file for feedback_learning.
# This may be replaced when dependencies are built.
