file(REMOVE_RECURSE
  "libhmmm_core.a"
)
