
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/affinity.cc" "src/CMakeFiles/hmmm_core.dir/core/affinity.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/affinity.cc.o.d"
  "/root/repo/src/core/category_level.cc" "src/CMakeFiles/hmmm_core.dir/core/category_level.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/category_level.cc.o.d"
  "/root/repo/src/core/generative.cc" "src/CMakeFiles/hmmm_core.dir/core/generative.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/generative.cc.o.d"
  "/root/repo/src/core/hierarchical_model.cc" "src/CMakeFiles/hmmm_core.dir/core/hierarchical_model.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/hierarchical_model.cc.o.d"
  "/root/repo/src/core/learner.cc" "src/CMakeFiles/hmmm_core.dir/core/learner.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/learner.cc.o.d"
  "/root/repo/src/core/mmm.cc" "src/CMakeFiles/hmmm_core.dir/core/mmm.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/mmm.cc.o.d"
  "/root/repo/src/core/model_builder.cc" "src/CMakeFiles/hmmm_core.dir/core/model_builder.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/model_builder.cc.o.d"
  "/root/repo/src/core/pattern_mining.cc" "src/CMakeFiles/hmmm_core.dir/core/pattern_mining.cc.o" "gcc" "src/CMakeFiles/hmmm_core.dir/core/pattern_mining.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_events.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_shots.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
