# Empty compiler generated dependencies file for hmmm_core.
# This may be replaced when dependencies are built.
