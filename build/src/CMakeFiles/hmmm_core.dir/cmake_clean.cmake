file(REMOVE_RECURSE
  "CMakeFiles/hmmm_core.dir/core/affinity.cc.o"
  "CMakeFiles/hmmm_core.dir/core/affinity.cc.o.d"
  "CMakeFiles/hmmm_core.dir/core/category_level.cc.o"
  "CMakeFiles/hmmm_core.dir/core/category_level.cc.o.d"
  "CMakeFiles/hmmm_core.dir/core/generative.cc.o"
  "CMakeFiles/hmmm_core.dir/core/generative.cc.o.d"
  "CMakeFiles/hmmm_core.dir/core/hierarchical_model.cc.o"
  "CMakeFiles/hmmm_core.dir/core/hierarchical_model.cc.o.d"
  "CMakeFiles/hmmm_core.dir/core/learner.cc.o"
  "CMakeFiles/hmmm_core.dir/core/learner.cc.o.d"
  "CMakeFiles/hmmm_core.dir/core/mmm.cc.o"
  "CMakeFiles/hmmm_core.dir/core/mmm.cc.o.d"
  "CMakeFiles/hmmm_core.dir/core/model_builder.cc.o"
  "CMakeFiles/hmmm_core.dir/core/model_builder.cc.o.d"
  "CMakeFiles/hmmm_core.dir/core/pattern_mining.cc.o"
  "CMakeFiles/hmmm_core.dir/core/pattern_mining.cc.o.d"
  "libhmmm_core.a"
  "libhmmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
