file(REMOVE_RECURSE
  "CMakeFiles/hmmm_media.dir/media/audio.cc.o"
  "CMakeFiles/hmmm_media.dir/media/audio.cc.o.d"
  "CMakeFiles/hmmm_media.dir/media/event_types.cc.o"
  "CMakeFiles/hmmm_media.dir/media/event_types.cc.o.d"
  "CMakeFiles/hmmm_media.dir/media/feature_level_generator.cc.o"
  "CMakeFiles/hmmm_media.dir/media/feature_level_generator.cc.o.d"
  "CMakeFiles/hmmm_media.dir/media/frame.cc.o"
  "CMakeFiles/hmmm_media.dir/media/frame.cc.o.d"
  "CMakeFiles/hmmm_media.dir/media/news_generator.cc.o"
  "CMakeFiles/hmmm_media.dir/media/news_generator.cc.o.d"
  "CMakeFiles/hmmm_media.dir/media/soccer_generator.cc.o"
  "CMakeFiles/hmmm_media.dir/media/soccer_generator.cc.o.d"
  "CMakeFiles/hmmm_media.dir/media/video.cc.o"
  "CMakeFiles/hmmm_media.dir/media/video.cc.o.d"
  "libhmmm_media.a"
  "libhmmm_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
