
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/audio.cc" "src/CMakeFiles/hmmm_media.dir/media/audio.cc.o" "gcc" "src/CMakeFiles/hmmm_media.dir/media/audio.cc.o.d"
  "/root/repo/src/media/event_types.cc" "src/CMakeFiles/hmmm_media.dir/media/event_types.cc.o" "gcc" "src/CMakeFiles/hmmm_media.dir/media/event_types.cc.o.d"
  "/root/repo/src/media/feature_level_generator.cc" "src/CMakeFiles/hmmm_media.dir/media/feature_level_generator.cc.o" "gcc" "src/CMakeFiles/hmmm_media.dir/media/feature_level_generator.cc.o.d"
  "/root/repo/src/media/frame.cc" "src/CMakeFiles/hmmm_media.dir/media/frame.cc.o" "gcc" "src/CMakeFiles/hmmm_media.dir/media/frame.cc.o.d"
  "/root/repo/src/media/news_generator.cc" "src/CMakeFiles/hmmm_media.dir/media/news_generator.cc.o" "gcc" "src/CMakeFiles/hmmm_media.dir/media/news_generator.cc.o.d"
  "/root/repo/src/media/soccer_generator.cc" "src/CMakeFiles/hmmm_media.dir/media/soccer_generator.cc.o" "gcc" "src/CMakeFiles/hmmm_media.dir/media/soccer_generator.cc.o.d"
  "/root/repo/src/media/video.cc" "src/CMakeFiles/hmmm_media.dir/media/video.cc.o" "gcc" "src/CMakeFiles/hmmm_media.dir/media/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
