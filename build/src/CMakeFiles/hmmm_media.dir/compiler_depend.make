# Empty compiler generated dependencies file for hmmm_media.
# This may be replaced when dependencies are built.
