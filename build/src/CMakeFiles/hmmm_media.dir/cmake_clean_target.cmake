file(REMOVE_RECURSE
  "libhmmm_media.a"
)
