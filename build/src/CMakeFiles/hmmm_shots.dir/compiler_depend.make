# Empty compiler generated dependencies file for hmmm_shots.
# This may be replaced when dependencies are built.
