file(REMOVE_RECURSE
  "libhmmm_shots.a"
)
