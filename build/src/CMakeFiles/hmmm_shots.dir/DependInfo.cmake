
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shots/boundary_detector.cc" "src/CMakeFiles/hmmm_shots.dir/shots/boundary_detector.cc.o" "gcc" "src/CMakeFiles/hmmm_shots.dir/shots/boundary_detector.cc.o.d"
  "/root/repo/src/shots/histogram.cc" "src/CMakeFiles/hmmm_shots.dir/shots/histogram.cc.o" "gcc" "src/CMakeFiles/hmmm_shots.dir/shots/histogram.cc.o.d"
  "/root/repo/src/shots/keyframe.cc" "src/CMakeFiles/hmmm_shots.dir/shots/keyframe.cc.o" "gcc" "src/CMakeFiles/hmmm_shots.dir/shots/keyframe.cc.o.d"
  "/root/repo/src/shots/segmenter.cc" "src/CMakeFiles/hmmm_shots.dir/shots/segmenter.cc.o" "gcc" "src/CMakeFiles/hmmm_shots.dir/shots/segmenter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
