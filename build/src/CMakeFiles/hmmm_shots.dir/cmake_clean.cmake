file(REMOVE_RECURSE
  "CMakeFiles/hmmm_shots.dir/shots/boundary_detector.cc.o"
  "CMakeFiles/hmmm_shots.dir/shots/boundary_detector.cc.o.d"
  "CMakeFiles/hmmm_shots.dir/shots/histogram.cc.o"
  "CMakeFiles/hmmm_shots.dir/shots/histogram.cc.o.d"
  "CMakeFiles/hmmm_shots.dir/shots/keyframe.cc.o"
  "CMakeFiles/hmmm_shots.dir/shots/keyframe.cc.o.d"
  "CMakeFiles/hmmm_shots.dir/shots/segmenter.cc.o"
  "CMakeFiles/hmmm_shots.dir/shots/segmenter.cc.o.d"
  "libhmmm_shots.a"
  "libhmmm_shots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_shots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
