# Empty compiler generated dependencies file for hmmm_api.
# This may be replaced when dependencies are built.
