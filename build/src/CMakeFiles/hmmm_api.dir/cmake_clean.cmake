file(REMOVE_RECURSE
  "CMakeFiles/hmmm_api.dir/api/video_database.cc.o"
  "CMakeFiles/hmmm_api.dir/api/video_database.cc.o.d"
  "libhmmm_api.a"
  "libhmmm_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
