file(REMOVE_RECURSE
  "libhmmm_api.a"
)
