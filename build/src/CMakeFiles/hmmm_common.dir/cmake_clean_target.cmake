file(REMOVE_RECURSE
  "libhmmm_common.a"
)
