file(REMOVE_RECURSE
  "CMakeFiles/hmmm_common.dir/common/crc32.cc.o"
  "CMakeFiles/hmmm_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/hmmm_common.dir/common/logging.cc.o"
  "CMakeFiles/hmmm_common.dir/common/logging.cc.o.d"
  "CMakeFiles/hmmm_common.dir/common/matrix.cc.o"
  "CMakeFiles/hmmm_common.dir/common/matrix.cc.o.d"
  "CMakeFiles/hmmm_common.dir/common/rng.cc.o"
  "CMakeFiles/hmmm_common.dir/common/rng.cc.o.d"
  "CMakeFiles/hmmm_common.dir/common/serialization.cc.o"
  "CMakeFiles/hmmm_common.dir/common/serialization.cc.o.d"
  "CMakeFiles/hmmm_common.dir/common/status.cc.o"
  "CMakeFiles/hmmm_common.dir/common/status.cc.o.d"
  "CMakeFiles/hmmm_common.dir/common/strings.cc.o"
  "CMakeFiles/hmmm_common.dir/common/strings.cc.o.d"
  "libhmmm_common.a"
  "libhmmm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
