# Empty compiler generated dependencies file for hmmm_common.
# This may be replaced when dependencies are built.
