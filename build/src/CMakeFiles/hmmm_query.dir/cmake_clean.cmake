file(REMOVE_RECURSE
  "CMakeFiles/hmmm_query.dir/query/matn.cc.o"
  "CMakeFiles/hmmm_query.dir/query/matn.cc.o.d"
  "CMakeFiles/hmmm_query.dir/query/parser.cc.o"
  "CMakeFiles/hmmm_query.dir/query/parser.cc.o.d"
  "CMakeFiles/hmmm_query.dir/query/translator.cc.o"
  "CMakeFiles/hmmm_query.dir/query/translator.cc.o.d"
  "libhmmm_query.a"
  "libhmmm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
