# Empty dependencies file for hmmm_query.
# This may be replaced when dependencies are built.
