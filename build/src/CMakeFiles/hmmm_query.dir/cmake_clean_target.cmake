file(REMOVE_RECURSE
  "libhmmm_query.a"
)
