
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/audio_features.cc" "src/CMakeFiles/hmmm_features.dir/features/audio_features.cc.o" "gcc" "src/CMakeFiles/hmmm_features.dir/features/audio_features.cc.o.d"
  "/root/repo/src/features/extractor.cc" "src/CMakeFiles/hmmm_features.dir/features/extractor.cc.o" "gcc" "src/CMakeFiles/hmmm_features.dir/features/extractor.cc.o.d"
  "/root/repo/src/features/feature_schema.cc" "src/CMakeFiles/hmmm_features.dir/features/feature_schema.cc.o" "gcc" "src/CMakeFiles/hmmm_features.dir/features/feature_schema.cc.o.d"
  "/root/repo/src/features/normalization.cc" "src/CMakeFiles/hmmm_features.dir/features/normalization.cc.o" "gcc" "src/CMakeFiles/hmmm_features.dir/features/normalization.cc.o.d"
  "/root/repo/src/features/visual_features.cc" "src/CMakeFiles/hmmm_features.dir/features/visual_features.cc.o" "gcc" "src/CMakeFiles/hmmm_features.dir/features/visual_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_shots.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
