file(REMOVE_RECURSE
  "libhmmm_features.a"
)
