# Empty dependencies file for hmmm_features.
# This may be replaced when dependencies are built.
