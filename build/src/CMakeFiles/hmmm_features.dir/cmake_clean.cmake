file(REMOVE_RECURSE
  "CMakeFiles/hmmm_features.dir/features/audio_features.cc.o"
  "CMakeFiles/hmmm_features.dir/features/audio_features.cc.o.d"
  "CMakeFiles/hmmm_features.dir/features/extractor.cc.o"
  "CMakeFiles/hmmm_features.dir/features/extractor.cc.o.d"
  "CMakeFiles/hmmm_features.dir/features/feature_schema.cc.o"
  "CMakeFiles/hmmm_features.dir/features/feature_schema.cc.o.d"
  "CMakeFiles/hmmm_features.dir/features/normalization.cc.o"
  "CMakeFiles/hmmm_features.dir/features/normalization.cc.o.d"
  "CMakeFiles/hmmm_features.dir/features/visual_features.cc.o"
  "CMakeFiles/hmmm_features.dir/features/visual_features.cc.o.d"
  "libhmmm_features.a"
  "libhmmm_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
