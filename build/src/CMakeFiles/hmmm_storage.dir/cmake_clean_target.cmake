file(REMOVE_RECURSE
  "libhmmm_storage.a"
)
