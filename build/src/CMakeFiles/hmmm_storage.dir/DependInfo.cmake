
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/hmmm_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/hmmm_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/catalog_journal.cc" "src/CMakeFiles/hmmm_storage.dir/storage/catalog_journal.cc.o" "gcc" "src/CMakeFiles/hmmm_storage.dir/storage/catalog_journal.cc.o.d"
  "/root/repo/src/storage/event_index.cc" "src/CMakeFiles/hmmm_storage.dir/storage/event_index.cc.o" "gcc" "src/CMakeFiles/hmmm_storage.dir/storage/event_index.cc.o.d"
  "/root/repo/src/storage/model_io.cc" "src/CMakeFiles/hmmm_storage.dir/storage/model_io.cc.o" "gcc" "src/CMakeFiles/hmmm_storage.dir/storage/model_io.cc.o.d"
  "/root/repo/src/storage/record_log.cc" "src/CMakeFiles/hmmm_storage.dir/storage/record_log.cc.o" "gcc" "src/CMakeFiles/hmmm_storage.dir/storage/record_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_events.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_shots.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
