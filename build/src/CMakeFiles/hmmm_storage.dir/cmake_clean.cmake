file(REMOVE_RECURSE
  "CMakeFiles/hmmm_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/hmmm_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/hmmm_storage.dir/storage/catalog_journal.cc.o"
  "CMakeFiles/hmmm_storage.dir/storage/catalog_journal.cc.o.d"
  "CMakeFiles/hmmm_storage.dir/storage/event_index.cc.o"
  "CMakeFiles/hmmm_storage.dir/storage/event_index.cc.o.d"
  "CMakeFiles/hmmm_storage.dir/storage/model_io.cc.o"
  "CMakeFiles/hmmm_storage.dir/storage/model_io.cc.o.d"
  "CMakeFiles/hmmm_storage.dir/storage/record_log.cc.o"
  "CMakeFiles/hmmm_storage.dir/storage/record_log.cc.o.d"
  "libhmmm_storage.a"
  "libhmmm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
