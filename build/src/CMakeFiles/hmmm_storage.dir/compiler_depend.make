# Empty compiler generated dependencies file for hmmm_storage.
# This may be replaced when dependencies are built.
