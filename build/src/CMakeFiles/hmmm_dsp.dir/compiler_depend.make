# Empty compiler generated dependencies file for hmmm_dsp.
# This may be replaced when dependencies are built.
