file(REMOVE_RECURSE
  "CMakeFiles/hmmm_dsp.dir/dsp/fft.cc.o"
  "CMakeFiles/hmmm_dsp.dir/dsp/fft.cc.o.d"
  "CMakeFiles/hmmm_dsp.dir/dsp/filterbank.cc.o"
  "CMakeFiles/hmmm_dsp.dir/dsp/filterbank.cc.o.d"
  "CMakeFiles/hmmm_dsp.dir/dsp/stats.cc.o"
  "CMakeFiles/hmmm_dsp.dir/dsp/stats.cc.o.d"
  "CMakeFiles/hmmm_dsp.dir/dsp/window.cc.o"
  "CMakeFiles/hmmm_dsp.dir/dsp/window.cc.o.d"
  "libhmmm_dsp.a"
  "libhmmm_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
