file(REMOVE_RECURSE
  "libhmmm_dsp.a"
)
