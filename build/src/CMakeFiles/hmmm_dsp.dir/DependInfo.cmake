
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cc" "src/CMakeFiles/hmmm_dsp.dir/dsp/fft.cc.o" "gcc" "src/CMakeFiles/hmmm_dsp.dir/dsp/fft.cc.o.d"
  "/root/repo/src/dsp/filterbank.cc" "src/CMakeFiles/hmmm_dsp.dir/dsp/filterbank.cc.o" "gcc" "src/CMakeFiles/hmmm_dsp.dir/dsp/filterbank.cc.o.d"
  "/root/repo/src/dsp/stats.cc" "src/CMakeFiles/hmmm_dsp.dir/dsp/stats.cc.o" "gcc" "src/CMakeFiles/hmmm_dsp.dir/dsp/stats.cc.o.d"
  "/root/repo/src/dsp/window.cc" "src/CMakeFiles/hmmm_dsp.dir/dsp/window.cc.o" "gcc" "src/CMakeFiles/hmmm_dsp.dir/dsp/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
