file(REMOVE_RECURSE
  "libhmmm_retrieval.a"
)
