file(REMOVE_RECURSE
  "CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_exhaustive.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_exhaustive.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_index.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_index.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/engine.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/engine.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/metrics.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/metrics.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/qbe.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/qbe.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/result.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/result.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/scorer.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/scorer.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/three_level.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/three_level.cc.o.d"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/traversal.cc.o"
  "CMakeFiles/hmmm_retrieval.dir/retrieval/traversal.cc.o.d"
  "libhmmm_retrieval.a"
  "libhmmm_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
