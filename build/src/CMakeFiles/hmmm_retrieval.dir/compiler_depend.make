# Empty compiler generated dependencies file for hmmm_retrieval.
# This may be replaced when dependencies are built.
