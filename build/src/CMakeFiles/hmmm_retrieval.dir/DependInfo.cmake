
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retrieval/baseline_exhaustive.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_exhaustive.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_exhaustive.cc.o.d"
  "/root/repo/src/retrieval/baseline_index.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_index.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/baseline_index.cc.o.d"
  "/root/repo/src/retrieval/engine.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/engine.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/engine.cc.o.d"
  "/root/repo/src/retrieval/metrics.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/metrics.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/metrics.cc.o.d"
  "/root/repo/src/retrieval/qbe.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/qbe.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/qbe.cc.o.d"
  "/root/repo/src/retrieval/result.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/result.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/result.cc.o.d"
  "/root/repo/src/retrieval/scorer.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/scorer.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/scorer.cc.o.d"
  "/root/repo/src/retrieval/three_level.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/three_level.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/three_level.cc.o.d"
  "/root/repo/src/retrieval/traversal.cc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/traversal.cc.o" "gcc" "src/CMakeFiles/hmmm_retrieval.dir/retrieval/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_events.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_shots.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
