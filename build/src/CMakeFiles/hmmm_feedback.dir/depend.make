# Empty dependencies file for hmmm_feedback.
# This may be replaced when dependencies are built.
