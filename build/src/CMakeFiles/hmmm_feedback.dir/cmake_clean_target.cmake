file(REMOVE_RECURSE
  "libhmmm_feedback.a"
)
