file(REMOVE_RECURSE
  "CMakeFiles/hmmm_feedback.dir/feedback/access_log.cc.o"
  "CMakeFiles/hmmm_feedback.dir/feedback/access_log.cc.o.d"
  "CMakeFiles/hmmm_feedback.dir/feedback/simulated_user.cc.o"
  "CMakeFiles/hmmm_feedback.dir/feedback/simulated_user.cc.o.d"
  "CMakeFiles/hmmm_feedback.dir/feedback/trainer.cc.o"
  "CMakeFiles/hmmm_feedback.dir/feedback/trainer.cc.o.d"
  "libhmmm_feedback.a"
  "libhmmm_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
