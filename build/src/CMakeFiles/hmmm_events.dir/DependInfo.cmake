
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/events/annotation.cc" "src/CMakeFiles/hmmm_events.dir/events/annotation.cc.o" "gcc" "src/CMakeFiles/hmmm_events.dir/events/annotation.cc.o.d"
  "/root/repo/src/events/decision_tree.cc" "src/CMakeFiles/hmmm_events.dir/events/decision_tree.cc.o" "gcc" "src/CMakeFiles/hmmm_events.dir/events/decision_tree.cc.o.d"
  "/root/repo/src/events/event_detector.cc" "src/CMakeFiles/hmmm_events.dir/events/event_detector.cc.o" "gcc" "src/CMakeFiles/hmmm_events.dir/events/event_detector.cc.o.d"
  "/root/repo/src/events/knn.cc" "src/CMakeFiles/hmmm_events.dir/events/knn.cc.o" "gcc" "src/CMakeFiles/hmmm_events.dir/events/knn.cc.o.d"
  "/root/repo/src/events/training.cc" "src/CMakeFiles/hmmm_events.dir/events/training.cc.o" "gcc" "src/CMakeFiles/hmmm_events.dir/events/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_shots.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
