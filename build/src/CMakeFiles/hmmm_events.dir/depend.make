# Empty dependencies file for hmmm_events.
# This may be replaced when dependencies are built.
