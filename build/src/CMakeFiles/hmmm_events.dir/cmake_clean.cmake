file(REMOVE_RECURSE
  "CMakeFiles/hmmm_events.dir/events/annotation.cc.o"
  "CMakeFiles/hmmm_events.dir/events/annotation.cc.o.d"
  "CMakeFiles/hmmm_events.dir/events/decision_tree.cc.o"
  "CMakeFiles/hmmm_events.dir/events/decision_tree.cc.o.d"
  "CMakeFiles/hmmm_events.dir/events/event_detector.cc.o"
  "CMakeFiles/hmmm_events.dir/events/event_detector.cc.o.d"
  "CMakeFiles/hmmm_events.dir/events/knn.cc.o"
  "CMakeFiles/hmmm_events.dir/events/knn.cc.o.d"
  "CMakeFiles/hmmm_events.dir/events/training.cc.o"
  "CMakeFiles/hmmm_events.dir/events/training.cc.o.d"
  "libhmmm_events.a"
  "libhmmm_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmm_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
