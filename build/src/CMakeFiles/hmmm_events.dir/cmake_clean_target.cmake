file(REMOVE_RECURSE
  "libhmmm_events.a"
)
