# Empty compiler generated dependencies file for gap_constraint_test.
# This may be replaced when dependencies are built.
