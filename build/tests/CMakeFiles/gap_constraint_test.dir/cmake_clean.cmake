file(REMOVE_RECURSE
  "CMakeFiles/gap_constraint_test.dir/gap_constraint_test.cc.o"
  "CMakeFiles/gap_constraint_test.dir/gap_constraint_test.cc.o.d"
  "gap_constraint_test"
  "gap_constraint_test.pdb"
  "gap_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
