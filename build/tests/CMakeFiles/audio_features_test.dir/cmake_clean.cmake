file(REMOVE_RECURSE
  "CMakeFiles/audio_features_test.dir/audio_features_test.cc.o"
  "CMakeFiles/audio_features_test.dir/audio_features_test.cc.o.d"
  "audio_features_test"
  "audio_features_test.pdb"
  "audio_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
