# Empty dependencies file for audio_features_test.
# This may be replaced when dependencies are built.
