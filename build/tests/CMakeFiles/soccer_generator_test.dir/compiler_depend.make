# Empty compiler generated dependencies file for soccer_generator_test.
# This may be replaced when dependencies are built.
