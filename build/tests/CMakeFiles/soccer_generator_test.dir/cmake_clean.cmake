file(REMOVE_RECURSE
  "CMakeFiles/soccer_generator_test.dir/soccer_generator_test.cc.o"
  "CMakeFiles/soccer_generator_test.dir/soccer_generator_test.cc.o.d"
  "soccer_generator_test"
  "soccer_generator_test.pdb"
  "soccer_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soccer_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
