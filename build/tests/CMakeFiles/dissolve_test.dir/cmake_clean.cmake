file(REMOVE_RECURSE
  "CMakeFiles/dissolve_test.dir/dissolve_test.cc.o"
  "CMakeFiles/dissolve_test.dir/dissolve_test.cc.o.d"
  "dissolve_test"
  "dissolve_test.pdb"
  "dissolve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
