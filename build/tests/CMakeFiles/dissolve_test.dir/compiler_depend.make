# Empty compiler generated dependencies file for dissolve_test.
# This may be replaced when dependencies are built.
