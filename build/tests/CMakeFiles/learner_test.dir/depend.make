# Empty dependencies file for learner_test.
# This may be replaced when dependencies are built.
