# Empty compiler generated dependencies file for event_detector_test.
# This may be replaced when dependencies are built.
