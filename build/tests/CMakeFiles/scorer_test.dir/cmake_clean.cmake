file(REMOVE_RECURSE
  "CMakeFiles/scorer_test.dir/scorer_test.cc.o"
  "CMakeFiles/scorer_test.dir/scorer_test.cc.o.d"
  "scorer_test"
  "scorer_test.pdb"
  "scorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
