# Empty dependencies file for scorer_test.
# This may be replaced when dependencies are built.
