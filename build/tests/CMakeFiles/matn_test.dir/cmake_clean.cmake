file(REMOVE_RECURSE
  "CMakeFiles/matn_test.dir/matn_test.cc.o"
  "CMakeFiles/matn_test.dir/matn_test.cc.o.d"
  "matn_test"
  "matn_test.pdb"
  "matn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
