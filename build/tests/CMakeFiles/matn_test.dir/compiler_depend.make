# Empty compiler generated dependencies file for matn_test.
# This may be replaced when dependencies are built.
