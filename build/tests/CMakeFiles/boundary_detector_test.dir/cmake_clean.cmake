file(REMOVE_RECURSE
  "CMakeFiles/boundary_detector_test.dir/boundary_detector_test.cc.o"
  "CMakeFiles/boundary_detector_test.dir/boundary_detector_test.cc.o.d"
  "boundary_detector_test"
  "boundary_detector_test.pdb"
  "boundary_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
