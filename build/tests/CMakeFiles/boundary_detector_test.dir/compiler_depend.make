# Empty compiler generated dependencies file for boundary_detector_test.
# This may be replaced when dependencies are built.
