file(REMOVE_RECURSE
  "CMakeFiles/generative_test.dir/generative_test.cc.o"
  "CMakeFiles/generative_test.dir/generative_test.cc.o.d"
  "generative_test"
  "generative_test.pdb"
  "generative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
