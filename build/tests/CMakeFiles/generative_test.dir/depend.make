# Empty dependencies file for generative_test.
# This may be replaced when dependencies are built.
