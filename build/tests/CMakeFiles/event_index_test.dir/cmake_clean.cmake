file(REMOVE_RECURSE
  "CMakeFiles/event_index_test.dir/event_index_test.cc.o"
  "CMakeFiles/event_index_test.dir/event_index_test.cc.o.d"
  "event_index_test"
  "event_index_test.pdb"
  "event_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
