# Empty dependencies file for event_index_test.
# This may be replaced when dependencies are built.
