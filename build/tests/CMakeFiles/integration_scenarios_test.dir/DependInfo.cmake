
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_scenarios_test.cc" "tests/CMakeFiles/integration_scenarios_test.dir/integration_scenarios_test.cc.o" "gcc" "tests/CMakeFiles/integration_scenarios_test.dir/integration_scenarios_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hmmm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_events.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_shots.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hmmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
