file(REMOVE_RECURSE
  "CMakeFiles/integration_scenarios_test.dir/integration_scenarios_test.cc.o"
  "CMakeFiles/integration_scenarios_test.dir/integration_scenarios_test.cc.o.d"
  "integration_scenarios_test"
  "integration_scenarios_test.pdb"
  "integration_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
