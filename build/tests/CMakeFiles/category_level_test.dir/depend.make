# Empty dependencies file for category_level_test.
# This may be replaced when dependencies are built.
