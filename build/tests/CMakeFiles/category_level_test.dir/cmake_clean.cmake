file(REMOVE_RECURSE
  "CMakeFiles/category_level_test.dir/category_level_test.cc.o"
  "CMakeFiles/category_level_test.dir/category_level_test.cc.o.d"
  "category_level_test"
  "category_level_test.pdb"
  "category_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/category_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
