file(REMOVE_RECURSE
  "CMakeFiles/feature_level_generator_test.dir/feature_level_generator_test.cc.o"
  "CMakeFiles/feature_level_generator_test.dir/feature_level_generator_test.cc.o.d"
  "feature_level_generator_test"
  "feature_level_generator_test.pdb"
  "feature_level_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_level_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
