# Empty dependencies file for feature_level_generator_test.
# This may be replaced when dependencies are built.
