# Empty compiler generated dependencies file for normalization_test.
# This may be replaced when dependencies are built.
