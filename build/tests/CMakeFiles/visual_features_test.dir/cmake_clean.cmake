file(REMOVE_RECURSE
  "CMakeFiles/visual_features_test.dir/visual_features_test.cc.o"
  "CMakeFiles/visual_features_test.dir/visual_features_test.cc.o.d"
  "visual_features_test"
  "visual_features_test.pdb"
  "visual_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visual_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
