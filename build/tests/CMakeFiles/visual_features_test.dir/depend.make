# Empty dependencies file for visual_features_test.
# This may be replaced when dependencies are built.
