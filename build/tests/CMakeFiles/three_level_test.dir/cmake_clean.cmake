file(REMOVE_RECURSE
  "CMakeFiles/three_level_test.dir/three_level_test.cc.o"
  "CMakeFiles/three_level_test.dir/three_level_test.cc.o.d"
  "three_level_test"
  "three_level_test.pdb"
  "three_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
