# Empty compiler generated dependencies file for three_level_test.
# This may be replaced when dependencies are built.
