file(REMOVE_RECURSE
  "CMakeFiles/catalog_journal_test.dir/catalog_journal_test.cc.o"
  "CMakeFiles/catalog_journal_test.dir/catalog_journal_test.cc.o.d"
  "catalog_journal_test"
  "catalog_journal_test.pdb"
  "catalog_journal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
