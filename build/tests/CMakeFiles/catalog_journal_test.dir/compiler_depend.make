# Empty compiler generated dependencies file for catalog_journal_test.
# This may be replaced when dependencies are built.
