file(REMOVE_RECURSE
  "CMakeFiles/qbe_test.dir/qbe_test.cc.o"
  "CMakeFiles/qbe_test.dir/qbe_test.cc.o.d"
  "qbe_test"
  "qbe_test.pdb"
  "qbe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
